//! Differential checking of the trial-batched forward evaluator: the
//! incremental `dante_nn::batched` path and the scalar
//! [`Network::accuracy`] path are run side by side on identically
//! fault-corrupted networks and inputs, and the correct-prediction counts
//! must agree exactly.
//!
//! Why this catches bugs: the batched path reuses cached clean activations,
//! resumes mid-network at the first corrupted layer, and — when damage is
//! confined to a few output units — recomputes only those columns/channels.
//! The scalar path does none of that; it walks every image through the
//! corrupted network from layer 0. The two agree only if the incremental
//! bookkeeping (dirty-image sets, first-dirty-layer resume points, column
//! and channel localization) is exactly right, so every corrupted trial is
//! a probe of that bookkeeping.
//!
//! Corruption flips bits of the 16-bit quantized codes — the domain the
//! Monte-Carlo evaluator corrupts — and the clean baseline is the
//! quantize→dequantize round-trip of the same network
//! ([`quantized_baseline`]), so a safe-voltage die reproduces the baseline
//! exactly. Corrupting raw `f32` bits instead would be out of contract:
//! flipped exponent bits make non-finite weights, and the exact GEMM
//! kernels' zero-activation skip (`acc += 0.0 * w` elided) is bit-identical
//! only for finite `w`. The quantized domain guarantees finiteness, exactly
//! as the evaluator does. When a divergence surfaces, [`minimize_units`]
//! shrinks the corrupted weight units to a 1-minimal repro with the same
//! [`ddmin`] used by the executor differential, reusing [`WeightRow`] with
//! `row` meaning output column (dense) or output channel (conv).

use crate::differential::{ddmin, WeightRow};
use dante_circuit::units::Volt;
use dante_nn::batched::{trial_correct_count, BatchedScratch, CleanForward, LayerWork};
use dante_nn::layers::Layer;
use dante_nn::network::Network;
use dante_nn::quant::ScaledQuantizer;
use dante_sim::{derive_seed, site};
use dante_sram::fault::VminFaultModel;
use dante_sram::storage::FaultOverlay;

/// Quantizes an `f32` buffer to 16-bit codes, optionally passes the packed
/// codes through a fault die, and dequantizes back in place; true when any
/// code changed.
fn corrupt_quantized(values: &mut [f32], die: Option<(&VminFaultModel, Volt, u64)>) -> bool {
    let mut tensor = ScaledQuantizer::weight_default().quantize(values);
    let mut changed = false;
    if let Some((model, v, seed)) = die {
        let before = tensor.codes().to_vec();
        let mut words = tensor.to_packed_words();
        let overlay = FaultOverlay::from_seed(tensor.bit_len(), model, seed);
        overlay.apply(&mut words, v);
        tensor.load_packed_words(&words);
        changed = tensor.codes() != before.as_slice();
    }
    values.copy_from_slice(&tensor.to_f32());
    changed
}

/// The quantize→dequantize round-trip of `net`'s weight layers: the clean
/// baseline every corrupted trial is diffed against. [`corrupt_weights`]
/// at a safe voltage reproduces this network exactly.
#[must_use]
pub fn quantized_baseline(net: &Network) -> Network {
    net.map_weight_layers(|_, layer| {
        let mut layer = layer.clone();
        match &mut layer {
            Layer::Dense(d) => {
                let _ = corrupt_quantized(d.weights_mut().as_mut_slice(), None);
            }
            Layer::Conv2d(c) => {
                let _ = corrupt_quantized(c.weights_mut(), None);
            }
            other => panic!("unexpected weight layer kind: {other:?}"),
        }
        layer
    })
}

/// Returns a copy of `net` whose quantized weight codes went through one
/// fault die at `v`: weight layer `pos` draws its overlay from
/// `derive_seed(trial_seed, site::WEIGHT_LAYER, pos)`, mirroring the
/// Monte-Carlo evaluator's seed tree. Diff against [`quantized_baseline`],
/// not the original float network.
#[must_use]
pub fn corrupt_weights(net: &Network, model: &VminFaultModel, v: Volt, trial_seed: u64) -> Network {
    net.map_weight_layers(|pos, layer| {
        let seed = derive_seed(trial_seed, site::WEIGHT_LAYER, pos as u64);
        let mut layer = layer.clone();
        match &mut layer {
            Layer::Dense(d) => {
                let _ = corrupt_quantized(d.weights_mut().as_mut_slice(), Some((model, v, seed)));
            }
            Layer::Conv2d(c) => {
                let _ = corrupt_quantized(c.weights_mut(), Some((model, v, seed)));
            }
            other => panic!("unexpected weight layer kind: {other:?}"),
        }
        layer
    })
}

/// The quantize→dequantize round-trip of an image buffer (per image, so
/// each image's scale is independent): the clean-input baseline.
#[must_use]
pub fn quantized_input_baseline(inputs: &[f32], in_len: usize) -> Vec<f32> {
    let mut out = inputs.to_vec();
    for chunk in out.chunks_mut(in_len) {
        let _ = corrupt_quantized(chunk, None);
    }
    out
}

/// Returns the images passed code-by-code through a fault die at `v`
/// (seeded from `site::INPUTS` per image), plus the sorted list of images
/// whose codes actually flipped — exactly the `dirty_images` contract of
/// [`trial_correct_count`]. Rows not listed equal
/// [`quantized_input_baseline`] bitwise.
#[must_use]
pub fn corrupt_inputs(
    inputs: &[f32],
    in_len: usize,
    model: &VminFaultModel,
    v: Volt,
    trial_seed: u64,
) -> (Vec<f32>, Vec<usize>) {
    let mut out = inputs.to_vec();
    let mut dirty = Vec::new();
    for (img, chunk) in out.chunks_mut(in_len).enumerate() {
        let seed = derive_seed(trial_seed, site::INPUTS, img as u64);
        if corrupt_quantized(chunk, Some((model, v, seed))) {
            dirty.push(img);
        }
    }
    (out, dirty)
}

/// The corrupted weight units of `corrupted` relative to `clean`: one
/// [`WeightRow`] per dense output column / conv output channel whose
/// weights differ bitwise, in depth order. This is the localization the
/// batched evaluator derives from its overlay undo log — recomputed here
/// independently, from the tensors themselves.
///
/// # Panics
///
/// Panics if the two networks' layer kinds mismatch.
#[must_use]
pub fn corrupted_units(clean: &Network, corrupted: &Network) -> Vec<WeightRow> {
    let mut units = Vec::new();
    for (pos, &li) in clean.weight_layer_indices().iter().enumerate() {
        match (&clean.layers()[li], &corrupted.layers()[li]) {
            (Layer::Dense(a), Layer::Dense(b)) => {
                let (in_l, out_l) = a.weights().dims();
                for u in 0..out_l {
                    if (0..in_l)
                        .any(|r| a.weights().get(r, u).to_bits() != b.weights().get(r, u).to_bits())
                    {
                        units.push(WeightRow { layer: pos, row: u });
                    }
                }
            }
            (Layer::Conv2d(a), Layer::Conv2d(b)) => {
                let out_c = a.out_shape().c;
                let per_ch = a.weights().len() / out_c;
                for u in 0..out_c {
                    let span = u * per_ch..(u + 1) * per_ch;
                    if a.weights()[span.clone()]
                        .iter()
                        .zip(&b.weights()[span])
                        .any(|(x, y)| x.to_bits() != y.to_bits())
                    {
                        units.push(WeightRow { layer: pos, row: u });
                    }
                }
            }
            _ => panic!("weight layer kind mismatch at layer {li}"),
        }
    }
    units
}

/// A copy of `clean` with the given units replaced by their `corrupted`
/// counterparts — the hybrid network ddmin evaluates.
///
/// # Panics
///
/// Panics if the networks mismatch in shape or a unit is out of range.
#[must_use]
pub fn apply_units(clean: &Network, corrupted: &Network, units: &[WeightRow]) -> Network {
    let idxs = clean.weight_layer_indices();
    let mut hybrid = clean.clone();
    for wr in units {
        let li = idxs[wr.layer];
        let src = &corrupted.layers()[li];
        match (&mut hybrid.layers_mut()[li], src) {
            (Layer::Dense(h), Layer::Dense(s)) => {
                let (in_l, _) = s.weights().dims();
                for r in 0..in_l {
                    h.weights_mut().set(r, wr.row, s.weights().get(r, wr.row));
                }
            }
            (Layer::Conv2d(h), Layer::Conv2d(s)) => {
                let out_c = s.out_shape().c;
                let per_ch = s.weights().len() / out_c;
                let span = wr.row * per_ch..(wr.row + 1) * per_ch;
                h.weights_mut()[span.clone()].copy_from_slice(&s.weights()[span]);
            }
            _ => panic!("weight layer kind mismatch at layer {li}"),
        }
    }
    hybrid
}

/// The scalar reference: [`Network::accuracy`]'s correct-prediction count.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn scalar_count(net: &Network, inputs: &[f32], labels: &[u8]) -> usize {
    (net.accuracy(inputs, labels) * labels.len() as f64).round() as usize
}

/// Outcome of one batched-vs-scalar comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardCheck {
    /// The scalar path's correct count.
    pub scalar: usize,
    /// The batched path's count with [`LayerWork::Full`] at the first dirty
    /// layer.
    pub batched_full: usize,
    /// The batched path's count with the damage localized to the first
    /// dirty layer's columns/channels (`None` when no weights were dirty,
    /// so there is nothing to localize).
    pub batched_localized: Option<usize>,
}

impl ForwardCheck {
    /// Whether every batched variant agreed with the scalar reference.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.batched_full == self.scalar
            && self.batched_localized.unwrap_or(self.scalar) == self.scalar
    }
}

/// Runs the scalar path and every applicable batched variant on one
/// corrupted trial and reports all three counts.
///
/// `clean_inputs` are the images the activation cache is built from;
/// `trial_inputs` may differ on exactly the rows listed in `dirty_images`
/// (sorted, deduped) — [`corrupt_inputs`] produces such a pair.
///
/// # Panics
///
/// Panics on buffer length mismatches (see [`trial_correct_count`]).
#[must_use]
pub fn check_batched(
    clean: &Network,
    corrupted: &Network,
    clean_inputs: &[f32],
    trial_inputs: &[f32],
    dirty_images: &[usize],
    labels: &[u8],
    cache_budget: usize,
) -> ForwardCheck {
    let cache = CleanForward::with_cache_budget(clean, clean_inputs, labels, cache_budget);
    let mut scratch = BatchedScratch::new();
    let units = corrupted_units(clean, corrupted);

    let scalar = scalar_count(corrupted, trial_inputs, labels);

    let idxs = clean.weight_layer_indices();
    let first = units.first().map(|u| idxs[u.layer]);
    let batched_full = trial_correct_count(
        corrupted,
        &cache,
        labels,
        trial_inputs,
        dirty_images,
        first.map(|l0| (l0, LayerWork::Full)),
        &mut scratch,
    );

    let batched_localized = first.map(|l0| {
        let first_pos = units[0].layer;
        let local: Vec<usize> = units
            .iter()
            .filter(|u| u.layer == first_pos)
            .map(|u| u.row)
            .collect();
        let work = match &clean.layers()[l0] {
            Layer::Dense(_) => LayerWork::DenseColumns(&local),
            Layer::Conv2d(_) => LayerWork::ConvChannels(&local),
            other => panic!("unexpected weight layer kind: {other:?}"),
        };
        trial_correct_count(
            corrupted,
            &cache,
            labels,
            trial_inputs,
            dirty_images,
            Some((l0, work)),
            &mut scratch,
        )
    });

    ForwardCheck {
        scalar,
        batched_full,
        batched_localized,
    }
}

/// Configuration of a batched-vs-scalar differential run.
#[derive(Debug, Clone)]
pub struct ForwardDiffConfig {
    /// Monte-Carlo trials (one fault die each).
    pub trials: usize,
    /// Effective rail voltage of the weight bit image.
    pub weight_voltage: Volt,
    /// Effective rail voltage of the input bit image.
    pub input_voltage: Volt,
    /// Root seed; trial `t` derives its die from
    /// `derive_seed(seed, site::DIFF_TRIAL, t)`.
    pub seed: u64,
    /// The cell-`V_min` fault model.
    pub model: VminFaultModel,
    /// Activation-cache budget in `f32` elements (exercises the light-cache
    /// fallback when small).
    pub cache_budget: usize,
}

impl Default for ForwardDiffConfig {
    /// Voltages deep enough that every trial corrupts both weights and a
    /// few input images under the calibrated 14nm model.
    fn default() -> Self {
        Self {
            trials: 8,
            weight_voltage: Volt::new(0.40),
            input_voltage: Volt::new(0.42),
            seed: 0xF0D1FF,
            model: VminFaultModel::default_14nm(),
            cache_budget: dante_nn::batched::DEFAULT_CACHE_BUDGET,
        }
    }
}

/// One disagreeing trial of [`run_forward_differential`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardDivergence {
    /// Trial index within the run.
    pub trial: usize,
    /// The derived trial seed (replays the dies exactly).
    pub trial_seed: u64,
    /// The full comparison record.
    pub check: ForwardCheck,
}

/// Outcome of a batched-vs-scalar differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardDiffReport {
    /// Trials executed.
    pub trials: usize,
    /// Every disagreeing trial (empty on agreement).
    pub divergences: Vec<ForwardDivergence>,
}

impl ForwardDiffReport {
    /// Whether every trial agreed exactly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Human-readable account of the divergences.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{} divergence(s) across {} forward differential trial(s)\n",
            self.divergences.len(),
            self.trials
        );
        for d in &self.divergences {
            let _ = writeln!(
                out,
                "  trial {} (seed {:#018x}): scalar {} vs batched full {} / localized {:?}",
                d.trial,
                d.trial_seed,
                d.check.scalar,
                d.check.batched_full,
                d.check.batched_localized
            );
        }
        out
    }
}

/// The full acceptance run: `config.trials` trials, each corrupting the
/// network's weights and the input images with fresh derived dies, then
/// demanding exact scalar/batched agreement on every variant.
///
/// # Panics
///
/// Panics if `config.trials` is zero or the buffers mismatch the network.
#[must_use]
pub fn run_forward_differential(
    net: &Network,
    inputs: &[f32],
    labels: &[u8],
    config: &ForwardDiffConfig,
) -> ForwardDiffReport {
    assert!(config.trials > 0, "differential run needs trials");
    let clean = quantized_baseline(net);
    let clean_inputs = quantized_input_baseline(inputs, net.in_len());
    let mut divergences = Vec::new();
    for trial in 0..config.trials {
        let trial_seed = derive_seed(config.seed, site::DIFF_TRIAL, trial as u64);
        let corrupted = corrupt_weights(net, &config.model, config.weight_voltage, trial_seed);
        let (trial_inputs, dirty) = corrupt_inputs(
            inputs,
            net.in_len(),
            &config.model,
            config.input_voltage,
            trial_seed,
        );
        let check = check_batched(
            &clean,
            &corrupted,
            &clean_inputs,
            &trial_inputs,
            &dirty,
            labels,
            config.cache_budget,
        );
        if !check.is_clean() {
            divergences.push(ForwardDivergence {
                trial,
                trial_seed,
                check,
            });
        }
    }
    ForwardDiffReport {
        trials: config.trials,
        divergences,
    }
}

/// Shrinks the corruption of `corrupted` (relative to `clean`) to a
/// 1-minimal set of weight units on which `diverges` still fires, by
/// [`ddmin`] over [`corrupted_units`]. Returns `None` when the full
/// corruption does not trigger `diverges` at all.
///
/// The batched-vs-scalar specialization passes
/// `|hybrid| !check_batched(clean, hybrid, ...).is_clean()` — any evaluator
/// mismatch then arrives as a handful of weight units, not a whole die.
#[must_use]
pub fn minimize_units(
    clean: &Network,
    corrupted: &Network,
    diverges: impl Fn(&Network) -> bool,
) -> Option<Vec<WeightRow>> {
    let units = corrupted_units(clean, corrupted);
    if units.is_empty() || !diverges(&apply_units(clean, corrupted, &units)) {
        return None;
    }
    Some(ddmin(&units, |subset| {
        diverges(&apply_units(clean, corrupted, subset))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_nn::layers::{Conv2d, Dense, MaxPool2d, Relu, Shape3};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fc_net(in_len: usize, hidden: usize, classes: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Dense(Dense::new(in_len, hidden, &mut rng)),
            Layer::Relu(Relu::new(hidden)),
            Layer::Dense(Dense::new(hidden, hidden, &mut rng)),
            Layer::Relu(Relu::new(hidden)),
            Layer::Dense(Dense::new(hidden, classes, &mut rng)),
        ])
        .expect("valid net")
    }

    fn conv_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::Conv2d(Conv2d::new(Shape3::new(1, 8, 8), 4, 3, 1, &mut rng)),
            Layer::Relu(Relu::new(4 * 64)),
            Layer::MaxPool2d(MaxPool2d::new(Shape3::new(4, 8, 8))),
            Layer::Dense(Dense::new(4 * 16, 3, &mut rng)),
        ])
        .expect("valid net")
    }

    fn dataset(rng: &mut StdRng, n: usize, in_len: usize, classes: u8) -> (Vec<f32>, Vec<u8>) {
        let inputs = (0..n * in_len).map(|_| rng.gen::<f32>()).collect();
        let labels = (0..n).map(|_| rng.gen::<u8>() % classes).collect();
        (inputs, labels)
    }

    #[test]
    fn differential_is_clean_across_shapes_and_batch_sizes() {
        let mut rng = StdRng::seed_from_u64(40);
        let config = ForwardDiffConfig {
            trials: 4,
            ..ForwardDiffConfig::default()
        };
        // Batch sizes straddle the internal 256-image chunk; shapes vary
        // the in/hidden/out widths past the GEMM kernels' tile remainders.
        for (in_len, hidden, classes, n) in [
            (12, 9, 4, 1),
            (17, 23, 5, 37),
            (12, 16, 4, 256),
            (9, 11, 3, 300),
        ] {
            let net = fc_net(in_len, hidden, classes, 50 + n as u64);
            let (inputs, labels) = dataset(&mut rng, n, in_len, classes as u8);
            let report = run_forward_differential(&net, &inputs, &labels, &config);
            assert!(
                report.is_clean(),
                "fc {in_len}x{hidden}x{classes} n={n}: {}",
                report.render()
            );
        }
    }

    #[test]
    fn differential_is_clean_on_conv_networks() {
        let mut rng = StdRng::seed_from_u64(41);
        let net = conv_net(60);
        let (inputs, labels) = dataset(&mut rng, 48, net.in_len(), 3);
        let config = ForwardDiffConfig {
            trials: 4,
            ..ForwardDiffConfig::default()
        };
        let report = run_forward_differential(&net, &inputs, &labels, &config);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn differential_is_clean_under_the_light_cache_fallback() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = fc_net(12, 9, 4, 70);
        let (inputs, labels) = dataset(&mut rng, 90, 12, 4);
        let config = ForwardDiffConfig {
            trials: 4,
            cache_budget: 0,
            ..ForwardDiffConfig::default()
        };
        let report = run_forward_differential(&net, &inputs, &labels, &config);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn corruption_is_a_pure_function_of_its_seed() {
        let net = fc_net(12, 9, 4, 80);
        let base = quantized_baseline(&net);
        let model = VminFaultModel::default_14nm();
        let v = Volt::new(0.40);
        let a = corrupt_weights(&net, &model, v, 7);
        let b = corrupt_weights(&net, &model, v, 7);
        assert_eq!(corrupted_units(&a, &b), Vec::new());
        assert!(!corrupted_units(&base, &a).is_empty());
        // At a safe voltage nothing flips: the baseline round-trip exactly.
        let clean = corrupt_weights(&net, &model, Volt::new(0.60), 7);
        assert_eq!(corrupted_units(&base, &clean), Vec::new());
    }

    #[test]
    fn corrupt_inputs_reports_exactly_the_flipped_images() {
        let mut rng = StdRng::seed_from_u64(43);
        let (inputs, _) = dataset(&mut rng, 60, 12, 4);
        let model = VminFaultModel::default_14nm();
        let base = quantized_input_baseline(&inputs, 12);
        let (faulty, dirty) = corrupt_inputs(&inputs, 12, &model, Volt::new(0.40), 5);
        assert!(!dirty.is_empty(), "0.40 V should flip some image bits");
        assert!(dirty.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        for img in 0..60 {
            let span = img * 12..(img + 1) * 12;
            let differs = base[span.clone()]
                .iter()
                .zip(&faulty[span])
                .any(|(a, b)| a.to_bits() != b.to_bits());
            assert_eq!(differs, dirty.contains(&img), "image {img}");
        }
    }

    #[test]
    fn hybrid_units_round_trip() {
        let net = fc_net(12, 9, 4, 90);
        let base = quantized_baseline(&net);
        let model = VminFaultModel::default_14nm();
        let corrupted = corrupt_weights(&net, &model, Volt::new(0.40), 3);
        let units = corrupted_units(&base, &corrupted);
        assert!(!units.is_empty());
        // All units -> the corrupted network; no units -> the clean one.
        let all = apply_units(&base, &corrupted, &units);
        assert_eq!(corrupted_units(&all, &corrupted), Vec::new());
        let none = apply_units(&base, &corrupted, &[]);
        assert_eq!(corrupted_units(&base, &none), Vec::new());
    }

    #[test]
    fn minimizer_shrinks_an_accuracy_flip_to_one_minimal_units() {
        let mut rng = StdRng::seed_from_u64(44);
        let net = fc_net(12, 9, 4, 100);
        let base = quantized_baseline(&net);
        let (inputs, labels) = dataset(&mut rng, 40, 12, 4);
        let model = VminFaultModel::default_14nm();
        let clean_count = scalar_count(&base, &inputs, &labels);

        // Find a die that changes the correct count at deep VLV
        // (deterministic: the first qualifying seed is always the same).
        let corrupted = (0..64)
            .map(|s| corrupt_weights(&net, &model, Volt::new(0.36), s))
            .find(|c| scalar_count(c, &inputs, &labels) != clean_count)
            .expect("some die in 64 changes the count at 0.36 V");

        let diverges = |p: &Network| scalar_count(p, &inputs, &labels) != clean_count;
        let minimal =
            minimize_units(&base, &corrupted, diverges).expect("full corruption changes the count");
        assert!(!minimal.is_empty());
        assert!(diverges(&apply_units(&base, &corrupted, &minimal)));
        // 1-minimal: dropping any single unit loses the repro.
        for skip in 0..minimal.len() {
            let reduced: Vec<WeightRow> = minimal
                .iter()
                .enumerate()
                .filter_map(|(i, &u)| (i != skip).then_some(u))
                .collect();
            if reduced.is_empty() {
                continue;
            }
            assert!(
                !diverges(&apply_units(&base, &corrupted, &reduced)),
                "unit {skip} was removable"
            );
        }
    }

    #[test]
    fn divergence_report_renders_replay_information() {
        let report = ForwardDiffReport {
            trials: 4,
            divergences: vec![ForwardDivergence {
                trial: 1,
                trial_seed: 0xBEEF,
                check: ForwardCheck {
                    scalar: 30,
                    batched_full: 29,
                    batched_localized: Some(31),
                },
            }],
        };
        let text = report.render();
        assert!(text.contains("trial 1"), "{text}");
        assert!(text.contains("scalar 30"), "{text}");
        assert!(text.contains("0x000000000000beef"), "{text}");
    }
}
