//! Acceptance machinery for the sparse tail-sampled fault overlay
//! (`dante_sram::sparse`): the analytic conditional distribution its
//! `V_min` draws must follow, and an exact word-level differential check
//! that a sparse projection of a dense die corrupts packed data
//! identically to the dense overlay itself.
//!
//! The sparse sampler replaces the dense per-cell Gaussian draw with a
//! binomial faulty-cell count plus truncated-tail `V_min` values, so its
//! correctness claims are statistical (the tail draws follow the Gaussian
//! conditioned on `V_min > v_floor`) and structural (given the *same* die,
//! sparse and dense application must flip the same bits). This module
//! packages both so `tests/fault_model_stats.rs` and the sparse unit tests
//! can share them.

use dante_circuit::units::Volt;
use dante_sram::fault::VminFaultModel;
use dante_sram::math::truncated_tail_cdf;
use dante_sram::sparse::SparseOverlay;
use dante_sram::storage::FaultOverlay;
use std::fmt;

/// The CDF of a sparse overlay's `V_min` draws: the model's Gaussian
/// conditioned on the cell being faulty at the floor (`V_min > v_floor`).
/// Returns a closure suitable for [`crate::stats::ks_statistic`].
pub fn sparse_vmin_cdf(model: &VminFaultModel, v_floor: Volt) -> impl Fn(f64) -> f64 {
    let mu = model.mu().volts();
    let sigma = model.sigma().volts();
    let floor = v_floor.volts();
    move |x| truncated_tail_cdf(mu, sigma, floor, x)
}

/// One word-level divergence between a dense overlay and its sparse
/// projection, reported by [`sparse_matches_dense`].
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayMismatch {
    /// The evaluation voltage at which the overlays diverged.
    pub voltage: Volt,
    /// Index of the diverging 64-bit corruption word.
    pub word: usize,
    /// The dense overlay's corruption word.
    pub dense: u64,
    /// The sparse projection's corruption word.
    pub sparse: u64,
}

impl fmt::Display for OverlayMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sparse/dense corruption diverges at {} word {}: dense {:#018x} vs sparse {:#018x} (differing bits {:#018x})",
            self.voltage,
            self.word,
            self.dense,
            self.sparse,
            self.dense ^ self.sparse
        )
    }
}

/// Exact differential check: draws one dense die from `seed`, projects it
/// to a sparse overlay at `v_floor`, and verifies word-for-word that both
/// produce identical corruption masks at every voltage in `voltages`.
///
/// Returns the total number of corruption words compared.
///
/// # Errors
///
/// Returns the first [`OverlayMismatch`] found.
///
/// # Panics
///
/// Panics if `bits` is zero, if any voltage is below `v_floor` (the sparse
/// overlay rejects evaluation below its sampling floor by construction), or
/// if `v_floor` is below the data-retention limit.
pub fn sparse_matches_dense(
    bits: usize,
    model: &VminFaultModel,
    v_floor: Volt,
    seed: u64,
    voltages: &[Volt],
) -> Result<usize, OverlayMismatch> {
    let dense = FaultOverlay::from_seed(bits, model, seed);
    let sparse = SparseOverlay::from_dense(&dense, v_floor);
    let words = bits.div_ceil(64);
    let mut sparse_words = Vec::new();
    let mut compared = 0usize;
    for &v in voltages {
        sparse.corruption_words_into(v, words, &mut sparse_words);
        for (word, (d, &s)) in dense.corruption_iter(v).zip(&sparse_words).enumerate() {
            if d != s {
                return Err(OverlayMismatch {
                    voltage: v,
                    word,
                    dense: d,
                    sparse: s,
                });
            }
            compared += 1;
        }
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{ks_critical, ks_statistic};
    use dante_sram::sparse::SparseCell;

    fn mv(v: u32) -> Volt {
        Volt::from_millivolts(f64::from(v))
    }

    #[test]
    fn differential_check_passes_for_real_dies() {
        let model = VminFaultModel::default_14nm();
        let voltages: Vec<Volt> = [360, 400, 440, 480, 520].map(mv).to_vec();
        let compared = sparse_matches_dense(8_192, &model, mv(360), 99, &voltages)
            .expect("sparse projection must corrupt identically");
        assert_eq!(compared, voltages.len() * 8_192usize.div_ceil(64));
    }

    #[test]
    fn differential_check_reports_injected_divergence() {
        // Hand-build a sparse overlay that claims a fault the dense die
        // does not have, and confirm the word-level comparison catches it.
        let model = VminFaultModel::default_14nm();
        let dense = FaultOverlay::from_seed(1_024, &model, 7);
        let mut sparse = SparseOverlay::from_dense(&dense, mv(360));
        let mut cells: Vec<SparseCell> = sparse.cells().to_vec();
        // Flip the flip-bit of the first cell so application diverges.
        assert!(!cells.is_empty(), "a 1 Kbit die at 0.36 V has faults");
        cells[0].flip = !cells[0].flip;
        sparse = SparseOverlay::from_cells(1_024, mv(360), cells);

        let words = 1_024usize.div_ceil(64);
        let mut sparse_words = Vec::new();
        let v = mv(360);
        sparse.corruption_words_into(v, words, &mut sparse_words);
        let diverged = dense
            .corruption_iter(v)
            .zip(&sparse_words)
            .any(|(d, &s)| d != s);
        assert!(diverged, "the tampered cell must change a corruption word");
    }

    #[test]
    fn conditional_cdf_accepts_sparse_draws() {
        let model = VminFaultModel::default_14nm();
        let v_floor = mv(420);
        let overlay = SparseOverlay::from_seed(4_000_000, &model, v_floor, 12345);
        let samples: Vec<f64> = overlay.cells().iter().map(|c| f64::from(c.vmin)).collect();
        assert!(samples.len() > 1_000, "enough tail mass at 0.42 V");
        let d = ks_statistic(&samples, sparse_vmin_cdf(&model, v_floor));
        let crit = ks_critical(samples.len(), 0.01);
        assert!(d < crit, "KS D = {d} exceeds critical {crit}");
    }
}
