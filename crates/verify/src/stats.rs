//! Statistical acceptance machinery: Kolmogorov–Smirnov and chi-square
//! goodness-of-fit tests for the sampled cell-`V_min` distribution, and
//! Wilson score intervals for Monte-Carlo accuracy estimates.
//!
//! Everything here is closed-form — no lookup tables, no external stats
//! crates. The normal quantile function comes from `dante_sram::math`
//! (Acklam + Halley refinement), the chi-square quantile from the
//! Wilson–Hilferty cube approximation, and the KS critical value from the
//! asymptotic Kolmogorov distribution. All three are accurate to well under
//! a percent for the sample sizes the acceptance suite uses (n >= 1000,
//! df <= 50), which is tight enough for pass/fail thresholds chosen with
//! comfortable power margins.

use dante_sram::math::norm_ppf;

/// The two-sided Kolmogorov–Smirnov statistic `D_n = sup |F_n(x) - F(x)|`
/// of `samples` against the continuous CDF `cdf`.
///
/// Uses the standard tight form: for the i-th order statistic `x_(i)`
/// (1-based), the empirical CDF jumps from `(i-1)/n` to `i/n`, so
/// `D_n = max_i max(i/n - F(x_(i)), F(x_(i)) - (i-1)/n)`.
///
/// # Panics
///
/// Panics if `samples` is empty or contains a non-finite value.
#[must_use]
pub fn ks_statistic(samples: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(
        !samples.is_empty(),
        "KS statistic needs at least one sample"
    );
    let mut sorted = samples.to_vec();
    assert!(
        sorted.iter().all(|v| v.is_finite()),
        "KS statistic requires finite samples"
    );
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let hi = (i as f64 + 1.0) / n - f;
        let lo = f - i as f64 / n;
        d = d.max(hi).max(lo);
    }
    d
}

/// Critical value of the two-sided KS test at significance `alpha`:
/// `D_crit = sqrt(-ln(alpha / 2) / (2 n))` (asymptotic Kolmogorov
/// distribution; accurate for `n >= ~35`).
///
/// # Panics
///
/// Panics if `n` is zero or `alpha` is outside `(0, 1)`.
#[must_use]
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "KS critical value needs a positive sample count");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "significance level must be in (0, 1)"
    );
    (-(alpha / 2.0).ln() / (2.0 * n as f64)).sqrt()
}

/// Pearson's chi-square statistic `sum (O_i - E_i)^2 / E_i`.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or any expected count
/// is not strictly positive (a zero-expectation bin makes the statistic
/// undefined — merge such bins before calling).
#[must_use]
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected bin count mismatch"
    );
    assert!(!observed.is_empty(), "chi-square needs at least one bin");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected bin counts must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Upper critical value of the chi-square distribution with `df` degrees of
/// freedom at significance `alpha`, via the Wilson–Hilferty cube
/// approximation:
///
/// `chi2_crit = df * (1 - 2/(9 df) + z_{1-alpha} * sqrt(2/(9 df)))^3`
///
/// Accurate to a few parts in a thousand for `df >= 3` (e.g. df=3,
/// alpha=0.05 gives 7.81 vs the exact 7.815).
///
/// # Panics
///
/// Panics if `df` is zero or `alpha` is outside `(0, 1)`.
#[must_use]
pub fn chi_square_critical(df: usize, alpha: f64) -> f64 {
    assert!(df > 0, "chi-square needs at least one degree of freedom");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "significance level must be in (0, 1)"
    );
    let k = df as f64;
    let z = norm_ppf(1.0 - alpha);
    let t = 2.0 / (9.0 * k);
    k * (1.0 - t + z * t.sqrt()).powi(3)
}

/// Wilson score confidence interval for a binomial proportion: the interval
/// of true success probabilities `p` whose `z`-sigma normal band contains
/// the observed `successes / n`.
///
/// Unlike the Wald interval it never leaves `[0, 1]` and stays calibrated
/// for proportions near the boundaries — exactly the regime of Monte-Carlo
/// accuracy estimates (clean accuracy near 1, collapsed accuracy near 0.1).
///
/// # Panics
///
/// Panics if `n` is zero, `successes > n`, or `z` is not positive.
#[must_use]
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    assert!(n > 0, "Wilson interval needs at least one observation");
    assert!(successes <= n, "more successes than observations");
    assert!(z > 0.0, "z must be positive");
    let n = n as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Interior edges of `bins` equal-probability bins of a `N(mu, sigma)`
/// distribution: `bins - 1` values at the `i/bins` quantiles. The outer
/// bins are unbounded, so with these edges every bin has expected count
/// `n / bins` — the configuration that maximizes chi-square power against
/// smooth alternatives.
///
/// # Panics
///
/// Panics if `bins < 2` or `sigma` is not positive.
#[must_use]
pub fn normal_bin_edges(mu: f64, sigma: f64, bins: usize) -> Vec<f64> {
    assert!(bins >= 2, "need at least two bins");
    assert!(sigma > 0.0, "sigma must be positive");
    (1..bins)
        .map(|i| mu + sigma * norm_ppf(i as f64 / bins as f64))
        .collect()
}

/// Index-of-dispersion test statistic for count data:
/// `(n - 1) * s^2 / mean`, distributed as `chi^2(n - 1)` when the counts
/// are i.i.d. Poisson (the limit of per-word fault counts under an
/// independent-cell fault model with small per-cell probability).
///
/// This is the classic variance-to-mean clustering test: spatially
/// correlated faults (weak rows/columns) overdisperse the per-word counts
/// and inflate the statistic far above the chi-square upper critical value,
/// while an i.i.d. model keeps it inside the two-sided acceptance band
/// (`chi_square_critical(n - 1, 1 - alpha/2)` ..
/// `chi_square_critical(n - 1, alpha/2)`).
///
/// # Panics
///
/// Panics if fewer than two counts are given or the mean is zero (no
/// faults — no dispersion to measure).
#[must_use]
pub fn index_of_dispersion(counts: &[u64]) -> f64 {
    assert!(
        counts.len() >= 2,
        "dispersion needs at least two count bins"
    );
    let n = counts.len() as f64;
    let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
    assert!(mean > 0.0, "dispersion is undefined for all-zero counts");
    let ss = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>();
    ss / mean
}

/// Histogram of `samples` over the bins delimited by sorted interior
/// `edges` (first bin is `(-inf, edges[0])`, last is `[edges.last(), inf)`),
/// returned as `edges.len() + 1` counts.
///
/// # Panics
///
/// Panics if `edges` is empty or not sorted.
#[must_use]
pub fn bin_counts(samples: &[f64], edges: &[f64]) -> Vec<u64> {
    assert!(!edges.is_empty(), "need at least one bin edge");
    assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "bin edges must be strictly increasing"
    );
    let mut counts = vec![0u64; edges.len() + 1];
    for &s in samples {
        // partition_point gives the count of edges <= s, i.e. the bin index.
        let bin = edges.partition_point(|&e| e <= s);
        counts[bin] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_sram::math::phi_cdf;

    #[test]
    fn ks_statistic_is_zero_for_perfectly_spaced_quantiles() {
        // Samples at the (i - 1/2)/n quantiles of the uniform CDF give the
        // minimal possible D_n = 1/(2n).
        let n = 100usize;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&samples, |x| x.clamp(0.0, 1.0));
        assert!((d - 1.0 / (2.0 * n as f64)).abs() < 1e-12, "D = {d}");
    }

    #[test]
    fn ks_statistic_detects_gross_mismatch() {
        // All samples at 0.9 vs the uniform CDF: D = 0.9.
        let samples = vec![0.9; 50];
        let d = ks_statistic(&samples, |x| x.clamp(0.0, 1.0));
        assert!((d - 0.9).abs() < 1e-12, "D = {d}");
    }

    #[test]
    fn ks_critical_matches_tabulated_values() {
        // Tabulated asymptotic values: 1.358/sqrt(n) at alpha=0.05,
        // 1.628/sqrt(n) at alpha=0.01.
        let c = ks_critical(100, 0.05);
        assert!((c - 0.1358).abs() < 5e-4, "c = {c}");
        let c = ks_critical(400, 0.01);
        assert!((c - 1.628 / 20.0).abs() < 5e-4, "c = {c}");
    }

    #[test]
    fn chi_square_statistic_is_zero_on_exact_match() {
        let obs = [10u64, 20, 30];
        let exp = [10.0, 20.0, 30.0];
        assert!(chi_square_statistic(&obs, &exp).abs() < 1e-12);
    }

    #[test]
    fn chi_square_statistic_hand_computed() {
        // (8-10)^2/10 + (12-10)^2/10 = 0.8
        let s = chi_square_statistic(&[8, 12], &[10.0, 10.0]);
        assert!((s - 0.8).abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn chi_square_critical_matches_tables() {
        // Exact values: df=3 alpha=0.05 -> 7.815; df=9 alpha=0.05 -> 16.919;
        // df=9 alpha=0.01 -> 21.666. Wilson–Hilferty is good to ~0.5%.
        let c = chi_square_critical(3, 0.05);
        assert!((c - 7.815).abs() < 0.05, "df=3: {c}");
        let c = chi_square_critical(9, 0.05);
        assert!((c - 16.919).abs() < 0.05, "df=9: {c}");
        let c = chi_square_critical(9, 0.01);
        assert!((c - 21.666).abs() < 0.15, "df=9 a=.01: {c}");
    }

    #[test]
    fn wilson_interval_contains_point_estimate_and_stays_in_unit_range() {
        for &(s, n) in &[(0u64, 10u64), (10, 10), (5, 10), (999, 1000), (1, 1000)] {
            let (lo, hi) = wilson_interval(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(
                lo <= p + 1e-12 && p <= hi + 1e-12,
                "({s}/{n}): [{lo}, {hi}]"
            );
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_narrows_with_sample_size() {
        let (lo1, hi1) = wilson_interval(60, 100, 1.96);
        let (lo2, hi2) = wilson_interval(600, 1000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_matches_textbook_example() {
        // Classic example: 8 successes in 10 trials, z=1.96 ->
        // approximately (0.490, 0.943).
        let (lo, hi) = wilson_interval(8, 10, 1.96);
        assert!((lo - 0.490).abs() < 5e-3, "lo = {lo}");
        assert!((hi - 0.943).abs() < 5e-3, "hi = {hi}");
    }

    #[test]
    fn equal_probability_bins_have_equal_analytic_mass() {
        let edges = normal_bin_edges(0.352, 0.040, 10);
        assert_eq!(edges.len(), 9);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        // Analytic mass of each bin under the same normal is 1/10.
        let cdf = |x: f64| phi_cdf((x - 0.352) / 0.040);
        let mut prev = 0.0;
        for &e in &edges {
            let mass = cdf(e) - prev;
            assert!((mass - 0.1).abs() < 1e-6, "bin mass {mass}");
            prev = cdf(e);
        }
        assert!((1.0 - prev - 0.1).abs() < 1e-6);
    }

    #[test]
    fn dispersion_is_small_for_flat_counts_and_large_for_clustered_ones() {
        // Perfectly flat counts: s^2 = 0, statistic 0.
        assert!(index_of_dispersion(&[5; 100]).abs() < 1e-12);
        // Hand-computed: counts [2, 4] have mean 3, ss = 2, statistic 2/3.
        let s = index_of_dispersion(&[2, 4]);
        assert!((s - 2.0 / 3.0).abs() < 1e-12, "s = {s}");
        // All mass clustered in one bin out of 100 (a "burst"): the
        // statistic explodes past the chi-square upper critical value.
        let mut clustered = vec![0u64; 100];
        clustered[17] = 100;
        let s = index_of_dispersion(&clustered);
        assert!(
            s > 10.0 * chi_square_critical(99, 0.01),
            "clustered counts must reject the i.i.d. null: {s}"
        );
    }

    #[test]
    fn bin_counts_cover_all_samples_including_tails() {
        let edges = [0.0, 1.0, 2.0];
        let counts = bin_counts(&[-5.0, 0.5, 0.5, 1.5, 7.0, 2.0], &edges);
        assert_eq!(counts, vec![1, 2, 1, 2]);
        assert_eq!(counts.iter().sum::<u64>(), 6);
    }
}
