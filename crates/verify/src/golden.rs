//! Golden snapshot harness: blessed copies of every deterministic paper
//! artifact live in `results/golden/*.json`; `cargo test` regenerates each
//! record and compares it against its blessed copy within per-metric
//! tolerance bands anchored to the paper's quoted numbers.
//!
//! Workflow:
//!
//! * a mismatch fails the test with a unified human-readable diff and drops
//!   the regenerated record plus the rendered diff under
//!   `target/golden-diff/` (override with `DANTE_GOLDEN_DIFF_DIR`) so CI can
//!   upload them as artifacts;
//! * an **intended** change is re-blessed with
//!   `UPDATE_GOLDEN=1 cargo test --test golden_snapshots`, which rewrites
//!   the stored JSON instead of comparing.
//!
//! Free-form notes are compared *softly*: drift is reported in the diff but
//! never fails a check on its own, because notes embed display-rounded
//! derived values whose numeric sources are already compared exactly.

use dante_bench::record::FigureRecord;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A per-metric acceptance band: `actual` matches `golden` when
/// `|actual - golden| <= abs + rel * |golden|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative component, scaled by the golden magnitude.
    pub rel: f64,
    /// Absolute floor, for values near zero.
    pub abs: f64,
}

impl Tolerance {
    /// Bit-exact comparison — for records built from configuration
    /// constants where any drift means the model changed.
    #[must_use]
    pub const fn exact() -> Self {
        Self { rel: 0.0, abs: 0.0 }
    }

    /// A relative band with an absolute floor.
    #[must_use]
    pub const fn band(rel: f64, abs: f64) -> Self {
        Self { rel, abs }
    }

    /// Whether `actual` is acceptable against `golden`.
    #[must_use]
    pub fn accepts(&self, golden: f64, actual: f64) -> bool {
        (actual - golden).abs() <= self.allowed(golden)
    }

    /// The maximum allowed absolute deviation from `golden`.
    #[must_use]
    pub fn allowed(&self, golden: f64) -> f64 {
        self.abs + self.rel * golden.abs()
    }
}

/// The acceptance band for one golden record, keyed by record id.
///
/// The bands are deliberately tight: regeneration is deterministic and the
/// JSON encoding round-trips `f64` exactly, so the slack only needs to
/// absorb *intended-neutral* refactors (e.g. floating-point reassociation),
/// not model changes. Records built purely from configuration tables
/// (`table1`, `table2`) and the deterministic transient waveform (`fig04`)
/// are compared bit-exactly.
#[must_use]
pub fn tolerance_for(record_id: &str) -> Tolerance {
    match record_id {
        "table1" | "table2" | "fig04" => Tolerance::exact(),
        // BER spans ~10 decades down to ~1e-10; a relative band with a tiny
        // absolute floor keeps the deep tail meaningfully checked.
        "fig07" => Tolerance::band(1e-3, 1e-15),
        // Counter-based Monte-Carlo plus a cached trained network: exactly
        // reproducible per platform, but the solve crosses enough libm calls
        // (exp/erf in the fault model, training nonlinearities) that a wider
        // band absorbs cross-platform last-ulp drift without ever masking a
        // flipped V_min (a grid step moves energies by far more than 0.5%).
        "iso_accuracy" => Tolerance::band(5e-3, 1e-9),
        // Same reproducibility story as iso_accuracy, plus a two-epoch
        // fault-injected training loop whose float accumulation crosses far
        // more libm territory — a 1% band still cannot mask a flipped V_min
        // (one grid step shifts energies by several percent).
        "retrain" => Tolerance::band(1e-2, 1e-9),
        // Pure analytic functions of the sram22-derived constants; the tight
        // band only absorbs floating-point reassociation, so any geometry or
        // constant change shows up as a hard mismatch.
        "macro_model" => Tolerance::band(1e-9, 1e-15),
        _ => Tolerance::band(1e-6, 1e-12),
    }
}

/// Outcome of a successful golden check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenOutcome {
    /// The regenerated record matched the blessed copy within tolerance.
    Match,
    /// `UPDATE_GOLDEN=1` was set; the blessed copy was (re)written.
    Blessed,
}

/// A failed golden comparison: which record, where its blessed copy lives,
/// and a rendered line-by-line account of every divergence.
#[derive(Debug, Clone)]
pub struct GoldenDiff {
    /// Record id.
    pub id: String,
    /// Path of the blessed JSON file.
    pub golden_path: PathBuf,
    /// Hard mismatches — each one fails the check.
    pub hard: Vec<String>,
    /// Soft drift (notes) — informational only.
    pub soft: Vec<String>,
    /// Where the regenerated record and rendered diff were written
    /// (`<id>.actual.json`, `<id>.diff.txt`), when writing succeeded.
    pub artifacts: Option<PathBuf>,
}

impl GoldenDiff {
    /// Renders the diff in a unified, human-readable form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== golden mismatch: {} ==", self.id);
        let _ = writeln!(out, "blessed copy: {}", self.golden_path.display());
        for line in &self.hard {
            let _ = writeln!(out, "{line}");
        }
        for line in &self.soft {
            let _ = writeln!(out, "~ (informational) {line}");
        }
        if let Some(dir) = &self.artifacts {
            let _ = writeln!(out, "artifacts: {}", dir.display());
        }
        let _ = writeln!(
            out,
            "hint: if this change is intended, re-bless with \
             `UPDATE_GOLDEN=1 cargo test --test golden_snapshots`"
        );
        out
    }
}

/// The store of blessed records.
#[derive(Debug, Clone)]
pub struct GoldenStore {
    dir: PathBuf,
    diff_dir: PathBuf,
}

impl GoldenStore {
    /// A store rooted at `dir`, writing mismatch artifacts to `diff_dir`.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, diff_dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            diff_dir: diff_dir.into(),
        }
    }

    /// The conventional location: `results/golden/` under the invoking
    /// package root (cargo sets `CARGO_MANIFEST_DIR` at test runtime), with
    /// diffs under `target/golden-diff/`. `DANTE_GOLDEN_DIR` and
    /// `DANTE_GOLDEN_DIFF_DIR` override either half.
    #[must_use]
    pub fn default_location() -> Self {
        let root = std::env::var_os("CARGO_MANIFEST_DIR")
            .map_or_else(|| PathBuf::from("."), PathBuf::from);
        let dir = std::env::var_os("DANTE_GOLDEN_DIR")
            .map_or_else(|| root.join("results").join("golden"), PathBuf::from);
        let diff_dir = std::env::var_os("DANTE_GOLDEN_DIFF_DIR")
            .map_or_else(|| root.join("target").join("golden-diff"), PathBuf::from);
        Self { dir, diff_dir }
    }

    /// Directory holding the blessed `*.json` files.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the environment requests re-blessing (`UPDATE_GOLDEN=1`).
    #[must_use]
    pub fn bless_requested() -> bool {
        std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
    }

    /// Checks `actual` against its blessed copy, honouring `UPDATE_GOLDEN`.
    ///
    /// # Errors
    ///
    /// Returns the rendered [`GoldenDiff`] when the blessed copy is
    /// missing, unparsable, or differs beyond the record's tolerance band.
    pub fn check(&self, actual: &FigureRecord) -> Result<GoldenOutcome, GoldenDiff> {
        self.check_with_mode(actual, Self::bless_requested())
    }

    /// [`Self::check`] with an explicit bless flag — the testable core.
    ///
    /// # Errors
    ///
    /// See [`Self::check`].
    pub fn check_with_mode(
        &self,
        actual: &FigureRecord,
        bless: bool,
    ) -> Result<GoldenOutcome, GoldenDiff> {
        let path = self.dir.join(format!("{}.json", actual.id));
        if bless {
            std::fs::create_dir_all(&self.dir)
                .unwrap_or_else(|e| panic!("cannot create golden dir {}: {e}", self.dir.display()));
            let mut json = actual.to_json_pretty();
            json.push('\n');
            std::fs::write(&path, json)
                .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
            return Ok(GoldenOutcome::Blessed);
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                return Err(self.fail(
                    actual,
                    &path,
                    vec![format!("- blessed copy unreadable: {e}")],
                    Vec::new(),
                ));
            }
        };
        let golden = match FigureRecord::from_json(&text) {
            Ok(g) => g,
            Err(e) => {
                return Err(self.fail(
                    actual,
                    &path,
                    vec![format!("- blessed copy unparsable: {e}")],
                    Vec::new(),
                ));
            }
        };
        let (hard, soft) = diff_records(&golden, actual, tolerance_for(&actual.id));
        if hard.is_empty() {
            Ok(GoldenOutcome::Match)
        } else {
            Err(self.fail(actual, &path, hard, soft))
        }
    }

    /// Blessed files in the store whose ids are not in `expected` — stale
    /// snapshots that no generator produces any more.
    #[must_use]
    pub fn orphans(&self, expected_ids: &[&str]) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut orphans: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id = name.strip_suffix(".json")?.to_owned();
                (!expected_ids.contains(&id.as_str())).then_some(id)
            })
            .collect();
        orphans.sort();
        orphans
    }

    fn fail(
        &self,
        actual: &FigureRecord,
        golden_path: &Path,
        hard: Vec<String>,
        soft: Vec<String>,
    ) -> GoldenDiff {
        let mut diff = GoldenDiff {
            id: actual.id.clone(),
            golden_path: golden_path.to_path_buf(),
            hard,
            soft,
            artifacts: None,
        };
        if std::fs::create_dir_all(&self.diff_dir).is_ok() {
            let actual_path = self.diff_dir.join(format!("{}.actual.json", actual.id));
            let diff_path = self.diff_dir.join(format!("{}.diff.txt", actual.id));
            let wrote_actual = std::fs::write(&actual_path, actual.to_json_pretty()).is_ok();
            let wrote_diff = std::fs::write(&diff_path, diff.render()).is_ok();
            if wrote_actual && wrote_diff {
                diff.artifacts = Some(self.diff_dir.clone());
            }
        }
        diff
    }
}

/// Field-by-field comparison of two records; returns `(hard, soft)`
/// mismatch lines in unified `-golden` / `+actual` style.
fn diff_records(
    golden: &FigureRecord,
    actual: &FigureRecord,
    tol: Tolerance,
) -> (Vec<String>, Vec<String>) {
    let mut hard = Vec::new();
    let mut soft = Vec::new();

    let mut meta = |field: &str, g: &str, a: &str| {
        if g != a {
            hard.push(format!("@ {field}:\n- {g}\n+ {a}"));
        }
    };
    meta("title", &golden.title, &actual.title);
    meta("x_label", &golden.x_label, &actual.x_label);
    meta("y_label", &golden.y_label, &actual.y_label);

    let golden_names: Vec<&str> = golden.series.iter().map(|s| s.name.as_str()).collect();
    let actual_names: Vec<&str> = actual.series.iter().map(|s| s.name.as_str()).collect();
    if golden_names != actual_names {
        hard.push(format!(
            "@ series set:\n- {golden_names:?}\n+ {actual_names:?}"
        ));
    } else {
        for (gs, as_) in golden.series.iter().zip(&actual.series) {
            if gs.points.len() != as_.points.len() {
                hard.push(format!(
                    "@ series \"{}\" point count:\n- {}\n+ {}",
                    gs.name,
                    gs.points.len(),
                    as_.points.len()
                ));
                continue;
            }
            for (i, (&(gx, gy), &(ax, ay))) in gs.points.iter().zip(&as_.points).enumerate() {
                let x_ok = tol.accepts(gx, ax);
                let y_ok = tol.accepts(gy, ay);
                if x_ok && y_ok {
                    continue;
                }
                let (axis, g, a) = if y_ok { ("x", gx, ax) } else { ("y", gy, ay) };
                hard.push(format!(
                    "@ series \"{}\" point {i} (x = {gx}):\n- {axis} = {g}\n+ {axis} = {a}\n  \
                     |diff| {:.3e} > allowed {:.3e} (rel {:.0e}, abs {:.0e})",
                    gs.name,
                    (a - g).abs(),
                    tol.allowed(g),
                    tol.rel,
                    tol.abs,
                ));
            }
        }
    }

    if golden.notes != actual.notes {
        soft.push(format!(
            "notes drift:\n- {:?}\n+ {:?}",
            golden.notes, actual.notes
        ));
    }
    (hard, soft)
}

/// One numeric claim lifted straight from the paper, checked against a
/// regenerated record — the anchor that ties the snapshot suite to the
/// publication rather than merely to the repository's own history.
#[derive(Debug, Clone)]
pub struct PaperAnchor {
    /// Golden record id the claim lives in.
    pub record: &'static str,
    /// Series name inside the record.
    pub series: &'static str,
    /// X coordinate of the anchored point (matched to 1e-9).
    pub x: f64,
    /// The paper's quoted value.
    pub paper_value: f64,
    /// Acceptance band around the quoted value.
    pub tolerance: Tolerance,
    /// Which paper claim this encodes.
    pub claim: &'static str,
}

impl PaperAnchor {
    /// Verifies the anchor against a regenerated record set.
    ///
    /// # Errors
    ///
    /// Returns a description of the failure: record/series/point missing,
    /// or the regenerated value falling outside the band around the
    /// paper's number.
    pub fn check(&self, records: &[FigureRecord]) -> Result<(), String> {
        let rec = records
            .iter()
            .find(|r| r.id == self.record)
            .ok_or_else(|| format!("anchor {}: record not regenerated", self.record))?;
        let series = rec
            .series
            .iter()
            .find(|s| s.name == self.series)
            .ok_or_else(|| format!("anchor {}/{}: series missing", self.record, self.series))?;
        let &(_, y) = series
            .points
            .iter()
            .find(|(x, _)| (x - self.x).abs() < 1e-9)
            .ok_or_else(|| {
                format!(
                    "anchor {}/{}: no point at x = {}",
                    self.record, self.series, self.x
                )
            })?;
        if self.tolerance.accepts(self.paper_value, y) {
            Ok(())
        } else {
            Err(format!(
                "anchor {}/{} at x = {}: regenerated {y} vs paper {} \
                 (allowed deviation {:.3e}) — claim: {}",
                self.record,
                self.series,
                self.x,
                self.paper_value,
                self.tolerance.allowed(self.paper_value),
                self.claim,
            ))
        }
    }
}

/// The paper-anchored claims the snapshot suite enforces. X coordinates are
/// in each record's native axis units (volts for the circuit figures,
/// metric index for the headline summary, network index for Table 3).
#[must_use]
pub fn paper_anchors() -> Vec<PaperAnchor> {
    vec![
        PaperAnchor {
            record: "fig07",
            series: "bit error rate",
            x: 0.44,
            paper_value: 1.4e-2,
            tolerance: Tolerance::band(0.05, 1e-4),
            claim: "Fig. 7: 4 Mbit test chip measures BER 1.4e-2 at 0.44 V",
        },
        PaperAnchor {
            record: "fig07",
            series: "bit error rate",
            x: 0.60,
            paper_value: 0.0,
            tolerance: Tolerance::band(0.0, 2.5e-7),
            claim: "Fig. 7: zero failing bits out of 4 Mbit at 0.60 V",
        },
        PaperAnchor {
            record: "fig08",
            series: "Vddv4",
            x: 0.40,
            paper_value: 0.60,
            tolerance: Tolerance::band(0.02, 5e-3),
            claim: "Fig. 8: full boost lifts a 0.40 V supply to ~0.60 V",
        },
        // The structural macro model must *derive* the scalar calibration:
        // the 64 Kbit bank's geometry-computed access capacitance lands on
        // Energy_ratio = 3 against the 2 pF PE op, and the replica-timed
        // 32 Kbit macro reproduces Fig. 9's boost latency win.
        PaperAnchor {
            record: "macro_model",
            series: "derived_scalars",
            x: 1.0,
            paper_value: 3.0,
            tolerance: Tolerance::band(0.0, 0.05),
            claim: "Sec. 6: Energy_ratio = 3 emerges from the 64 Kbit bank geometry",
        },
        PaperAnchor {
            record: "macro_model",
            series: "boost_macro_4",
            x: 0.5,
            paper_value: 0.65,
            tolerance: Tolerance::band(0.0, 0.05),
            claim: "Fig. 9: macro-level boost cuts access latency up to 35% at 0.5 V \
                    (structural replica-timed macro)",
        },
        PaperAnchor {
            record: "table3",
            series: "access/MAC ratio",
            x: 0.0,
            paper_value: 0.75,
            tolerance: Tolerance::band(0.0, 0.01),
            claim: "Table 3: MNIST FC on DANA does ~75 SRAM accesses per 100 MACs",
        },
        PaperAnchor {
            record: "table3",
            series: "access/MAC ratio",
            x: 1.0,
            paper_value: 0.0167,
            tolerance: Tolerance::band(0.0, 0.004),
            claim: "Table 3: AlexNet conv row-stationary does ~1.67 accesses per 100 MACs",
        },
        // The headline "paper" series literally encodes the abstract's
        // quoted numbers — compared exactly so they cannot drift silently.
        PaperAnchor {
            record: "headlines",
            series: "paper",
            x: 1.0,
            paper_value: 0.26,
            tolerance: Tolerance::exact(),
            claim: "abstract: 26% peak AlexNet savings vs dual supply",
        },
        PaperAnchor {
            record: "headlines",
            series: "paper",
            x: 4.0,
            paper_value: 0.32,
            tolerance: Tolerance::exact(),
            claim: "abstract: 32% leakage savings vs dual supply",
        },
        // The measured reproduction must land near the abstract's numbers;
        // the bands mirror the acceptance ranges of `dante::headlines`.
        PaperAnchor {
            record: "headlines",
            series: "measured",
            x: 1.0,
            paper_value: 0.26,
            tolerance: Tolerance::band(0.0, 0.10),
            claim: "reproduction of the 26% peak-savings headline",
        },
        PaperAnchor {
            record: "headlines",
            series: "measured",
            x: 2.0,
            paper_value: 0.17,
            tolerance: Tolerance::band(0.0, 0.10),
            claim: "reproduction of the 17% average-savings headline",
        },
        PaperAnchor {
            record: "headlines",
            series: "measured",
            x: 3.0,
            paper_value: 0.30,
            tolerance: Tolerance::band(0.0, 0.15),
            claim: "reproduction of the 30% savings vs single supply at 0.48 V",
        },
        PaperAnchor {
            record: "headlines",
            series: "measured",
            x: 4.0,
            paper_value: 0.32,
            tolerance: Tolerance::band(0.0, 0.13),
            claim: "reproduction of the 32% leakage-savings headline",
        },
        PaperAnchor {
            record: "headlines",
            series: "measured",
            x: 5.0,
            paper_value: 0.06,
            tolerance: Tolerance::band(0.0, 0.10),
            claim: "reproduction of the 6% booster leakage overhead",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_bench::record::Series;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_store() -> GoldenStore {
        static N: AtomicU32 = AtomicU32::new(0);
        let unique = format!(
            "dante-verify-golden-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        );
        let base = std::env::temp_dir().join(unique);
        GoldenStore::new(base.join("golden"), base.join("diff"))
    }

    fn sample_record() -> FigureRecord {
        FigureRecord::new("figX", "a title", "x", "y")
            .with_series(Series::new("s1", vec![(0.0, 1.0), (1.0, 2.0)]))
            .with_note("a note")
    }

    #[test]
    fn bless_then_check_round_trips() {
        let store = temp_store();
        let rec = sample_record();
        assert_eq!(
            store.check_with_mode(&rec, true).unwrap(),
            GoldenOutcome::Blessed
        );
        assert_eq!(
            store.check_with_mode(&rec, false).unwrap(),
            GoldenOutcome::Match
        );
    }

    #[test]
    fn missing_golden_fails_with_bless_hint() {
        let store = temp_store();
        let err = store.check_with_mode(&sample_record(), false).unwrap_err();
        let text = err.render();
        assert!(text.contains("unreadable"), "{text}");
        assert!(text.contains("UPDATE_GOLDEN=1"), "{text}");
    }

    #[test]
    fn value_drift_beyond_tolerance_is_reported_with_both_values() {
        let store = temp_store();
        let rec = sample_record();
        store.check_with_mode(&rec, true).unwrap();
        let mut changed = rec.clone();
        changed.series[0].points[1].1 = 2.5;
        let err = store.check_with_mode(&changed, false).unwrap_err();
        let text = err.render();
        assert!(text.contains("series \"s1\" point 1"), "{text}");
        assert!(
            text.contains("- y = 2") && text.contains("+ y = 2.5"),
            "{text}"
        );
        // Artifacts were dropped for CI upload.
        let dir = err.artifacts.expect("artifact dir");
        assert!(dir.join("figX.actual.json").is_file());
        assert!(dir.join("figX.diff.txt").is_file());
    }

    #[test]
    fn notes_drift_alone_is_soft() {
        let store = temp_store();
        let rec = sample_record();
        store.check_with_mode(&rec, true).unwrap();
        let changed = sample_record().with_note("an extra note");
        assert_eq!(
            store.check_with_mode(&changed, false).unwrap(),
            GoldenOutcome::Match
        );
    }

    #[test]
    fn series_rename_is_hard_failure() {
        let store = temp_store();
        store.check_with_mode(&sample_record(), true).unwrap();
        let mut changed = sample_record();
        changed.series[0].name = "renamed".into();
        let err = store.check_with_mode(&changed, false).unwrap_err();
        assert!(err.render().contains("series set"), "{}", err.render());
    }

    #[test]
    fn tolerance_band_accepts_within_and_rejects_beyond() {
        let t = Tolerance::band(1e-3, 1e-9);
        assert!(t.accepts(1.0, 1.0005));
        assert!(!t.accepts(1.0, 1.002));
        assert!(t.accepts(0.0, 5e-10));
        let e = Tolerance::exact();
        assert!(e.accepts(2.0, 2.0));
        assert!(!e.accepts(2.0, 2.0 + f64::EPSILON * 4.0));
    }

    #[test]
    fn orphan_detection_lists_unexpected_files() {
        let store = temp_store();
        store.check_with_mode(&sample_record(), true).unwrap();
        assert!(store.orphans(&["figX"]).is_empty());
        assert_eq!(store.orphans(&["other"]), vec!["figX".to_owned()]);
    }

    #[test]
    fn anchors_reference_unique_points() {
        let anchors = paper_anchors();
        let mut keys: Vec<(&str, &str, String)> = anchors
            .iter()
            .map(|a| (a.record, a.series, format!("{:.4}", a.x)))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), anchors.len(), "duplicate anchor");
    }

    #[test]
    fn anchor_check_reports_missing_and_out_of_band() {
        let anchor = PaperAnchor {
            record: "figX",
            series: "s1",
            x: 1.0,
            paper_value: 2.0,
            tolerance: Tolerance::band(0.0, 0.1),
            claim: "test claim",
        };
        assert!(anchor.check(&[]).unwrap_err().contains("not regenerated"));
        let rec = sample_record();
        anchor.check(std::slice::from_ref(&rec)).unwrap();
        let mut bad = rec;
        bad.series[0].points[1].1 = 3.0;
        let err = anchor.check(&[bad]).unwrap_err();
        assert!(err.contains("test claim"), "{err}");
    }
}
