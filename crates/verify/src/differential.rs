//! Differential executor checking: the cycle-level `dante-accel` executor
//! and an independent reference implementation of the compiled fixed-point
//! math are run side by side on identical fault-corrupted programs, and
//! every stage's output codes must agree bit-exactly.
//!
//! Why this catches bugs: the executor models DMA tiling, packed-word
//! memory traffic, ping-pong activation regions, and boost scheduling; the
//! reference below does none of that — it walks the quantized layers
//! directly, and deliberately iterates every MAC reduction in *reverse*
//! order. Because the datapath accumulates exactly in `i64`, reduction
//! order must not matter; any disagreement pins down the first diverging
//! `(trial, layer, element)`. Fault overlays are drawn per trial from
//! [`dante_sim::derive_seed`] under [`dante_sim::site::DIFF_TRIAL`], so
//! every divergence is replayable from `(root seed, trial index)` alone.
//!
//! When a divergence *does* surface, [`minimize_corruption`] shrinks the
//! set of corrupted weight rows to a 1-minimal repro with classic ddmin
//! delta debugging, so the failing configuration is a handful of rows
//! rather than an entire corrupted bit image.

use dante_accel::executor::InferenceTrace;
use dante_accel::{BoostSchedule, ChipConfig, Dante, Program};
use dante_circuit::units::Volt;
use dante_sim::{derive_seed, site, TrialEngine};
use dante_sram::fault::VminFaultModel;
use dante_sram::storage::FaultOverlay;

/// Packs activation codes exactly as the accelerator's memories do: four
/// 16-bit lanes per 64-bit word, lane 0 in the low bits.
fn pack_codes(codes: &[i16]) -> Vec<u64> {
    codes
        .chunks(4)
        .map(|chunk| {
            let mut word = 0u64;
            for (lane, &c) in chunk.iter().enumerate() {
                word |= u64::from(c as u16) << (16 * lane);
            }
            word
        })
        .collect()
}

fn unpack_codes(words: &[u64], len: usize) -> Vec<i16> {
    let mut out = Vec::with_capacity(len);
    for &word in words {
        for lane in 0..4 {
            if out.len() < len {
                out.push(((word >> (16 * lane)) & 0xFFFF) as u16 as i16);
            }
        }
    }
    out
}

/// Independent re-implementation of the PE's rounding requantization
/// (round half away from zero, saturate to `i16`), written from the
/// datapath definition rather than shared with `dante-accel`.
fn ref_requantize(acc: i64, multiplier: i32, shift: u32) -> i16 {
    let prod = i128::from(acc) * i128::from(multiplier);
    let half = if shift == 0 { 0 } else { 1i128 << (shift - 1) };
    let rounded = if prod >= 0 {
        (prod + half) >> shift
    } else {
        -((-prod + half) >> shift)
    };
    rounded.clamp(i128::from(i16::MIN), i128::from(i16::MAX)) as i16
}

/// Reference forward pass over a compiled program: returns the output codes
/// of every stage, computed straight from the quantized layer parameters
/// with reverse-order reductions.
///
/// # Panics
///
/// Panics if `sample.len()` mismatches the program's input length.
#[must_use]
pub fn reference_forward(program: &Program, sample: &[f32]) -> Vec<Vec<i16>> {
    use dante_accel::program::CompiledLayer;

    let mut x = program.quantize_input(sample);
    let mut stages = Vec::with_capacity(program.layers().len());
    for layer in program.layers() {
        let out: Vec<i16> = match layer {
            CompiledLayer::Fc(fc) => {
                let (m, s) = fc.requant();
                let codes = fc.weights().codes();
                (0..fc.out_len())
                    .map(|row| {
                        let base = row * fc.in_len();
                        let mut acc = fc.bias_acc()[row];
                        // Reverse order: i64 accumulation is exact, so the
                        // executor's forward order must give the same sum.
                        for i in (0..fc.in_len()).rev() {
                            acc += i64::from(codes[base + i] as i16) * i64::from(x[i]);
                        }
                        let code = ref_requantize(acc, m, s);
                        if fc.relu() {
                            code.max(0)
                        } else {
                            code
                        }
                    })
                    .collect()
            }
            CompiledLayer::Conv(conv) => {
                let (m, s) = conv.requant();
                let codes = conv.weights().codes();
                let (c_in, h, w) = conv.in_shape();
                let (k, p) = (conv.kernel(), conv.padding());
                let (oh, ow) = (conv.out_h(), conv.out_w());
                let row_len = conv.row_len();
                let mut out = vec![0i16; conv.out_len()];
                for ch in 0..conv.out_channels() {
                    let w_row = &codes[ch * row_len..(ch + 1) * row_len];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = conv.bias_acc()[ch];
                            for ic in (0..c_in).rev() {
                                for ky in (0..k).rev() {
                                    let iy = oy + ky;
                                    if iy < p || iy - p >= h {
                                        continue;
                                    }
                                    let iy = iy - p;
                                    for kx in (0..k).rev() {
                                        let ix = ox + kx;
                                        if ix < p || ix - p >= w {
                                            continue;
                                        }
                                        let ix = ix - p;
                                        acc += i64::from(w_row[(ic * k + ky) * k + kx] as i16)
                                            * i64::from(x[(ic * h + iy) * w + ix]);
                                    }
                                }
                            }
                            let code = ref_requantize(acc, m, s);
                            out[(ch * oh + oy) * ow + ox] =
                                if conv.relu() { code.max(0) } else { code };
                        }
                    }
                }
                out
            }
            CompiledLayer::Pool(pool) => {
                let (c, h, w) = (pool.channels, pool.in_h, pool.in_w);
                let (oh, ow) = (h / 2, w / 2);
                let mut out = Vec::with_capacity(pool.out_len());
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = i16::MIN;
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    best = best.max(x[(ch * h + oy * 2 + dy) * w + ox * 2 + dx]);
                                }
                            }
                            out.push(best);
                        }
                    }
                }
                out
            }
        };
        x = out.clone();
        stages.push(out);
    }
    stages
}

/// Configuration of a differential run.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Monte-Carlo trials (one fault die each).
    pub trials: usize,
    /// Effective rail voltage of the weight bit image.
    pub weight_voltage: Volt,
    /// Effective rail voltage of the input bit image.
    pub input_voltage: Volt,
    /// Root seed; trial `t` derives its die from
    /// `derive_seed(seed, site::DIFF_TRIAL, t)`.
    pub seed: u64,
    /// The cell-`V_min` fault model.
    pub model: VminFaultModel,
}

impl Default for DiffConfig {
    /// The acceptance defaults: voltages deep enough that every trial
    /// injects real corruption (BER ~1e-1 at 0.40 V for weights, ~1.4e-2 at
    /// 0.44 V for inputs) under the calibrated 14nm model.
    fn default() -> Self {
        Self {
            trials: 8,
            weight_voltage: Volt::new(0.40),
            input_voltage: Volt::new(0.44),
            seed: 0xD1FF,
            model: VminFaultModel::default_14nm(),
        }
    }
}

/// The first point where the executor and the reference disagreed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Trial index within the run.
    pub trial: usize,
    /// The derived trial seed (replays the fault die exactly).
    pub trial_seed: u64,
    /// Stage index (compiled-layer order).
    pub layer: usize,
    /// First diverging element within the stage output.
    pub index: usize,
    /// The executor's code.
    pub accel: i16,
    /// The reference's code.
    pub reference: i16,
}

/// Outcome of a differential run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Trials executed.
    pub trials: usize,
    /// Every divergence found (empty on agreement).
    pub divergences: Vec<Divergence>,
}

impl DiffReport {
    /// Whether every trial agreed bit-exactly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Human-readable account of the divergences.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{} divergence(s) across {} differential trial(s)\n",
            self.divergences.len(),
            self.trials
        );
        for d in &self.divergences {
            let _ = writeln!(
                out,
                "  trial {} (seed {:#018x}): layer {} element {}: accel {} vs reference {}",
                d.trial, d.trial_seed, d.layer, d.index, d.accel, d.reference
            );
        }
        out
    }
}

/// Returns a copy of `program` whose packed weight bit image went through
/// one fault die at `v`, mirroring `dante`'s Monte-Carlo evaluator: weight
/// stage `pos` draws its overlay from
/// `derive_seed(trial_seed, site::WEIGHT_LAYER, pos)`.
#[must_use]
pub fn corrupt_program(
    program: &Program,
    model: &VminFaultModel,
    v: Volt,
    trial_seed: u64,
) -> Program {
    program.map_weight_tensors(|pos, tensor| {
        let layer_seed = derive_seed(trial_seed, site::WEIGHT_LAYER, pos as u64);
        let overlay = FaultOverlay::from_seed(tensor.bit_len(), model, layer_seed);
        let mut words = tensor.to_packed_words();
        overlay.apply(&mut words, v);
        tensor.load_packed_words(&words);
    })
}

/// Returns a corrupted copy of an input sample: the sample is quantized to
/// the program's input codes, the packed image goes through one fault die
/// at `v` (seeded from `site::INPUTS`, as in the Monte-Carlo evaluator),
/// and the corrupted codes are dequantized back to `f32`. Requantizing the
/// result reproduces the corrupted codes exactly, so the executor and the
/// reference both see the identical faulty bit image.
#[must_use]
pub fn corrupt_sample(
    program: &Program,
    sample: &[f32],
    model: &VminFaultModel,
    v: Volt,
    trial_seed: u64,
) -> Vec<f32> {
    let codes = program.quantize_input(sample);
    let mut words = pack_codes(&codes);
    let overlay = FaultOverlay::from_seed(
        codes.len() * 16,
        model,
        derive_seed(trial_seed, site::INPUTS, 0),
    );
    overlay.apply(&mut words, v);
    let corrupted = unpack_codes(&words, codes.len());
    let scale = program.input_scale();
    corrupted.iter().map(|&c| f32::from(c) * scale).collect()
}

/// Runs `program` on a fault-free accelerator and on the reference math,
/// returning the first divergence (if any). The final float logits are also
/// cross-checked, tolerance-banded because the dequantization is the only
/// float step: `|q - r| <= 1e-5 * max(1, |r|)`.
///
/// # Panics
///
/// Panics if the float logits disagree beyond the band while the integer
/// codes agree — that would mean the dequantization itself diverged.
#[must_use]
pub fn check_program(
    program: &Program,
    sample: &[f32],
    trial: usize,
    trial_seed: u64,
) -> Option<Divergence> {
    let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
    let schedule = BoostSchedule::uniform(0, program.weight_layer_count(), 0);
    let trace: InferenceTrace = dante.run_traced(program, &schedule, sample);
    let reference = reference_forward(program, sample);

    assert_eq!(trace.layer_codes.len(), reference.len(), "stage count");
    for (layer, (accel, refc)) in trace.layer_codes.iter().zip(&reference).enumerate() {
        if accel == refc {
            continue;
        }
        let (index, (&a, &r)) = accel
            .iter()
            .zip(refc)
            .enumerate()
            .find(|(_, (a, r))| a != r)
            .expect("unequal stage outputs contain a differing element");
        return Some(Divergence {
            trial,
            trial_seed,
            layer,
            index,
            accel: a,
            reference: r,
        });
    }

    // Integer codes agree; the dequantized logits must too (banded for the
    // single float multiply).
    let scale = program.logit_scale();
    let last = reference.last().expect("non-empty program");
    for (q, &c) in trace.result.logits.iter().zip(last) {
        let r = f32::from(c) * scale;
        assert!(
            (q - r).abs() <= 1e-5 * r.abs().max(1.0),
            "float logit diverged with matching codes: {q} vs {r}"
        );
    }
    None
}

/// The full differential acceptance run: `config.trials` trials on the
/// shared [`TrialEngine`], each corrupting the program's weights and a
/// synthetic input sample with a fresh derived die, then demanding
/// bit-exact executor/reference agreement on every stage.
///
/// # Panics
///
/// Panics if `config.trials` is zero or the program has no layers.
#[must_use]
pub fn run_differential(program: &Program, config: &DiffConfig) -> DiffReport {
    assert!(config.trials > 0, "differential run needs trials");
    let in_len = program.in_len();
    let engine = TrialEngine::from_env();
    let divergences: Vec<Option<Divergence>> = engine.run(config.trials, |trial| {
        let trial_seed = derive_seed(config.seed, site::DIFF_TRIAL, trial as u64);
        // A deterministic per-trial sample spanning the input range.
        let sample: Vec<f32> = (0..in_len)
            .map(|i| ((i * 7 + trial * 13) % 23) as f32 / 23.0)
            .collect();
        let corrupted = corrupt_program(program, &config.model, config.weight_voltage, trial_seed);
        let faulty_sample = corrupt_sample(
            program,
            &sample,
            &config.model,
            config.input_voltage,
            trial_seed,
        );
        check_program(&corrupted, &faulty_sample, trial, trial_seed)
    });
    DiffReport {
        trials: config.trials,
        divergences: divergences.into_iter().flatten().collect(),
    }
}

/// One corrupted weight row: weight stage `layer` (execution order), output
/// row `row` — the DMA granule the executor tiles by, which makes it the
/// natural unit for shrinking a repro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightRow {
    /// Weight-stage position.
    pub layer: usize,
    /// Output row (FC) or output channel (conv) index.
    pub row: usize,
}

fn row_len_of(program: &Program, stage: usize) -> (usize, usize) {
    use dante_accel::program::CompiledLayer;
    let mut pos = 0usize;
    for layer in program.layers() {
        match layer {
            CompiledLayer::Fc(fc) => {
                if pos == stage {
                    return (fc.out_len(), fc.in_len());
                }
                pos += 1;
            }
            CompiledLayer::Conv(conv) => {
                if pos == stage {
                    return (conv.out_channels(), conv.row_len());
                }
                pos += 1;
            }
            CompiledLayer::Pool(_) => {}
        }
    }
    panic!("weight stage {stage} out of range");
}

/// The weight rows whose codes differ between `clean` and `corrupted`.
///
/// # Panics
///
/// Panics if the two programs have different shapes.
#[must_use]
pub fn corrupted_rows(clean: &Program, corrupted: &Program) -> Vec<WeightRow> {
    let mut rows = Vec::new();
    let mut clean_tensors = Vec::new();
    let _ = clean.map_weight_tensors(|_, t| clean_tensors.push(t.clone()));
    let _ = corrupted.map_weight_tensors(|pos, t| {
        let base = &clean_tensors[pos];
        assert_eq!(base.len(), t.len(), "program shape mismatch");
        let (out_rows, row_len) = row_len_of(clean, pos);
        assert_eq!(out_rows * row_len, t.len(), "row geometry mismatch");
        for row in 0..out_rows {
            let span = row * row_len..(row + 1) * row_len;
            if base.codes()[span.clone()] != t.codes()[span] {
                rows.push(WeightRow { layer: pos, row });
            }
        }
    });
    rows
}

/// A copy of `clean` with the given rows replaced by their `corrupted`
/// counterparts — the hybrid program ddmin evaluates.
///
/// # Panics
///
/// Panics if the programs mismatch in shape or a row is out of range.
#[must_use]
pub fn apply_rows(clean: &Program, corrupted: &Program, rows: &[WeightRow]) -> Program {
    let mut corrupted_tensors = Vec::new();
    let _ = corrupted.map_weight_tensors(|_, t| corrupted_tensors.push(t.clone()));
    clean.map_weight_tensors(|pos, tensor| {
        let (_, row_len) = row_len_of(clean, pos);
        let src = &corrupted_tensors[pos];
        for wr in rows.iter().filter(|wr| wr.layer == pos) {
            for i in wr.row * row_len..(wr.row + 1) * row_len {
                tensor.set_code(i, src.codes()[i]);
            }
        }
    })
}

/// Classic ddmin delta debugging: shrinks `items` to a 1-minimal subset on
/// which `fails` still returns `true` (removing any single element makes it
/// pass). `fails` must hold on the full set.
///
/// # Panics
///
/// Panics if `fails(items)` is `false` — there is nothing to minimize.
pub fn ddmin<T: Clone>(items: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    assert!(fails(items), "ddmin needs a failing starting set");
    let mut current: Vec<T> = items.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        // Try each complement (drop one chunk at a time).
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<T> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !complement.is_empty() && fails(&complement) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// Shrinks the corruption of `corrupted` (relative to `clean`) to a
/// 1-minimal set of weight rows on which `diverges` still fires, by ddmin
/// over the corrupted rows. Returns `None` when the full corruption does
/// not trigger `diverges` at all.
#[must_use]
pub fn minimize_corruption(
    clean: &Program,
    corrupted: &Program,
    diverges: impl Fn(&Program) -> bool,
) -> Option<Vec<WeightRow>> {
    let rows = corrupted_rows(clean, corrupted);
    if rows.is_empty() || !diverges(&apply_rows(clean, corrupted, &rows)) {
        return None;
    }
    Some(ddmin(&rows, |subset| {
        diverges(&apply_rows(clean, corrupted, subset))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Shape3};
    use dante_nn::network::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fc_program() -> Program {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(16, 12, &mut rng)),
            Layer::Relu(Relu::new(12)),
            Layer::Dense(Dense::new(12, 4, &mut rng)),
        ])
        .unwrap();
        let calib: Vec<f32> = (0..16 * 8).map(|i| ((i * 13) % 17) as f32 / 17.0).collect();
        Program::compile(&net, &calib).unwrap()
    }

    fn conv_program() -> Program {
        let mut rng = StdRng::seed_from_u64(23);
        let net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(Shape3::new(1, 8, 8), 4, 3, 1, &mut rng)),
            Layer::Relu(Relu::new(4 * 64)),
            Layer::MaxPool2d(MaxPool2d::new(Shape3::new(4, 8, 8))),
            Layer::Dense(Dense::new(64, 5, &mut rng)),
        ])
        .unwrap();
        let calib: Vec<f32> = (0..64 * 4).map(|i| ((i * 11) % 17) as f32 / 17.0).collect();
        Program::compile(&net, &calib).unwrap()
    }

    fn sample_for(len: usize, k: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 7 + k * 3) % 11) as f32 / 11.0)
            .collect()
    }

    #[test]
    fn executor_matches_reference_on_clean_fc_program() {
        let program = fc_program();
        for k in 0..4 {
            let sample = sample_for(16, k);
            assert_eq!(check_program(&program, &sample, k, 0), None);
        }
    }

    #[test]
    fn executor_matches_reference_on_clean_conv_program() {
        let program = conv_program();
        for k in 0..3 {
            let sample = sample_for(64, k);
            assert_eq!(check_program(&program, &sample, k, 0), None);
        }
    }

    #[test]
    fn differential_run_is_clean_under_heavy_corruption() {
        for program in [fc_program(), conv_program()] {
            let report = run_differential(&program, &DiffConfig::default());
            assert!(report.is_clean(), "{}", report.render());
        }
    }

    #[test]
    fn corruption_is_a_pure_function_of_its_seed() {
        let program = fc_program();
        let model = VminFaultModel::default_14nm();
        let v = Volt::new(0.40);
        let a = corrupt_program(&program, &model, v, 7);
        let b = corrupt_program(&program, &model, v, 7);
        assert_eq!(a, b);
        let c = corrupt_program(&program, &model, v, 8);
        assert_ne!(a, c, "different seeds must draw different dies");
        // And at a safe voltage nothing flips.
        let clean = corrupt_program(&program, &model, Volt::new(0.60), 7);
        assert_eq!(clean, program);
    }

    #[test]
    fn corrupt_sample_round_trips_through_requantization() {
        let program = fc_program();
        let model = VminFaultModel::default_14nm();
        let sample = sample_for(16, 1);
        let faulty = corrupt_sample(&program, &sample, &model, Volt::new(0.38), 5);
        // Requantizing the dequantized corrupted sample must reproduce the
        // corrupted codes bit-exactly (the property check_program relies on).
        let codes = program.quantize_input(&faulty);
        let again: Vec<f32> = codes
            .iter()
            .map(|&c| f32::from(c) * program.input_scale())
            .collect();
        assert_eq!(faulty, again);
        // At a safe voltage the sample is untouched up to quantization.
        let safe = corrupt_sample(&program, &sample, &model, Volt::new(0.60), 5);
        assert_eq!(
            program.quantize_input(&safe),
            program.quantize_input(&sample)
        );
    }

    #[test]
    fn ddmin_shrinks_to_the_minimal_failing_pair() {
        let items: Vec<u32> = (0..32).collect();
        // Fails iff the subset contains both 3 and 17.
        let minimal = ddmin(&items, |s| s.contains(&3) && s.contains(&17));
        assert_eq!(minimal, vec![3, 17]);
        // Single-element cause.
        let minimal = ddmin(&items, |s| s.contains(&31));
        assert_eq!(minimal, vec![31]);
    }

    #[test]
    #[should_panic(expected = "failing starting set")]
    fn ddmin_rejects_a_passing_start() {
        let _ = ddmin(&[1, 2, 3], |_| false);
    }

    #[test]
    fn minimizer_shrinks_a_prediction_flip_to_one_minimal_rows() {
        let program = fc_program();
        let model = VminFaultModel::default_14nm();
        let sample = sample_for(16, 2);
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
        let schedule = BoostSchedule::uniform(0, 2, 0);
        let clean_pred = dante.run(&program, &schedule, &sample).prediction;

        // Find a die that flips the prediction at deep VLV (deterministic:
        // the first qualifying seed is always the same).
        let (corrupted, _seed) = (0..64)
            .find_map(|s| {
                let c = corrupt_program(&program, &model, Volt::new(0.36), s);
                let mut d = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
                (d.run(&c, &schedule, &sample).prediction != clean_pred).then_some((c, s))
            })
            .expect("some die in 64 flips the prediction at 0.36 V");

        let diverges = |p: &Program| {
            let mut d = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
            d.run(p, &schedule, &sample).prediction != clean_pred
        };
        let all_rows = corrupted_rows(&program, &corrupted);
        let minimal = minimize_corruption(&program, &corrupted, diverges)
            .expect("full corruption flips the prediction");
        assert!(!minimal.is_empty() && minimal.len() <= all_rows.len());
        // The minimal set still diverges...
        assert!(diverges(&apply_rows(&program, &corrupted, &minimal)));
        // ...and is 1-minimal: dropping any single row loses the repro.
        for skip in 0..minimal.len() {
            let reduced: Vec<WeightRow> = minimal
                .iter()
                .enumerate()
                .filter_map(|(i, &r)| (i != skip).then_some(r))
                .collect();
            if reduced.is_empty() {
                continue;
            }
            assert!(
                !diverges(&apply_rows(&program, &corrupted, &reduced)),
                "row {skip} was removable"
            );
        }
    }

    #[test]
    fn divergence_report_renders_replay_information() {
        let report = DiffReport {
            trials: 4,
            divergences: vec![Divergence {
                trial: 2,
                trial_seed: 0xABCD,
                layer: 1,
                index: 7,
                accel: 9,
                reference: -3,
            }],
        };
        let text = report.render();
        assert!(text.contains("trial 2"), "{text}");
        assert!(text.contains("layer 1"), "{text}");
        assert!(text.contains("0x000000000000abcd"), "{text}");
    }
}
