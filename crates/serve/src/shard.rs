//! Scale-out execution: a coordinator that partitions sweep and fleet
//! grids across peer `dante-serve` nodes and merges their raw results.
//!
//! # Determinism
//!
//! Sharding never touches the math. The coordinator splits the work along
//! the axes the trial engine already seeds with **global** counters — the
//! per-point trial axis of a sweep and the die axis of a fleet — using
//! [`dante::sweep::shard_ranges`], so every shard computes exactly the
//! slice of the seed stream a single-process run would. Shards return raw
//! per-trial accuracies (and per-die outcomes) as exact IEEE-754 bit
//! patterns; the coordinator concatenates them in window order and
//! reassembles statistics through the same library code
//! ([`SweepEnergyContext::assemble`](dante::sweep::SweepEnergyContext) /
//! [`FleetSpec::assemble`]), so the merged response body is byte-identical
//! to an unsharded run.
//!
//! # Resilience
//!
//! Each shard window is tried against the peer list starting at
//! `peers[window % peers]` and rotating on failure (counted as a retry).
//! A hedged duplicate leg is launched against the next peer if the first
//! leg has not answered within the hedge delay — the first success wins,
//! the loser is dropped. If every leg for a window fails, the window is
//! computed locally (a fallback, counted), so a degraded fleet slows down
//! instead of erroring.

use crate::api;
use crate::metrics::Metrics;
use dante::fleet::{DieOutcome, FleetResult, FleetSpec};
use dante::sweep::{shard_ranges, PreparedSweep, SweepPoint, SweepSpec};
use dante_sim::EventObserver;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// Fans sweep/fleet windows out to a fixed peer list. Built once at server
/// start from `DANTE_SERVE_PEERS`.
#[derive(Debug, Clone)]
pub struct Coordinator {
    peers: Vec<String>,
    /// TCP connect timeout per leg.
    pub connect_timeout: Duration,
    /// End-to-end cap per leg (socket read timeout); also bounds how long
    /// a lost hedge loser can linger.
    pub request_timeout: Duration,
    /// How long the first leg of a window may stay silent before a hedged
    /// duplicate is sent to the next peer.
    pub hedge_after: Duration,
}

impl Coordinator {
    /// A coordinator over `peers` (`host:port` strings) with the default
    /// production timeouts.
    ///
    /// # Panics
    ///
    /// Panics if `peers` is empty — gate construction on a non-empty
    /// `DANTE_SERVE_PEERS`.
    #[must_use]
    pub fn new(peers: Vec<String>) -> Self {
        assert!(!peers.is_empty(), "a coordinator needs at least one peer");
        Self {
            peers,
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(600),
            hedge_after: Duration::from_secs(10),
        }
    }

    /// The configured peer list.
    #[must_use]
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Runs `spec` sharded across the peers and merges the result —
    /// byte-identical to `spec.prepare().run()`.
    ///
    /// The trial axis is partitioned (every shard runs its trial window at
    /// every grid point), so shards share nothing but the spec. Windows
    /// whose every leg fails are computed locally; the one-off local
    /// preparation (network training) is shared across such windows.
    #[must_use]
    pub fn run_sweep(&self, spec: &SweepSpec, metrics: &Arc<Metrics>) -> Vec<SweepPoint> {
        let ctx = spec.energy_context();
        let windows = shard_ranges(spec.trials, self.peers.len());
        let (tx, rx) = mpsc::channel();
        for (shard, &(offset, count)) in windows.iter().enumerate() {
            let tx = tx.clone();
            let body: Arc<Vec<u8>> =
                Arc::new(api::encode_shard_sweep_request(spec, offset, count).into_bytes());
            let this = self.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || {
                let outcome = this.fetch_window(shard, "/v1/shard/sweep", &body, &metrics);
                let decoded = outcome.and_then(|bytes| api::decode_shard_sweep_response(&bytes));
                let _ = tx.send((shard, decoded));
            });
        }
        drop(tx);

        let mut per_shard: Vec<Option<Vec<Vec<f64>>>> = vec![None; windows.len()];
        let mut failures: Vec<usize> = Vec::new();
        for (shard, outcome) in rx {
            match outcome {
                Ok(points)
                    if points.len() == ctx.point_count()
                        && points.iter().all(|p| p.len() == windows[shard].1) =>
                {
                    per_shard[shard] = Some(points);
                }
                Ok(_) | Err(_) => failures.push(shard),
            }
        }
        if !failures.is_empty() {
            // Local fallback: train once, then run just the failed windows.
            let prep: OnceLock<PreparedSweep> = OnceLock::new();
            let observer = EventObserver::new(|_| {});
            for shard in failures {
                metrics.shard_fallbacks.fetch_add(1, Ordering::Relaxed);
                let (offset, count) = windows[shard];
                let prep = prep.get_or_init(|| spec.prepare());
                let points = (0..ctx.point_count())
                    .map(|p| prep.run_point_trial_range_observed(p, offset, count, &observer))
                    .collect();
                per_shard[shard] = Some(points);
            }
        }
        // Concatenate windows in offset order per point, then reassemble
        // stats/energy through the same code a local run uses.
        let mut per_point: Vec<Vec<f64>> = vec![Vec::with_capacity(spec.trials); ctx.point_count()];
        for shard_points in per_shard
            .into_iter()
            .map(|s| s.expect("every window resolved"))
        {
            for (point, trials) in shard_points.into_iter().enumerate() {
                per_point[point].extend(trials);
            }
        }
        ctx.assemble(per_point)
    }

    /// Runs `spec` sharded across the peers and merges the result —
    /// byte-identical to `spec.solve()`. Windows whose every leg fails are
    /// computed locally.
    #[must_use]
    pub fn run_fleet(&self, spec: &FleetSpec, metrics: &Arc<Metrics>) -> FleetResult {
        let windows = shard_ranges(spec.dies, self.peers.len());
        let (tx, rx) = mpsc::channel();
        for (shard, &(offset, count)) in windows.iter().enumerate() {
            let tx = tx.clone();
            let body: Arc<Vec<u8>> =
                Arc::new(api::encode_shard_fleet_request(spec, offset, count).into_bytes());
            let this = self.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || {
                let outcome = this.fetch_window(shard, "/v1/shard/fleet", &body, &metrics);
                let decoded = outcome.and_then(|bytes| api::decode_shard_fleet_response(&bytes));
                let _ = tx.send((shard, decoded));
            });
        }
        drop(tx);

        let mut per_shard: Vec<Option<Vec<DieOutcome>>> = vec![None; windows.len()];
        for (shard, outcome) in rx {
            match outcome {
                Ok(dies) if dies.len() == windows[shard].1 => per_shard[shard] = Some(dies),
                Ok(_) | Err(_) => {
                    metrics.shard_fallbacks.fetch_add(1, Ordering::Relaxed);
                    let (offset, count) = windows[shard];
                    let observer = EventObserver::new(|_| {});
                    per_shard[shard] =
                        Some(spec.solve_die_range_observed(offset, count, &observer));
                }
            }
        }
        let dies: Vec<DieOutcome> = per_shard
            .into_iter()
            .flat_map(|s| s.expect("every window resolved"))
            .collect();
        spec.assemble(&dies)
    }

    /// Fetches one window's raw result with retry + hedging.
    ///
    /// Legs are launched against `peers[(shard + k) % peers]` for
    /// `k = 0, 1, ...`: leg 1 immediately, the next one either when a leg
    /// fails (retry) or when [`Self::hedge_after`] elapses with no answer
    /// (hedge). At most `peers + 1` legs run, so a window visits every
    /// peer once plus one hedge. The first successful body wins.
    fn fetch_window(
        &self,
        shard: usize,
        path: &'static str,
        body: &Arc<Vec<u8>>,
        metrics: &Arc<Metrics>,
    ) -> Result<Vec<u8>, String> {
        let n = self.peers.len();
        let max_legs = n + 1;
        let deadline = Instant::now() + self.request_timeout;
        let (tx, rx) = mpsc::channel::<Result<Vec<u8>, String>>();
        let mut launched = 0usize;
        let mut failed = 0usize;
        let mut hedged = false;
        let mut last_error = "no shard leg launched".to_owned();

        let launch = |leg: usize| {
            let peer = self.peers[(shard + leg) % n].clone();
            let tx = tx.clone();
            let body = body.clone();
            let connect_timeout = self.connect_timeout;
            let request_timeout = self.request_timeout;
            let metrics = metrics.clone();
            metrics.shard_requests.fetch_add(1, Ordering::Relaxed);
            metrics.shard_in_flight.fetch_add(1, Ordering::Relaxed);
            std::thread::spawn(move || {
                let outcome = http_post(&peer, path, &body, connect_timeout, request_timeout);
                metrics.shard_in_flight.fetch_sub(1, Ordering::Relaxed);
                let _ = tx.send(outcome);
            });
        };

        launch(launched);
        launched += 1;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(format!("shard window timed out; last error: {last_error}"));
            }
            // While exactly one leg is pending and we haven't hedged yet,
            // wait only up to the hedge delay; afterwards wait out the
            // deadline.
            let wait = if !hedged && launched - failed == 1 && launched < max_legs {
                self.hedge_after.min(deadline - now)
            } else {
                deadline - now
            };
            match rx.recv_timeout(wait) {
                Ok(Ok(bytes)) => return Ok(bytes),
                Ok(Err(error)) => {
                    failed += 1;
                    last_error = error;
                    if launched < max_legs {
                        metrics.shard_retries.fetch_add(1, Ordering::Relaxed);
                        launch(launched);
                        launched += 1;
                    } else if failed == launched {
                        return Err(last_error);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !hedged && launched < max_legs {
                        hedged = true;
                        metrics.shard_hedges.fetch_add(1, Ordering::Relaxed);
                        launch(launched);
                        launched += 1;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(last_error);
                }
            }
        }
    }
}

/// One blocking HTTP POST over a fresh connection (`Connection: close`).
/// Returns the body on 200; any other status or transport failure is an
/// error naming the peer.
fn http_post(
    peer: &str,
    path: &str,
    body: &[u8],
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<Vec<u8>, String> {
    let addr = peer
        .to_socket_addrs()
        .map_err(|e| format!("{peer}: bad address: {e}"))?
        .next()
        .ok_or_else(|| format!("{peer}: no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)
        .map_err(|e| format!("{peer}: connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(connect_timeout.max(Duration::from_secs(5))));
    let _ = stream.set_nodelay(true);
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {peer}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("{peer}: write: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("{peer}: read: {e}"))?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| format!("{peer}: truncated response head"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| format!("{peer}: response head is not UTF-8"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{peer}: malformed status line"))?;
    let payload = raw[head_end + 4..].to_vec();
    if status != 200 {
        return Err(format!(
            "{peer}: status {status}: {}",
            String::from_utf8_lossy(&payload)
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn test_coordinator(peers: Vec<String>) -> Coordinator {
        let mut c = Coordinator::new(peers);
        c.connect_timeout = Duration::from_millis(500);
        c.request_timeout = Duration::from_secs(20);
        c.hedge_after = Duration::from_millis(150);
        c
    }

    /// A peer that serves `/v1/shard/sweep` and `/v1/shard/fleet` by
    /// computing the requested window through the library. The first
    /// `fail_first` requests are answered with 500 before it starts
    /// working — exercising the retry path deterministically.
    fn spawn_backend(fail_first: usize) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut served = 0usize;
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                let mut raw = Vec::new();
                let mut buf = [0u8; 4096];
                let (head_end, body_len) = loop {
                    let n = match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break (0, None),
                        Ok(n) => n,
                    };
                    raw.extend_from_slice(&buf[..n]);
                    if let Some(end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                        let head = String::from_utf8_lossy(&raw[..end]).to_ascii_lowercase();
                        let len = head
                            .lines()
                            .find_map(|l| l.strip_prefix("content-length:"))
                            .and_then(|v| v.trim().parse::<usize>().ok());
                        break (end + 4, len);
                    }
                };
                let Some(body_len) = body_len else { continue };
                while raw.len() < head_end + body_len {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => raw.extend_from_slice(&buf[..n]),
                    }
                }
                let path_is_fleet = raw.starts_with(b"POST /v1/shard/fleet");
                let body = &raw[head_end..head_end + body_len];
                served += 1;
                let (status, payload) = if served <= fail_first {
                    (500u16, r#"{"error": "injected failure"}"#.to_owned())
                } else if path_is_fleet {
                    let (spec, offset, count) = api::decode_shard_fleet_request(body).unwrap();
                    let observer = EventObserver::new(|_| {});
                    let dies = spec.solve_die_range_observed(offset, count, &observer);
                    (200, api::encode_shard_fleet_response(&dies))
                } else {
                    let (spec, offset, count) = api::decode_shard_sweep_request(body).unwrap();
                    let prep = spec.prepare();
                    let observer = EventObserver::new(|_| {});
                    let points: Vec<Vec<f64>> = (0..prep.point_count())
                        .map(|p| prep.run_point_trial_range_observed(p, offset, count, &observer))
                        .collect();
                    (200, api::encode_shard_sweep_response(&points))
                };
                let head = format!(
                    "HTTP/1.1 {status} X\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n",
                    payload.len()
                );
                let _ = stream.write_all(head.as_bytes());
                let _ = stream.write_all(payload.as_bytes());
                let _ = stream.flush();
            }
        });
        addr
    }

    /// A peer that accepts connections and never answers — a straggler.
    fn spawn_straggler() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming().flatten() {
                held.push(stream); // keep sockets open, say nothing
            }
        });
        addr
    }

    fn toy_sweep() -> SweepSpec {
        SweepSpec {
            voltages_mv: vec![400, 480],
            trials: 5,
            ..SweepSpec::toy_default()
        }
    }

    #[test]
    fn sharded_sweep_matches_local_run_byte_for_byte() {
        let spec = toy_sweep();
        let local = api::build_record(&spec, &spec.prepare().run()).to_json_pretty();
        let coordinator = test_coordinator(vec![spawn_backend(0), spawn_backend(0)]);
        let metrics = Arc::new(Metrics::new());
        let merged = coordinator.run_sweep(&spec, &metrics);
        let sharded = api::build_record(&spec, &merged).to_json_pretty();
        assert_eq!(local, sharded);
        assert_eq!(metrics.shard_requests.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.shard_fallbacks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn sharded_fleet_matches_local_run_byte_for_byte() {
        let spec = FleetSpec {
            dies: 13,
            array_bits: 16384,
            ..FleetSpec::toy_default()
        };
        let local = api::run_fleet_json(&spec);
        let coordinator = test_coordinator(vec![spawn_backend(0), spawn_backend(0)]);
        let metrics = Arc::new(Metrics::new());
        let merged = coordinator.run_fleet(&spec, &metrics);
        let sharded = api::build_fleet_record(&spec, &merged).to_json_pretty();
        assert_eq!(local, sharded);
    }

    #[test]
    fn failed_legs_retry_on_the_next_peer() {
        let spec = toy_sweep();
        let local = api::build_record(&spec, &spec.prepare().run()).to_json_pretty();
        // First peer 500s everything; its windows land on the healthy
        // peer via retry.
        let coordinator = test_coordinator(vec![spawn_backend(usize::MAX), spawn_backend(0)]);
        let metrics = Arc::new(Metrics::new());
        let merged = coordinator.run_sweep(&spec, &metrics);
        assert_eq!(
            local,
            api::build_record(&spec, &merged).to_json_pretty(),
            "retried shards still merge byte-identically"
        );
        assert!(
            metrics.shard_retries.load(Ordering::Relaxed) >= 1,
            "the failing peer forced at least one retry"
        );
        assert_eq!(metrics.shard_fallbacks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn straggler_legs_are_hedged_to_a_healthy_peer() {
        let spec = toy_sweep();
        let local = api::build_record(&spec, &spec.prepare().run()).to_json_pretty();
        let coordinator = test_coordinator(vec![spawn_straggler(), spawn_backend(0)]);
        let metrics = Arc::new(Metrics::new());
        let merged = coordinator.run_sweep(&spec, &metrics);
        assert_eq!(local, api::build_record(&spec, &merged).to_json_pretty());
        assert!(
            metrics.shard_hedges.load(Ordering::Relaxed) >= 1,
            "the silent peer forced at least one hedge"
        );
    }

    #[test]
    fn all_peers_down_falls_back_to_local_compute() {
        let spec = toy_sweep();
        let local = api::build_record(&spec, &spec.prepare().run()).to_json_pretty();
        // Nothing listens on these addresses: connects fail fast.
        let dead = || {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap().to_string();
            drop(l);
            addr
        };
        let coordinator = test_coordinator(vec![dead(), dead()]);
        let metrics = Arc::new(Metrics::new());
        let merged = coordinator.run_sweep(&spec, &metrics);
        assert_eq!(local, api::build_record(&spec, &merged).to_json_pretty());
        assert_eq!(
            metrics.shard_fallbacks.load(Ordering::Relaxed),
            2,
            "both windows fell back locally"
        );
    }
}
