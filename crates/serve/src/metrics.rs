//! Service counters and latency tracking, rendered as plain text for
//! `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many recent request latencies the percentile window retains.
const LATENCY_WINDOW: usize = 1024;

/// A fixed-capacity ring of the most recent latency samples.
///
/// `push` is O(1): once the buffer is full, the write index wraps and each
/// new sample overwrites the oldest one — no element shifting in the
/// response hot path.
#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, micros: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(micros);
        } else {
            // Full: `next` points at the oldest sample (index 0 right after
            // the fill phase, then advancing one slot per overwrite).
            self.samples[self.next] = micros;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        }
    }
}

/// Process-wide service metrics. All counters are monotonic except the
/// gauges, which are sampled at render time by the caller.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted for processing (any endpoint).
    pub requests_total: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (client errors, including 429 backpressure).
    pub responses_4xx: AtomicU64,
    /// 429 specifically, to make backpressure visible at a glance.
    pub responses_429: AtomicU64,
    /// 5xx responses.
    pub responses_5xx: AtomicU64,
    /// Sweep jobs completed successfully.
    pub jobs_completed: AtomicU64,
    /// Sweep jobs that failed or were cancelled by shutdown.
    pub jobs_failed: AtomicU64,
    /// Completed jobs that exercised the energy-comparison machinery (a
    /// non-single supply or the AlexNet/row-stationary workload; see
    /// `SweepSpec::is_energy_sweep`).
    pub energy_sweep_jobs: AtomicU64,
    /// `GET /v1/iso-accuracy` solves served (cold computes).
    pub iso_accuracy_solves: AtomicU64,
    /// `GET /v1/iso-accuracy` responses served from the result cache.
    pub iso_accuracy_cache_hits: AtomicU64,
    /// Completed `POST /v1/fleet` population sweeps (cold computes).
    pub fleet_jobs: AtomicU64,
    /// `POST /v1/fleet` responses served from the result cache.
    pub fleet_cache_hits: AtomicU64,
    /// Completed `POST /v1/retrain` hardening runs (cold computes).
    pub retrain_jobs: AtomicU64,
    /// `POST /v1/retrain` responses served from the result cache.
    pub retrain_cache_hits: AtomicU64,
    /// Submissions rejected with 429 because the queue was full.
    /// Incremented exactly once per rejected submission, on the same path
    /// that attaches `Retry-After`.
    pub jobs_rejected: AtomicU64,
    /// Shard sub-requests issued to peers (fan-out legs, including retries
    /// and hedges).
    pub shard_requests: AtomicU64,
    /// Shard legs re-sent to another peer after a failure.
    pub shard_retries: AtomicU64,
    /// Hedged duplicate legs launched against straggling peers.
    pub shard_hedges: AtomicU64,
    /// Shard windows computed locally after every peer leg failed.
    pub shard_fallbacks: AtomicU64,
    /// Shard legs currently in flight (gauge, maintained by the
    /// coordinator).
    pub shard_in_flight: AtomicU64,
    /// Ring of recent request latencies in microseconds.
    latencies: Mutex<LatencyRing>,
}

/// Point-in-time gauges sampled by the `/metrics` handler and appended to
/// the rendered counters: queue depths (total and per lane), in-memory
/// result-cache traffic, and the disk-cache segment store's footprint.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Jobs waiting across both lanes.
    pub queue_depth: usize,
    /// Jobs waiting in the interactive lane.
    pub queue_interactive: usize,
    /// Jobs waiting in the bulk lane.
    pub queue_bulk: usize,
    /// Result-cache hits (memory or disk tier).
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Disk-cache segment files.
    pub disk_segments: u64,
    /// Disk-cache bytes across segment files.
    pub disk_bytes: u64,
    /// Disk-cache live records.
    pub disk_records: u64,
    /// Disk-cache compaction passes since open.
    pub disk_compactions: u64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a response with `status` and records the request latency.
    pub fn record_response(&self, status: u16, latency: Duration) {
        match status {
            200..=299 => &self.responses_2xx,
            429 => {
                self.responses_429.fetch_add(1, Ordering::Relaxed);
                &self.responses_4xx
            }
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latencies
            .lock()
            .expect("metrics lock poisoned")
            .push(micros);
    }

    /// A copy of the retained latency window (unordered).
    fn latency_snapshot(&self) -> Vec<u64> {
        self.latencies
            .lock()
            .expect("metrics lock poisoned")
            .samples
            .clone()
    }

    /// `(p50, p99)` of the retained latency window, in microseconds.
    ///
    /// The window is copied out under the lock and sorted after release, so
    /// a `/metrics` scrape never stalls concurrent `record_response` calls
    /// for the sort. Percentiles use the nearest-rank definition
    /// (`index = ceil(q*n) - 1`), which is well-defined down to n = 1.
    #[must_use]
    pub fn latency_percentiles(&self) -> (u64, u64) {
        let mut sorted = self.latency_snapshot();
        if sorted.is_empty() {
            return (0, 0);
        }
        sorted.sort_unstable();
        let at = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        (at(0.50), at(0.99))
    }

    /// Renders the metrics in the flat `name value` text format, with the
    /// caller-sampled [`Gauges`] appended.
    #[must_use]
    pub fn render(&self, gauges: &Gauges) -> String {
        let (p50, p99) = self.latency_percentiles();
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "dante_serve_requests_total {}\n\
             dante_serve_responses_2xx_total {}\n\
             dante_serve_responses_4xx_total {}\n\
             dante_serve_responses_429_total {}\n\
             dante_serve_responses_5xx_total {}\n\
             dante_serve_jobs_completed_total {}\n\
             dante_serve_jobs_failed_total {}\n\
             dante_serve_jobs_rejected_total {}\n\
             dante_serve_energy_sweep_jobs_total {}\n\
             dante_serve_iso_accuracy_solves_total {}\n\
             dante_serve_iso_accuracy_cache_hits_total {}\n\
             dante_serve_fleet_jobs_total {}\n\
             dante_serve_fleet_cache_hits_total {}\n\
             dante_serve_retrain_jobs_total {}\n\
             dante_serve_retrain_cache_hits_total {}\n\
             dante_serve_shard_requests_total {}\n\
             dante_serve_shard_retries_total {}\n\
             dante_serve_shard_hedges_total {}\n\
             dante_serve_shard_fallbacks_total {}\n\
             dante_serve_shard_in_flight {}\n\
             dante_serve_queue_depth {}\n\
             dante_serve_queue_depth_interactive {}\n\
             dante_serve_queue_depth_bulk {}\n\
             dante_serve_cache_hits_total {}\n\
             dante_serve_cache_misses_total {}\n\
             dante_serve_disk_cache_segments {}\n\
             dante_serve_disk_cache_bytes {}\n\
             dante_serve_disk_cache_records {}\n\
             dante_serve_disk_cache_compactions_total {}\n\
             dante_serve_request_latency_p50_micros {p50}\n\
             dante_serve_request_latency_p99_micros {p99}\n",
            load(&self.requests_total),
            load(&self.responses_2xx),
            load(&self.responses_4xx),
            load(&self.responses_429),
            load(&self.responses_5xx),
            load(&self.jobs_completed),
            load(&self.jobs_failed),
            load(&self.jobs_rejected),
            load(&self.energy_sweep_jobs),
            load(&self.iso_accuracy_solves),
            load(&self.iso_accuracy_cache_hits),
            load(&self.fleet_jobs),
            load(&self.fleet_cache_hits),
            load(&self.retrain_jobs),
            load(&self.retrain_cache_hits),
            load(&self.shard_requests),
            load(&self.shard_retries),
            load(&self.shard_hedges),
            load(&self.shard_fallbacks),
            load(&self.shard_in_flight),
            gauges.queue_depth,
            gauges.queue_interactive,
            gauges.queue_bulk,
            gauges.cache_hits,
            gauges.cache_misses,
            gauges.disk_segments,
            gauges.disk_bytes,
            gauges.disk_records,
            gauges.disk_compactions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_percentiles_track_responses() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.record_response(200, Duration::from_micros(100));
        m.record_response(429, Duration::from_micros(300));
        m.record_response(500, Duration::from_micros(200));
        m.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        m.shard_requests.fetch_add(4, Ordering::Relaxed);
        m.shard_hedges.fetch_add(1, Ordering::Relaxed);
        let text = m.render(&Gauges {
            queue_depth: 2,
            queue_interactive: 1,
            queue_bulk: 1,
            cache_hits: 5,
            cache_misses: 7,
            disk_segments: 3,
            disk_bytes: 4096,
            disk_records: 9,
            disk_compactions: 1,
        });
        assert!(text.contains("dante_serve_requests_total 3"), "{text}");
        assert!(text.contains("dante_serve_responses_2xx_total 1"));
        assert!(text.contains("dante_serve_responses_4xx_total 1"));
        assert!(text.contains("dante_serve_responses_429_total 1"));
        assert!(text.contains("dante_serve_responses_5xx_total 1"));
        assert!(text.contains("dante_serve_jobs_rejected_total 1"));
        assert!(text.contains("dante_serve_queue_depth 2"));
        assert!(text.contains("dante_serve_queue_depth_interactive 1"));
        assert!(text.contains("dante_serve_queue_depth_bulk 1"));
        assert!(text.contains("dante_serve_cache_hits_total 5"));
        assert!(text.contains("dante_serve_cache_misses_total 7"));
        assert!(text.contains("dante_serve_disk_cache_segments 3"));
        assert!(text.contains("dante_serve_disk_cache_bytes 4096"));
        assert!(text.contains("dante_serve_disk_cache_records 9"));
        assert!(text.contains("dante_serve_disk_cache_compactions_total 1"));
        assert!(text.contains("dante_serve_shard_requests_total 4"));
        assert!(text.contains("dante_serve_shard_retries_total 0"));
        assert!(text.contains("dante_serve_shard_hedges_total 1"));
        assert!(text.contains("dante_serve_shard_fallbacks_total 0"));
        assert!(text.contains("dante_serve_shard_in_flight 0"));
        assert!(text.contains("dante_serve_energy_sweep_jobs_total 0"));
        assert!(text.contains("dante_serve_iso_accuracy_solves_total 0"));
        assert!(text.contains("dante_serve_fleet_jobs_total 0"));
        assert!(text.contains("dante_serve_fleet_cache_hits_total 0"));
        assert!(text.contains("dante_serve_retrain_jobs_total 0"));
        assert!(text.contains("dante_serve_retrain_cache_hits_total 0"));
        let (p50, p99) = m.latency_percentiles();
        assert_eq!(p50, 200);
        assert_eq!(p99, 300);
    }

    #[test]
    fn empty_window_renders_zero_percentiles() {
        assert_eq!(Metrics::new().latency_percentiles(), (0, 0));
    }

    #[test]
    fn window_retains_the_most_recent_samples() {
        let m = Metrics::new();
        let total = LATENCY_WINDOW + 250;
        for i in 0..total {
            m.record_response(200, Duration::from_micros(i as u64));
        }
        let snapshot = m.latency_snapshot();
        assert_eq!(
            snapshot.len(),
            LATENCY_WINDOW,
            "window never exceeds its cap"
        );
        let mut sorted = snapshot;
        sorted.sort_unstable();
        // Exactly the most recent LATENCY_WINDOW samples survive: the
        // values 250..total, each once.
        let expected: Vec<u64> = (250..total as u64).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn nearest_rank_percentiles_on_tiny_windows() {
        // (samples, q, expected): nearest-rank with index ceil(q*n) - 1.
        let cases: &[(&[u64], f64, u64)] = &[
            (&[7], 0.50, 7),
            (&[7], 0.99, 7),
            (&[1, 2], 0.50, 1),
            (&[1, 2], 0.99, 2),
            (&[1, 2, 3], 0.50, 2),
            (&[1, 2, 3, 4], 0.50, 2),
            (&[1, 2, 3, 4, 5], 0.50, 3),
            (&[1, 2, 3, 4, 5], 0.99, 5),
            (&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100], 0.50, 50),
            (&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100], 0.99, 100),
        ];
        for &(samples, q, expected) in cases {
            let m = Metrics::new();
            for &s in samples {
                m.record_response(200, Duration::from_micros(s));
            }
            let (p50, p99) = m.latency_percentiles();
            let got = if (q - 0.50).abs() < 1e-9 { p50 } else { p99 };
            assert_eq!(
                got, expected,
                "q={q} over {samples:?}: got {got}, want {expected}"
            );
        }
    }
}
