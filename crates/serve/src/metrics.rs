//! Service counters and latency tracking, rendered as plain text for
//! `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many recent request latencies the percentile window retains.
const LATENCY_WINDOW: usize = 1024;

/// Process-wide service metrics. All counters are monotonic except the
/// gauges, which are sampled at render time by the caller.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted for processing (any endpoint).
    pub requests_total: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (client errors, including 429 backpressure).
    pub responses_4xx: AtomicU64,
    /// 429 specifically, to make backpressure visible at a glance.
    pub responses_429: AtomicU64,
    /// 5xx responses.
    pub responses_5xx: AtomicU64,
    /// Sweep jobs completed successfully.
    pub jobs_completed: AtomicU64,
    /// Sweep jobs that failed or were cancelled by shutdown.
    pub jobs_failed: AtomicU64,
    /// Ring of recent request latencies in microseconds.
    latencies: Mutex<Vec<u64>>,
}

impl Metrics {
    /// Fresh zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a response with `status` and records the request latency.
    pub fn record_response(&self, status: u16, latency: Duration) {
        match status {
            200..=299 => &self.responses_2xx,
            429 => {
                self.responses_429.fetch_add(1, Ordering::Relaxed);
                &self.responses_4xx
            }
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut window = self.latencies.lock().expect("metrics lock poisoned");
        if window.len() >= LATENCY_WINDOW {
            // Overwrite pseudo-randomly-ish via rotation: cheap, keeps a
            // sliding flavour without a ring index field.
            window.remove(0);
        }
        window.push(micros);
    }

    /// `(p50, p99)` of the retained latency window, in microseconds.
    #[must_use]
    pub fn latency_percentiles(&self) -> (u64, u64) {
        let window = self.latencies.lock().expect("metrics lock poisoned");
        if window.is_empty() {
            return (0, 0);
        }
        let mut sorted = window.clone();
        sorted.sort_unstable();
        let at = |q: f64| {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        (at(0.50), at(0.99))
    }

    /// Renders the metrics in the flat `name value` text format, with the
    /// caller-sampled gauges appended.
    #[must_use]
    pub fn render(&self, queue_depth: usize, cache_hits: u64, cache_misses: u64) -> String {
        let (p50, p99) = self.latency_percentiles();
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "dante_serve_requests_total {}\n\
             dante_serve_responses_2xx_total {}\n\
             dante_serve_responses_4xx_total {}\n\
             dante_serve_responses_429_total {}\n\
             dante_serve_responses_5xx_total {}\n\
             dante_serve_jobs_completed_total {}\n\
             dante_serve_jobs_failed_total {}\n\
             dante_serve_queue_depth {queue_depth}\n\
             dante_serve_cache_hits_total {cache_hits}\n\
             dante_serve_cache_misses_total {cache_misses}\n\
             dante_serve_request_latency_p50_micros {p50}\n\
             dante_serve_request_latency_p99_micros {p99}\n",
            load(&self.requests_total),
            load(&self.responses_2xx),
            load(&self.responses_4xx),
            load(&self.responses_429),
            load(&self.responses_5xx),
            load(&self.jobs_completed),
            load(&self.jobs_failed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_percentiles_track_responses() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.record_response(200, Duration::from_micros(100));
        m.record_response(429, Duration::from_micros(300));
        m.record_response(500, Duration::from_micros(200));
        let text = m.render(2, 5, 7);
        assert!(text.contains("dante_serve_requests_total 3"), "{text}");
        assert!(text.contains("dante_serve_responses_2xx_total 1"));
        assert!(text.contains("dante_serve_responses_4xx_total 1"));
        assert!(text.contains("dante_serve_responses_429_total 1"));
        assert!(text.contains("dante_serve_responses_5xx_total 1"));
        assert!(text.contains("dante_serve_queue_depth 2"));
        assert!(text.contains("dante_serve_cache_hits_total 5"));
        assert!(text.contains("dante_serve_cache_misses_total 7"));
        let (p50, p99) = m.latency_percentiles();
        assert_eq!(p50, 200);
        assert_eq!(p99, 300);
    }

    #[test]
    fn empty_window_renders_zero_percentiles() {
        assert_eq!(Metrics::new().latency_percentiles(), (0, 0));
    }
}
