//! **dante-serve** — a std-only HTTP service wrapping the sweep machinery.
//!
//! Exposes voltage-accuracy Monte-Carlo sweeps (`dante::sweep`) as a
//! long-running service with a bounded job queue, a worker pool, a
//! content-addressed result cache, and per-trial progress streaming — all
//! over a hand-rolled HTTP/1.1 layer on `std::net`, with zero external
//! dependencies.
//!
//! # Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/sweep` | Run a sweep (JSON spec); add `?mode=async` for 202 + job id |
//! | `POST /v1/fleet` | Run a fleet V_min/yield sweep (JSON spec); `?mode=async` works too |
//! | `GET /v1/iso-accuracy` | Solve `V_min` at an accuracy floor, compare supply energies |
//! | `GET /v1/jobs/<id>` | Job status (embeds the result record once done) |
//! | `GET /v1/jobs/<id>/result` | The raw (byte-exact) result body |
//! | `GET /v1/jobs/<id>/events` | Chunked NDJSON stream of per-trial (or per-die) progress |
//! | `GET /healthz` | Liveness probe |
//! | `GET /metrics` | Flat-text counters, gauges, latency percentiles |
//!
//! # Determinism and caching
//!
//! The trial engine derives every per-trial seed from `(root seed, sweep
//! point, trial index)` counters, so a sweep's result depends only on its
//! [`dante::sweep::SweepSpec`] — never on thread count or scheduling. The
//! service exploits that: results are cached under a digest of the spec's
//! canonical string, and a cache hit is byte-identical to a cold run.
//! Identical requests arriving concurrently attach to one in-flight job.
//!
//! # Backpressure and shutdown
//!
//! The queue is bounded; when full, submissions receive `429` with
//! `Retry-After` instead of unbounded buffering. Graceful shutdown stops
//! accepting, cancels queued jobs, lets in-flight sweeps finish, and
//! terminates event streams with a final `shutdown` event and a clean
//! chunked-encoding end.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;
pub mod shard;
pub mod store;

pub use cache::{digest, ResultCache};
pub use jobs::{Job, JobQueue, JobRegistry, JobSpec, JobStatus, QueueFull};
pub use server::{start, ServerConfig, ServerHandle};
pub use store::{DiskStore, StoreStats, TieredCache};
