//! The service itself: accept loop, worker pool, routing, and graceful
//! shutdown.

use crate::api;
use crate::cache::digest;
use crate::http::{self, configure_stream, read_request, ChunkedResponse, Request, RequestError};
use crate::jobs::{Job, JobQueue, JobRegistry, JobSpec, JobStatus, LaneWeights};
use crate::metrics::{Gauges, Metrics};
use crate::shard::Coordinator;
use crate::store::{DiskStore, TieredCache};
use dante_bench::json::Value;
use dante_sim::EventObserver;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs; [`ServerConfig::from_env`] reads the
/// `DANTE_SERVE_*` environment variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address (`DANTE_SERVE_ADDR`, default `127.0.0.1:7878`; use
    /// port 0 for an ephemeral port).
    pub addr: String,
    /// Sweep worker threads (`DANTE_SERVE_WORKERS`). `0` is accepted and
    /// means "no workers": jobs queue but never run — useful only for
    /// tests that need a deterministically full queue.
    pub workers: usize,
    /// Bounded queue depth (`DANTE_SERVE_QUEUE`); beyond it submissions
    /// get 429 + `Retry-After`.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (`DANTE_SERVE_CACHE`).
    pub cache_capacity: usize,
    /// Request body cap in bytes (`DANTE_SERVE_MAX_BODY`); beyond it 413.
    pub max_body_bytes: usize,
    /// Per-read socket timeout for idle keep-alive connections.
    pub read_timeout: Duration,
    /// Directory for the persistent result cache (`DANTE_SERVE_DATA_DIR`;
    /// unset disables the disk tier — results then live only in memory).
    pub data_dir: Option<PathBuf>,
    /// Backend peers (`DANTE_SERVE_PEERS`, comma-separated `host:port`).
    /// Non-empty turns this node into a shard coordinator: sweep and
    /// fleet jobs fan out across the peers and merge byte-identically.
    pub peers: Vec<String>,
    /// Weighted-round-robin lane weights (`DANTE_SERVE_LANE_WEIGHTS`,
    /// `"<interactive>,<bulk>"`).
    pub lane_weights: LaneWeights,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            workers: 2,
            queue_depth: 32,
            cache_capacity: 64,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(5),
            data_dir: None,
            peers: Vec::new(),
            lane_weights: LaneWeights::default(),
        }
    }
}

impl ServerConfig {
    /// Reads the `DANTE_SERVE_*` variables, rejecting unparsable values
    /// (same strictness policy as `DANTE_THREADS`: a mistyped knob should
    /// fail startup, not silently fall back).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending variable.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = Self::default();
        if let Ok(addr) = std::env::var("DANTE_SERVE_ADDR") {
            cfg.addr = addr;
        }
        let parse = |key: &str, min: usize| -> Result<Option<usize>, String> {
            match std::env::var(key) {
                Ok(raw) => raw
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= min)
                    .map(Some)
                    .ok_or_else(|| format!("{key} must be an integer >= {min}, got {raw:?}")),
                Err(_) => Ok(None),
            }
        };
        if let Some(n) = parse("DANTE_SERVE_WORKERS", 1)? {
            cfg.workers = n;
        }
        if let Some(n) = parse("DANTE_SERVE_QUEUE", 1)? {
            cfg.queue_depth = n;
        }
        if let Some(n) = parse("DANTE_SERVE_CACHE", 0)? {
            cfg.cache_capacity = n;
        }
        if let Some(n) = parse("DANTE_SERVE_MAX_BODY", 64)? {
            cfg.max_body_bytes = n;
        }
        if let Ok(raw) = std::env::var("DANTE_SERVE_DATA_DIR") {
            let trimmed = raw.trim();
            cfg.data_dir = (!trimmed.is_empty()).then(|| PathBuf::from(trimmed));
        }
        if let Ok(raw) = std::env::var("DANTE_SERVE_PEERS") {
            let mut peers = Vec::new();
            for token in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                if !token.contains(':') {
                    return Err(format!(
                        "DANTE_SERVE_PEERS entries must be host:port, got {token:?}"
                    ));
                }
                peers.push(token.to_owned());
            }
            cfg.peers = peers;
        }
        if let Ok(raw) = std::env::var("DANTE_SERVE_LANE_WEIGHTS") {
            cfg.lane_weights = LaneWeights::parse(&raw)
                .map_err(|why| format!("DANTE_SERVE_LANE_WEIGHTS: {why}"))?;
        }
        Ok(cfg)
    }
}

/// State shared by the accept loop, connection threads, and workers.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    registry: JobRegistry,
    queue: JobQueue,
    cache: TieredCache,
    metrics: Arc<Metrics>,
    coordinator: Option<Coordinator>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
}

/// A running server: bound address plus the shutdown/join controls.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (resolves port 0 to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: stop accepting, cancel queued jobs,
    /// wake every waiter. In-flight jobs run to completion; call
    /// [`Self::join`] to wait for the drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Cancel everything still queued so synchronous submitters and
        // pollers see a terminal state instead of hanging.
        for job in self.shared.queue.drain() {
            job.set_status(
                JobStatus::Cancelled,
                None,
                Some("server shutting down".to_owned()),
            );
            self.shared
                .metrics
                .jobs_failed
                .fetch_add(1, Ordering::Relaxed);
            self.shared.registry.retire(&job);
        }
        self.shared.queue.notify_all();
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    /// Waits for the accept loop, workers (draining their in-flight jobs),
    /// and open connections to finish. Returns `true` on a clean drain,
    /// `false` if connections were still open after a 10 s grace period.
    #[must_use]
    pub fn join(mut self) -> bool {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 {
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        true
    }
}

/// Binds and starts the service.
///
/// # Errors
///
/// Propagates bind failures and disk-cache open failures
/// (`DANTE_SERVE_DATA_DIR` pointing somewhere unusable should fail
/// startup, not silently serve without persistence).
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let disk = match &config.data_dir {
        Some(dir) => Some(DiskStore::open(dir)?),
        None => None,
    };
    let coordinator = (!config.peers.is_empty()).then(|| Coordinator::new(config.peers.clone()));
    let shared = Arc::new(Shared {
        queue: JobQueue::with_weights(config.queue_depth, config.lane_weights),
        cache: TieredCache::new(config.cache_capacity, disk),
        registry: JobRegistry::new(),
        metrics: Arc::new(Metrics::new()),
        coordinator,
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        config,
    });

    let worker_threads = (0..shared.config.workers)
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("dante-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept_shared = shared.clone();
    let accept_thread = std::thread::Builder::new()
        .name("dante-serve-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_shared))
        .expect("spawn accept loop");

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        worker_threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): drop it.
                    drop(stream);
                    return;
                }
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = shared.clone();
                let spawned = std::thread::Builder::new()
                    .name("dante-serve-conn".to_owned())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        conn_shared
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    // Spawn failure: undo the accounting and drop the
                    // connection rather than wedging the accept loop.
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Runs queued sweeps until shutdown. Each job streams its progress into
/// the job's event log via the sim-layer [`EventObserver`] bridge.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop(&shared.shutdown) {
        job.set_status(JobStatus::Running, None, None);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(shared, &job)));
        match outcome {
            Ok(body) => {
                let body = Arc::new(body);
                shared.cache.insert(job.digest.clone(), body.clone());
                // Count before publishing the terminal status: a client
                // woken by set_status may scrape /metrics immediately and
                // must see its own completed job.
                shared
                    .metrics
                    .jobs_completed
                    .fetch_add(1, Ordering::Relaxed);
                if job.is_energy_sweep() {
                    shared
                        .metrics
                        .energy_sweep_jobs
                        .fetch_add(1, Ordering::Relaxed);
                }
                if job.is_fleet() {
                    shared.metrics.fleet_jobs.fetch_add(1, Ordering::Relaxed);
                }
                if job.spec.is_iso() {
                    shared
                        .metrics
                        .iso_accuracy_solves
                        .fetch_add(1, Ordering::Relaxed);
                }
                if job.spec.is_retrain() {
                    shared.metrics.retrain_jobs.fetch_add(1, Ordering::Relaxed);
                }
                job.push_event(format!(r#"{{"event":"done","job":"{}"}}"#, job.id), true);
                job.set_status(JobStatus::Done, Some(body), None);
            }
            Err(panic) => {
                let why = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                    .unwrap_or_else(|| "worker panicked".to_owned());
                job.push_event(api::error_body(&why), true);
                job.set_status(JobStatus::Failed, None, Some(why));
                shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.registry.retire(&job);
    }
}

/// Executes one job, bridging trial hooks into events: sweeps run point by
/// point, fleets run die by die (one trial per die). When this node is a
/// coordinator (`DANTE_SERVE_PEERS`), bulk sweep/fleet jobs fan out across
/// the peers instead — per-trial event streaming is replaced by a single
/// `shard_fanout` event, but the merged response body stays byte-identical
/// to a local run.
fn run_job(shared: &Arc<Shared>, job: &Arc<Job>) -> String {
    match &job.spec {
        JobSpec::Sweep(spec) => {
            if let Some(coordinator) = &shared.coordinator {
                job.push_event(
                    format!(
                        r#"{{"event":"shard_fanout","job":"{}","peers":{}}}"#,
                        job.id,
                        coordinator.peers().len()
                    ),
                    true,
                );
                let results = coordinator.run_sweep(spec, &shared.metrics);
                return api::build_record(spec, &results).to_json_pretty();
            }
            let prep = spec.prepare();
            let mut results = Vec::with_capacity(prep.point_count());
            for point in 0..prep.point_count() {
                let mv = spec.voltages_mv[point];
                let observer = EventObserver::new(|event| {
                    if let Some(line) = api::event_line(point, mv, &event) {
                        // Annotations (one per point, carrying the point's
                        // energy) bypass the event cap so clients always see
                        // them even on sweeps whose trial chatter overflows
                        // the buffer.
                        let force = matches!(event, dante_sim::TrialEvent::Annotation { .. });
                        job.push_event(line, force);
                    }
                });
                results.push(prep.run_point_observed(point, &observer));
            }
            api::build_record(spec, &results).to_json_pretty()
        }
        JobSpec::Fleet(spec) => {
            if let Some(coordinator) = &shared.coordinator {
                job.push_event(
                    format!(
                        r#"{{"event":"shard_fanout","job":"{}","peers":{}}}"#,
                        job.id,
                        coordinator.peers().len()
                    ),
                    true,
                );
                let result = coordinator.run_fleet(spec, &shared.metrics);
                return api::build_fleet_record(spec, &result).to_json_pretty();
            }
            let observer = EventObserver::new(|event| {
                if let Some(line) = api::fleet_event_line(&event) {
                    let force = matches!(event, dante_sim::TrialEvent::BatchComplete { .. });
                    job.push_event(line, force);
                }
            });
            let result = spec.solve_observed(&observer);
            api::build_fleet_record(spec, &result).to_json_pretty()
        }
        // Iso solves are interactive-lane work: always computed locally
        // (seconds, not minutes — fan-out overhead would dominate).
        JobSpec::Iso(spec) => api::render_iso(spec, &spec.solve()),
        // Retraining always runs locally: the training loop is inherently
        // sequential (each epoch reads the previous epoch's weights), so
        // there is no window to fan out.
        JobSpec::Retrain(spec) => {
            let hardened = spec.run_observed(&mut |event| {
                job.push_event(api::retrain_event_line(event), false);
            });
            api::render_retrain(spec, &hardened)
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    configure_stream(&stream, shared.config.read_timeout);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    // Bounded keep-alive: a single connection cannot monopolize a thread
    // forever.
    for _ in 0..1000 {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(request) => request,
            Err(RequestError::Closed) => return,
            Err(error) => {
                respond_request_error(&mut write_half, shared, &error);
                return;
            }
        };
        shared
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        let started = Instant::now();
        let status = route(&mut write_half, shared, &request, keep_alive);
        shared.metrics.record_response(status, started.elapsed());
        if !keep_alive || status == STREAMED {
            return;
        }
    }
}

/// Sentinel "status" for responses that manage their own framing (chunked
/// streams close the connection themselves).
const STREAMED: u16 = 0;

fn respond_request_error(stream: &mut TcpStream, shared: &Arc<Shared>, error: &RequestError) {
    let (status, message) = match error {
        RequestError::Closed => return,
        RequestError::Io(m) => (400, m.clone()),
        RequestError::BadRequest(m) => (400, m.clone()),
        RequestError::HeadTooLarge => (
            431,
            format!("request head exceeds {} bytes", http::MAX_HEAD_BYTES),
        ),
        RequestError::BodyTooLarge(cap) => (413, format!("request body exceeds {cap} bytes")),
        RequestError::LengthRequired => (411, "requests must carry Content-Length".to_owned()),
    };
    shared.metrics.record_response(status, Duration::ZERO);
    let _ = http::write_response(
        stream,
        status,
        "application/json",
        &[],
        api::error_body(&message).as_bytes(),
        false,
    );
}

/// Dispatches one request; returns the response status (or [`STREAMED`]).
fn route(stream: &mut TcpStream, shared: &Arc<Shared>, request: &Request, keep_alive: bool) -> u16 {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/v1/sweep") => post_sweep(stream, shared, request, keep_alive),
        ("POST", "/v1/fleet") => post_fleet(stream, shared, request, keep_alive),
        ("POST", "/v1/retrain") => post_retrain(stream, shared, request, keep_alive),
        ("POST", "/v1/shard/sweep") => shard_sweep(stream, shared, request, keep_alive),
        ("POST", "/v1/shard/fleet") => shard_fleet(stream, shared, request, keep_alive),
        ("GET", "/v1/iso-accuracy") => get_iso_accuracy(stream, shared, request, keep_alive),
        ("GET", "/healthz") => respond(stream, 200, "text/plain", &[], b"ok\n", keep_alive),
        ("GET", "/metrics") => {
            let (hits, misses) = shared.cache.stats();
            let (queue_interactive, queue_bulk) = shared.queue.lane_depths();
            let disk = shared.cache.disk_stats();
            let body = shared.metrics.render(&Gauges {
                queue_depth: shared.queue.depth(),
                queue_interactive,
                queue_bulk,
                cache_hits: hits,
                cache_misses: misses,
                disk_segments: disk.segments,
                disk_bytes: disk.bytes,
                disk_records: disk.records,
                disk_compactions: disk.compactions,
            });
            respond(stream, 200, "text/plain", &[], body.as_bytes(), keep_alive)
        }
        ("GET", _) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            if let Some(id) = rest.strip_suffix("/events") {
                stream_job_events(stream, shared, id)
            } else if let Some(id) = rest.strip_suffix("/result") {
                job_result(stream, shared, id, keep_alive)
            } else {
                job_status(stream, shared, rest, keep_alive)
            }
        }
        (
            _,
            "/v1/sweep" | "/v1/fleet" | "/v1/retrain" | "/v1/shard/sweep" | "/v1/shard/fleet"
            | "/v1/iso-accuracy" | "/healthz" | "/metrics",
        ) => respond(
            stream,
            405,
            "application/json",
            &[],
            api::error_body("method not allowed").as_bytes(),
            keep_alive,
        ),
        _ => respond(
            stream,
            404,
            "application/json",
            &[],
            api::error_body(&format!("no such endpoint {path:?}")).as_bytes(),
            keep_alive,
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> u16 {
    let _ = http::write_response(stream, status, content_type, extra, body, keep_alive);
    status
}

fn post_sweep(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
    keep_alive: bool,
) -> u16 {
    match api::decode_spec(&request.body) {
        Ok(spec) => submit_job(stream, shared, request, keep_alive, JobSpec::Sweep(spec)),
        Err(why) => respond(
            stream,
            400,
            "application/json",
            &[],
            api::error_body(&why).as_bytes(),
            keep_alive,
        ),
    }
}

/// `POST /v1/fleet`: run a fleet-scale V_min/yield sweep through the same
/// queue, worker pool, and result cache as `/v1/sweep`. Fleet canonical
/// strings carry their own `dante.fleet.` prefix, so the two cache-key
/// families cannot collide; fleet cache hits are counted separately in
/// `/metrics`.
fn post_fleet(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
    keep_alive: bool,
) -> u16 {
    match api::decode_fleet_spec(&request.body) {
        Ok(spec) => submit_job(stream, shared, request, keep_alive, JobSpec::Fleet(spec)),
        Err(why) => respond(
            stream,
            400,
            "application/json",
            &[],
            api::error_body(&why).as_bytes(),
            keep_alive,
        ),
    }
}

/// `POST /v1/retrain`: run a fault-aware hardening stage through the same
/// queue, worker pool, and result cache as `/v1/sweep`. Retraining is
/// bulk-lane work (minutes of training plus two iso solves); the NDJSON
/// event stream carries one `epoch_start`/`epoch_done` pair per epoch.
/// Retrain canonical strings carry their own `dante.retrain.` prefix, so
/// the cache-key families cannot collide; retrain cache hits are counted
/// separately in `/metrics`.
fn post_retrain(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
    keep_alive: bool,
) -> u16 {
    match api::decode_retrain_spec(&request.body) {
        Ok(spec) => submit_job(stream, shared, request, keep_alive, JobSpec::Retrain(spec)),
        Err(why) => respond(
            stream,
            400,
            "application/json",
            &[],
            api::error_body(&why).as_bytes(),
            keep_alive,
        ),
    }
}

/// `POST /v1/shard/sweep`: a coordinator's fan-out leg. Runs the request's
/// trial window at every grid point synchronously in the connection thread
/// and returns the raw per-trial accuracies as exact bit patterns —
/// internal plumbing, deliberately uncached and unqueued (the coordinator
/// owns caching and scheduling for the whole job).
fn shard_sweep(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
    keep_alive: bool,
) -> u16 {
    let (spec, offset, count) = match api::decode_shard_sweep_request(&request.body) {
        Ok(parts) => parts,
        Err(why) => {
            return respond(
                stream,
                400,
                "application/json",
                &[],
                api::error_body(&why).as_bytes(),
                keep_alive,
            )
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return respond(
            stream,
            503,
            "application/json",
            &[],
            api::error_body("server shutting down").as_bytes(),
            false,
        );
    }
    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let prep = spec.prepare();
        let observer = EventObserver::new(|_| {});
        let points: Vec<Vec<f64>> = (0..prep.point_count())
            .map(|p| prep.run_point_trial_range_observed(p, offset, count, &observer))
            .collect();
        api::encode_shard_sweep_response(&points)
    }));
    shard_window_response(stream, computed, keep_alive)
}

/// `POST /v1/shard/fleet`: the fleet analogue of [`shard_sweep`] — runs the
/// request's die window and returns raw per-die outcomes.
fn shard_fleet(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
    keep_alive: bool,
) -> u16 {
    let (spec, offset, count) = match api::decode_shard_fleet_request(&request.body) {
        Ok(parts) => parts,
        Err(why) => {
            return respond(
                stream,
                400,
                "application/json",
                &[],
                api::error_body(&why).as_bytes(),
                keep_alive,
            )
        }
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return respond(
            stream,
            503,
            "application/json",
            &[],
            api::error_body("server shutting down").as_bytes(),
            false,
        );
    }
    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let observer = EventObserver::new(|_| {});
        api::encode_shard_fleet_response(&spec.solve_die_range_observed(offset, count, &observer))
    }));
    shard_window_response(stream, computed, keep_alive)
}

/// Renders a shard-leg outcome: the encoded window on success, 500 with
/// the panic message otherwise.
fn shard_window_response(
    stream: &mut TcpStream,
    computed: Result<String, Box<dyn std::any::Any + Send>>,
    keep_alive: bool,
) -> u16 {
    match computed {
        Ok(body) => respond(
            stream,
            200,
            "application/json",
            &[],
            body.as_bytes(),
            keep_alive,
        ),
        Err(panic) => {
            let why = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "shard window panicked".to_owned());
            respond(
                stream,
                500,
                "application/json",
                &[],
                api::error_body(&why).as_bytes(),
                keep_alive,
            )
        }
    }
}

/// Shared submission path for `/v1/sweep`, `/v1/fleet`, and `/v1/retrain`:
/// cache lookup,
/// dedup against an identical in-flight job, enqueue (429 on a full queue),
/// then either a 202 ticket (`?mode=async`) or a synchronous wait.
fn submit_job(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
    keep_alive: bool,
    spec: JobSpec,
) -> u16 {
    let key = digest(&spec.canonical_string());
    let wants_async = request.query_param("mode") == Some("async");

    if let Some(body) = shared.cache.get(&key) {
        if spec.is_fleet() {
            shared
                .metrics
                .fleet_cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        if spec.is_iso() {
            shared
                .metrics
                .iso_accuracy_cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        if spec.is_retrain() {
            shared
                .metrics
                .retrain_cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        return respond(
            stream,
            200,
            "application/json",
            &[("X-Dante-Cache", "hit".to_owned()), ("X-Dante-Digest", key)],
            body.as_bytes(),
            keep_alive,
        );
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return respond(
            stream,
            503,
            "application/json",
            &[],
            api::error_body("server shutting down").as_bytes(),
            false,
        );
    }

    // Attach to an identical in-flight job if one exists; otherwise create
    // and enqueue. Identical concurrent submissions thus cost one
    // simulation, and — determinism — receive byte-identical bodies.
    let job = match shared.registry.active_for_digest(&key) {
        Some(job) => job,
        None => {
            let job = shared
                .registry
                .create(spec, key.clone(), request.client.clone());
            if shared.queue.try_push(job.clone()).is_err() {
                job.set_status(JobStatus::Cancelled, None, Some("queue full".to_owned()));
                shared.registry.retire(&job);
                shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                let body = api::error_body(&format!(
                    "queue full ({} waiting); retry shortly",
                    shared.config.queue_depth
                ));
                return respond(
                    stream,
                    429,
                    "application/json",
                    &[("Retry-After", "1".to_owned())],
                    body.as_bytes(),
                    keep_alive,
                );
            }
            job
        }
    };

    if wants_async {
        let body = Value::Object(BTreeMap::from([
            ("job".to_owned(), Value::String(job.id.clone())),
            ("digest".to_owned(), Value::String(job.digest.clone())),
            (
                "status".to_owned(),
                Value::String(job.status().token().to_owned()),
            ),
        ]))
        .to_string_compact();
        return respond(
            stream,
            202,
            "application/json",
            &[],
            body.as_bytes(),
            keep_alive,
        );
    }

    match job.wait_terminal(&shared.shutdown) {
        JobStatus::Done => {
            let body = job
                .state
                .lock()
                .expect("job lock poisoned")
                .result
                .clone()
                .expect("done job carries a result");
            respond(
                stream,
                200,
                "application/json",
                &[
                    ("X-Dante-Cache", "miss".to_owned()),
                    ("X-Dante-Digest", job.digest.clone()),
                ],
                body.as_bytes(),
                keep_alive,
            )
        }
        JobStatus::Failed => {
            let why = job
                .state
                .lock()
                .expect("job lock poisoned")
                .error
                .clone()
                .unwrap_or_else(|| "sweep failed".to_owned());
            respond(
                stream,
                500,
                "application/json",
                &[],
                api::error_body(&why).as_bytes(),
                keep_alive,
            )
        }
        _ => respond(
            stream,
            503,
            "application/json",
            &[],
            api::error_body("cancelled by shutdown").as_bytes(),
            false,
        ),
    }
}

/// `GET /v1/iso-accuracy`: solve `V_min` at an accuracy floor and report
/// each supply configuration's energy there. The solve is deterministic per
/// query, so results are content-addressed into the same cache as sweeps
/// (the iso canonical string has its own `dante.iso.` prefix, so the two
/// key families cannot collide). Cold solves run through the job queue's
/// interactive lane, so an iso request never waits behind a bulk sweep
/// backlog; cached results return directly from the connection thread.
fn get_iso_accuracy(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &Request,
    keep_alive: bool,
) -> u16 {
    // `mode` is submission transport (sync vs async ticket), not part of
    // the solve; strip it before the strict spec decode.
    let spec_query: String = request
        .query
        .split('&')
        .filter(|pair| {
            let key = pair.split_once('=').map_or(*pair, |(k, _)| k);
            !pair.is_empty() && key != "mode"
        })
        .collect::<Vec<_>>()
        .join("&");
    let spec = match api::decode_iso_query(&spec_query) {
        Ok(spec) => spec,
        Err(why) => {
            return respond(
                stream,
                400,
                "application/json",
                &[],
                api::error_body(&why).as_bytes(),
                keep_alive,
            )
        }
    };
    submit_job(stream, shared, request, keep_alive, JobSpec::Iso(spec))
}

fn job_status(stream: &mut TcpStream, shared: &Arc<Shared>, id: &str, keep_alive: bool) -> u16 {
    let Some(job) = shared.registry.get(id) else {
        return respond(
            stream,
            404,
            "application/json",
            &[],
            api::error_body(&format!("no such job {id:?}")).as_bytes(),
            keep_alive,
        );
    };
    let state = job.state.lock().expect("job lock poisoned");
    let mut obj = BTreeMap::from([
        ("id".to_owned(), Value::String(job.id.clone())),
        ("digest".to_owned(), Value::String(job.digest.clone())),
        (
            "status".to_owned(),
            Value::String(state.status.token().to_owned()),
        ),
        (
            "events".to_owned(),
            Value::Number(state.events.len() as f64),
        ),
        (
            "dropped_events".to_owned(),
            Value::Number(state.dropped_events as f64),
        ),
    ]);
    if let Some(seq) = state.finish_seq {
        // Process-wide completion order: lets clients (and the fairness
        // tests) observe which jobs finished first without timing races.
        obj.insert("finish_seq".to_owned(), Value::Number(seq as f64));
    }
    if let Some(result) = &state.result {
        // Embed the record as structure, not as an escaped string; the
        // byte-exact body lives at /result and in the POST response.
        if let Ok(parsed) = Value::parse(result) {
            obj.insert("result".to_owned(), parsed);
        }
    }
    if let Some(error) = &state.error {
        obj.insert("error".to_owned(), Value::String(error.clone()));
    }
    drop(state);
    let body = Value::Object(obj).to_string_compact();
    respond(
        stream,
        200,
        "application/json",
        &[],
        body.as_bytes(),
        keep_alive,
    )
}

fn job_result(stream: &mut TcpStream, shared: &Arc<Shared>, id: &str, keep_alive: bool) -> u16 {
    let Some(job) = shared.registry.get(id) else {
        return respond(
            stream,
            404,
            "application/json",
            &[],
            api::error_body(&format!("no such job {id:?}")).as_bytes(),
            keep_alive,
        );
    };
    let state = job.state.lock().expect("job lock poisoned");
    match (&state.result, state.status) {
        (Some(result), _) => {
            let body = result.clone();
            drop(state);
            respond(
                stream,
                200,
                "application/json",
                &[("X-Dante-Digest", job.digest.clone())],
                body.as_bytes(),
                keep_alive,
            )
        }
        (None, status) => {
            drop(state);
            respond(
                stream,
                404,
                "application/json",
                &[],
                api::error_body(&format!("job is {}, no result", status.token())).as_bytes(),
                keep_alive,
            )
        }
    }
}

/// Streams a job's progress events as one JSON line per chunk, replaying
/// history first and then following live until the job ends or the server
/// shuts down (which terminates the chunk stream cleanly with a final
/// `shutdown` event).
fn stream_job_events(stream: &mut TcpStream, shared: &Arc<Shared>, id: &str) -> u16 {
    let Some(job) = shared.registry.get(id) else {
        let _ = http::write_response(
            stream,
            404,
            "application/json",
            &[],
            api::error_body(&format!("no such job {id:?}")).as_bytes(),
            false,
        );
        return 404;
    };
    let Ok(mut chunks) = ChunkedResponse::start(stream, 200, "application/x-ndjson") else {
        return STREAMED;
    };
    let mut cursor = 0usize;
    loop {
        // Snapshot new events under the lock, write them outside it.
        let (new_events, status) = {
            let state = job.state.lock().expect("job lock poisoned");
            (
                state.events[cursor.min(state.events.len())..].to_vec(),
                state.status,
            )
        };
        for event in &new_events {
            cursor += 1;
            let mut line = String::with_capacity(event.len() + 1);
            line.push_str(event);
            line.push('\n');
            if chunks.chunk(line.as_bytes()).is_err() {
                return STREAMED; // client went away
            }
        }
        if status.is_terminal() {
            let _ = chunks.chunk(
                format!("{{\"event\":\"end\",\"status\":\"{}\"}}\n", status.token()).as_bytes(),
            );
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = chunks.chunk(b"{\"event\":\"shutdown\"}\n");
            break;
        }
        // Wait for more events (or a timeout tick to re-check shutdown).
        let state = job.state.lock().expect("job lock poisoned");
        if state.events.len() == cursor && !state.status.is_terminal() {
            let _ = job
                .cv
                .wait_timeout(state, Duration::from_millis(50))
                .expect("job lock poisoned");
        }
    }
    let _ = chunks.finish();
    STREAMED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_rejects_garbage() {
        std::env::set_var("DANTE_SERVE_WORKERS", "lots");
        let err = ServerConfig::from_env().unwrap_err();
        assert!(err.contains("DANTE_SERVE_WORKERS"), "{err}");
        std::env::set_var("DANTE_SERVE_WORKERS", "0");
        assert!(ServerConfig::from_env().is_err(), "binary floor is 1");
        std::env::set_var("DANTE_SERVE_WORKERS", "3");
        std::env::set_var("DANTE_SERVE_QUEUE", "7");
        let cfg = ServerConfig::from_env().unwrap();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_depth, 7);
        std::env::remove_var("DANTE_SERVE_WORKERS");
        std::env::remove_var("DANTE_SERVE_QUEUE");
    }
}
