//! Sweep jobs: states, the bounded queue, and the registry.
//!
//! A [`Job`] is one queued/running/finished sweep. Its state sits behind a
//! `Mutex` + `Condvar` pair so three kinds of thread can coordinate on it:
//! the worker that runs it, synchronous submitters blocked in
//! [`Job::wait_terminal`], and streaming connections replaying
//! [`Job::state`] events as they appear.

use dante::fleet::FleetSpec;
use dante::sweep::SweepSpec;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Cap on retained per-job progress events; beyond it events are counted
/// but dropped (terminal events are always appended so streams end with a
/// definite marker).
pub const EVENT_CAP: usize = 4096;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished; the result body is available.
    Done,
    /// The worker hit an error (panic or preparation failure).
    Failed,
    /// Dropped by graceful shutdown before a worker picked it up.
    Cancelled,
}

impl JobStatus {
    /// Whether the job will make no further progress.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Done | Self::Failed | Self::Cancelled)
    }

    /// Lowercase wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
        }
    }
}

/// Mutable job state (guarded by [`Job::state`]).
#[derive(Debug)]
pub struct JobState {
    /// Current lifecycle phase.
    pub status: JobStatus,
    /// Rendered progress events (JSON lines), capped at [`EVENT_CAP`].
    pub events: Vec<Arc<String>>,
    /// Events dropped once the cap was hit.
    pub dropped_events: u64,
    /// The rendered response body, set when `status == Done`.
    pub result: Option<Arc<String>>,
    /// Failure reason, set when `status == Failed`.
    pub error: Option<String>,
}

/// The work a job carries: a voltage sweep or a fleet-scale V_min/yield
/// population sweep. Both are content-addressed by their canonical strings,
/// whose distinct `dante.sweep.` / `dante.fleet.` prefixes keep the two
/// cache-key families disjoint by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A Monte-Carlo accuracy/energy sweep (`POST /v1/sweep`).
    Sweep(SweepSpec),
    /// A fleet V_min/yield sweep (`POST /v1/fleet`).
    Fleet(FleetSpec),
}

impl JobSpec {
    /// The canonical content-address input of the underlying spec.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        match self {
            Self::Sweep(spec) => spec.canonical_string(),
            Self::Fleet(spec) => spec.canonical_string(),
        }
    }

    /// Whether the job exercises the energy-comparison machinery (fleet
    /// sweeps never do — they sample overlays, not inference energy).
    #[must_use]
    pub fn is_energy_sweep(&self) -> bool {
        match self {
            Self::Sweep(spec) => spec.is_energy_sweep(),
            Self::Fleet(_) => false,
        }
    }

    /// Whether this is a fleet sweep (counted separately in `/metrics`).
    #[must_use]
    pub fn is_fleet(&self) -> bool {
        matches!(self, Self::Fleet(_))
    }
}

/// One sweep job.
#[derive(Debug)]
pub struct Job {
    /// Service-unique identifier (`"job-<n>"`).
    pub id: String,
    /// Content digest of the spec's canonical string.
    pub digest: String,
    /// The work itself.
    pub spec: JobSpec,
    /// Guarded state; lock only briefly.
    pub state: Mutex<JobState>,
    /// Signalled on every state/event change.
    pub cv: Condvar,
}

impl Job {
    fn new(id: String, digest: String, spec: JobSpec) -> Self {
        Self {
            id,
            digest,
            spec,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                events: Vec::new(),
                dropped_events: 0,
                result: None,
                error: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Appends a progress event (subject to [`EVENT_CAP`] unless `force`)
    /// and wakes every waiter.
    pub fn push_event(&self, line: String, force: bool) {
        let mut state = self.state.lock().expect("job lock poisoned");
        if force || state.events.len() < EVENT_CAP {
            state.events.push(Arc::new(line));
        } else {
            state.dropped_events += 1;
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Moves the job to `status` (optionally attaching a result or error)
    /// and wakes every waiter.
    pub fn set_status(
        &self,
        status: JobStatus,
        result: Option<Arc<String>>,
        error: Option<String>,
    ) {
        let mut state = self.state.lock().expect("job lock poisoned");
        state.status = status;
        if result.is_some() {
            state.result = result;
        }
        if error.is_some() {
            state.error = error;
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Current status snapshot.
    #[must_use]
    pub fn status(&self) -> JobStatus {
        self.state.lock().expect("job lock poisoned").status
    }

    /// Whether this job exercises the energy-comparison machinery (counted
    /// separately in `/metrics` as `dante_serve_energy_sweep_jobs_total`).
    #[must_use]
    pub fn is_energy_sweep(&self) -> bool {
        self.spec.is_energy_sweep()
    }

    /// Whether this job is a fleet sweep (counted separately in `/metrics`
    /// as `dante_serve_fleet_jobs_total`).
    #[must_use]
    pub fn is_fleet(&self) -> bool {
        self.spec.is_fleet()
    }

    /// Blocks until the job reaches a terminal status or `shutdown` is
    /// raised; returns the status seen last. Polls on a short condvar
    /// timeout so a shutdown signalled from another thread is never missed.
    #[must_use]
    pub fn wait_terminal(&self, shutdown: &AtomicBool) -> JobStatus {
        let mut state = self.state.lock().expect("job lock poisoned");
        loop {
            if state.status.is_terminal() {
                return state.status;
            }
            if shutdown.load(Ordering::SeqCst) && state.status == JobStatus::Queued {
                // The queue drain will cancel it momentarily; report the
                // intent without racing the drain.
                return JobStatus::Cancelled;
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, Duration::from_millis(50))
                .expect("job lock poisoned");
            state = next;
        }
    }
}

/// Submission failure: the bounded queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// The bounded FIFO feeding the worker pool.
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    inner: Mutex<VecDeque<Arc<Job>>>,
    cv: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    /// Enqueues `job`, or reports [`QueueFull`] — the caller turns that
    /// into HTTP 429 with `Retry-After`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when `capacity` jobs are already waiting.
    pub fn try_push(&self, job: Arc<Job>) -> Result<(), QueueFull> {
        let mut queue = self.inner.lock().expect("queue lock poisoned");
        if queue.len() >= self.capacity {
            return Err(QueueFull);
        }
        queue.push_back(job);
        drop(queue);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; returns `None` once `shutdown` is raised
    /// (workers then exit — in-flight jobs have already been claimed and
    /// run to completion, which is the drain guarantee).
    #[must_use]
    pub fn pop(&self, shutdown: &AtomicBool) -> Option<Arc<Job>> {
        let mut queue = self.inner.lock().expect("queue lock poisoned");
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            let (next, _) = self
                .cv
                .wait_timeout(queue, Duration::from_millis(50))
                .expect("queue lock poisoned");
            queue = next;
        }
    }

    /// Jobs currently waiting (the `/metrics` gauge).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").len()
    }

    /// Empties the queue, returning the jobs that never ran (shutdown
    /// cancels them).
    #[must_use]
    pub fn drain(&self) -> Vec<Arc<Job>> {
        let mut queue = self.inner.lock().expect("queue lock poisoned");
        let drained = queue.drain(..).collect();
        drop(queue);
        self.cv.notify_all();
        drained
    }

    /// Wakes every thread blocked in [`Self::pop`] (shutdown path).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

/// All jobs the service has seen, by id, plus an active-by-digest index so
/// concurrent identical submissions share one simulation.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    active_by_digest: Mutex<HashMap<String, Arc<Job>>>,
    next_id: AtomicU64,
}

impl JobRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates and registers a job for `spec`.
    #[must_use]
    pub fn create(&self, spec: JobSpec, digest: String) -> Arc<Job> {
        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let job = Arc::new(Job::new(id.clone(), digest.clone(), spec));
        self.jobs
            .lock()
            .expect("registry lock poisoned")
            .insert(id, job.clone());
        self.active_by_digest
            .lock()
            .expect("registry lock poisoned")
            .insert(digest, job.clone());
        job
    }

    /// Looks up a job by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("registry lock poisoned")
            .get(id)
            .cloned()
    }

    /// The non-terminal job already covering `digest`, if any — concurrent
    /// identical submissions attach to it instead of re-simulating.
    #[must_use]
    pub fn active_for_digest(&self, digest: &str) -> Option<Arc<Job>> {
        let mut index = self
            .active_by_digest
            .lock()
            .expect("registry lock poisoned");
        match index.get(digest) {
            Some(job) if !job.status().is_terminal() => Some(job.clone()),
            Some(_) => {
                index.remove(digest);
                None
            }
            None => None,
        }
    }

    /// Drops the active-index entry once `job` is terminal (idempotent; a
    /// newer job under the same digest is left in place).
    pub fn retire(&self, job: &Arc<Job>) {
        let mut index = self
            .active_by_digest
            .lock()
            .expect("registry lock poisoned");
        if let Some(current) = index.get(&job.digest) {
            if Arc::ptr_eq(current, job) {
                index.remove(&job.digest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::Sweep(SweepSpec::toy_default())
    }

    #[test]
    fn job_spec_delegates_classification_and_canonical_string() {
        let sweep = spec();
        assert!(!sweep.is_fleet());
        assert!(!sweep.is_energy_sweep(), "toy single-supply sweep");
        assert!(sweep.canonical_string().starts_with("dante.sweep."));
        let fleet = JobSpec::Fleet(FleetSpec::toy_default());
        assert!(fleet.is_fleet());
        assert!(!fleet.is_energy_sweep());
        assert!(fleet.canonical_string().starts_with("dante.fleet."));
    }

    #[test]
    fn queue_enforces_capacity_and_fifo_order() {
        let registry = JobRegistry::new();
        let queue = JobQueue::new(2);
        let a = registry.create(spec(), "d1".into());
        let b = registry.create(spec(), "d2".into());
        let c = registry.create(spec(), "d3".into());
        assert_eq!(a.id, "job-1");
        queue.try_push(a.clone()).unwrap();
        queue.try_push(b.clone()).unwrap();
        assert_eq!(queue.try_push(c).unwrap_err(), QueueFull);
        assert_eq!(queue.depth(), 2);
        let shutdown = AtomicBool::new(false);
        assert_eq!(queue.pop(&shutdown).unwrap().id, a.id);
        assert_eq!(queue.pop(&shutdown).unwrap().id, b.id);
    }

    #[test]
    fn pop_returns_none_on_shutdown() {
        let queue = JobQueue::new(1);
        let shutdown = AtomicBool::new(true);
        assert!(queue.pop(&shutdown).is_none());
    }

    #[test]
    fn wait_terminal_sees_completion_from_another_thread() {
        let registry = JobRegistry::new();
        let job = registry.create(spec(), "d".into());
        let waiter = {
            let job = job.clone();
            std::thread::spawn(move || {
                let shutdown = AtomicBool::new(false);
                job.wait_terminal(&shutdown)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        job.set_status(JobStatus::Done, Some(Arc::new("body".into())), None);
        assert_eq!(waiter.join().unwrap(), JobStatus::Done);
        assert_eq!(
            job.state
                .lock()
                .unwrap()
                .result
                .as_deref()
                .map(String::as_str),
            Some("body")
        );
    }

    #[test]
    fn event_cap_drops_but_counts() {
        let registry = JobRegistry::new();
        let job = registry.create(spec(), "d".into());
        for i in 0..(EVENT_CAP + 10) {
            job.push_event(format!("e{i}"), false);
        }
        job.push_event("terminal".into(), true);
        let state = job.state.lock().unwrap();
        assert_eq!(state.events.len(), EVENT_CAP + 1);
        assert_eq!(state.dropped_events, 10);
        assert_eq!(state.events.last().unwrap().as_str(), "terminal");
    }

    #[test]
    fn digest_index_dedups_active_jobs_and_retires_terminal_ones() {
        let registry = JobRegistry::new();
        let job = registry.create(spec(), "dig".into());
        assert!(Arc::ptr_eq(
            &registry.active_for_digest("dig").unwrap(),
            &job
        ));
        job.set_status(JobStatus::Done, None, None);
        assert!(registry.active_for_digest("dig").is_none());
        registry.retire(&job); // idempotent after lazy removal
        assert!(registry.get(&job.id).is_some(), "history is retained");
    }
}
