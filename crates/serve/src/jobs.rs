//! Sweep jobs: states, the bounded two-lane queue, and the registry.
//!
//! A [`Job`] is one queued/running/finished sweep. Its state sits behind a
//! `Mutex` + `Condvar` pair so three kinds of thread can coordinate on it:
//! the worker that runs it, synchronous submitters blocked in
//! [`Job::wait_terminal`], and streaming connections replaying
//! [`Job::state`] events as they appear.
//!
//! # Scheduling
//!
//! The queue is not a plain FIFO. Jobs are split into two [`Lane`]s —
//! interactive (iso-accuracy solves: seconds of work a human is waiting
//! on) and bulk (sweeps and fleet populations: minutes of work) — served
//! by weighted round-robin, so a burst of bulk submissions cannot starve
//! an interactive solve. Within the bulk lane, jobs are queued per client
//! token (the `X-Dante-Client` request header) and clients are served
//! round-robin, so one client queueing a 10,000-die fleet backlog cannot
//! starve another client's single sweep.

use dante::fleet::FleetSpec;
use dante::iso::IsoAccuracySpec;
use dante::retrain::RetrainSpec;
use dante::sweep::SweepSpec;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Cap on retained per-job progress events; beyond it events are counted
/// but dropped (terminal events are always appended so streams end with a
/// definite marker).
pub const EVENT_CAP: usize = 4096;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished; the result body is available.
    Done,
    /// The worker hit an error (panic or preparation failure).
    Failed,
    /// Dropped by graceful shutdown before a worker picked it up.
    Cancelled,
}

impl JobStatus {
    /// Whether the job will make no further progress.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Done | Self::Failed | Self::Cancelled)
    }

    /// Lowercase wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Done => "done",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
        }
    }
}

/// Mutable job state (guarded by [`Job::state`]).
#[derive(Debug)]
pub struct JobState {
    /// Current lifecycle phase.
    pub status: JobStatus,
    /// Rendered progress events (JSON lines), capped at [`EVENT_CAP`].
    pub events: Vec<Arc<String>>,
    /// Events dropped once the cap was hit.
    pub dropped_events: u64,
    /// The rendered response body, set when `status == Done`.
    pub result: Option<Arc<String>>,
    /// Failure reason, set when `status == Failed`.
    pub error: Option<String>,
    /// Process-wide monotone completion sequence number, assigned the
    /// moment the job goes terminal. Lets tests and clients assert
    /// *ordering* between completions (e.g. lane fairness) without
    /// wall-clock races.
    pub finish_seq: Option<u64>,
}

/// Process-wide completion counter backing [`JobState::finish_seq`].
static FINISH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Which scheduling lane a job rides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Short, human-blocking work (iso-accuracy solves).
    Interactive,
    /// Long-running throughput work (sweeps, fleet populations).
    Bulk,
}

/// The work a job carries: a voltage sweep, a fleet-scale V_min/yield
/// population sweep, an iso-accuracy solve, or a fault-aware retraining
/// run. All are content-addressed by their canonical strings, whose
/// distinct `dante.sweep.` / `dante.fleet.` / `dante.iso.` /
/// `dante.retrain.` prefixes keep the cache-key families disjoint by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A Monte-Carlo accuracy/energy sweep (`POST /v1/sweep`).
    Sweep(SweepSpec),
    /// A fleet V_min/yield sweep (`POST /v1/fleet`).
    Fleet(FleetSpec),
    /// An iso-accuracy solve (`GET /v1/iso-accuracy`) — the interactive
    /// lane's tenant.
    Iso(IsoAccuracySpec),
    /// A fault-aware retraining run (`POST /v1/retrain`) — the longest
    /// bulk work the service carries.
    Retrain(RetrainSpec),
}

impl JobSpec {
    /// The canonical content-address input of the underlying spec.
    #[must_use]
    pub fn canonical_string(&self) -> String {
        match self {
            Self::Sweep(spec) => spec.canonical_string(),
            Self::Fleet(spec) => spec.canonical_string(),
            Self::Iso(spec) => spec.canonical_string(),
            Self::Retrain(spec) => spec.canonical_string(),
        }
    }

    /// Whether the job exercises the energy-comparison machinery (fleet
    /// sweeps never do — they sample overlays, not inference energy; iso
    /// solves and retraining runs are counted under their own metrics
    /// instead).
    #[must_use]
    pub fn is_energy_sweep(&self) -> bool {
        match self {
            Self::Sweep(spec) => spec.is_energy_sweep(),
            Self::Fleet(_) | Self::Iso(_) | Self::Retrain(_) => false,
        }
    }

    /// Whether this is a fleet sweep (counted separately in `/metrics`).
    #[must_use]
    pub fn is_fleet(&self) -> bool {
        matches!(self, Self::Fleet(_))
    }

    /// Whether this is an iso-accuracy solve.
    #[must_use]
    pub fn is_iso(&self) -> bool {
        matches!(self, Self::Iso(_))
    }

    /// Whether this is a retraining run (counted separately in `/metrics`).
    #[must_use]
    pub fn is_retrain(&self) -> bool {
        matches!(self, Self::Retrain(_))
    }

    /// The scheduling lane this work rides in.
    #[must_use]
    pub fn lane(&self) -> Lane {
        match self {
            Self::Iso(_) => Lane::Interactive,
            Self::Sweep(_) | Self::Fleet(_) | Self::Retrain(_) => Lane::Bulk,
        }
    }
}

/// One sweep job.
#[derive(Debug)]
pub struct Job {
    /// Service-unique identifier (`"job-<n>"`).
    pub id: String,
    /// Content digest of the spec's canonical string.
    pub digest: String,
    /// The work itself.
    pub spec: JobSpec,
    /// The submitting client's token (`X-Dante-Client` header; empty when
    /// the client sent none). Bulk-lane fairness is keyed on this.
    pub client: String,
    /// Guarded state; lock only briefly.
    pub state: Mutex<JobState>,
    /// Signalled on every state/event change.
    pub cv: Condvar,
}

impl Job {
    fn new(id: String, digest: String, spec: JobSpec, client: String) -> Self {
        Self {
            id,
            digest,
            spec,
            client,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                events: Vec::new(),
                dropped_events: 0,
                result: None,
                error: None,
                finish_seq: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Appends a progress event (subject to [`EVENT_CAP`] unless `force`)
    /// and wakes every waiter.
    pub fn push_event(&self, line: String, force: bool) {
        let mut state = self.state.lock().expect("job lock poisoned");
        if force || state.events.len() < EVENT_CAP {
            state.events.push(Arc::new(line));
        } else {
            state.dropped_events += 1;
        }
        drop(state);
        self.cv.notify_all();
    }

    /// Moves the job to `status` (optionally attaching a result or error)
    /// and wakes every waiter.
    pub fn set_status(
        &self,
        status: JobStatus,
        result: Option<Arc<String>>,
        error: Option<String>,
    ) {
        let mut state = self.state.lock().expect("job lock poisoned");
        state.status = status;
        if result.is_some() {
            state.result = result;
        }
        if error.is_some() {
            state.error = error;
        }
        if status.is_terminal() && state.finish_seq.is_none() {
            state.finish_seq = Some(FINISH_SEQ.fetch_add(1, Ordering::Relaxed) + 1);
        }
        drop(state);
        self.cv.notify_all();
    }

    /// The completion sequence number, once terminal.
    #[must_use]
    pub fn finish_seq(&self) -> Option<u64> {
        self.state.lock().expect("job lock poisoned").finish_seq
    }

    /// The scheduling lane this job rides in.
    #[must_use]
    pub fn lane(&self) -> Lane {
        self.spec.lane()
    }

    /// Current status snapshot.
    #[must_use]
    pub fn status(&self) -> JobStatus {
        self.state.lock().expect("job lock poisoned").status
    }

    /// Whether this job exercises the energy-comparison machinery (counted
    /// separately in `/metrics` as `dante_serve_energy_sweep_jobs_total`).
    #[must_use]
    pub fn is_energy_sweep(&self) -> bool {
        self.spec.is_energy_sweep()
    }

    /// Whether this job is a fleet sweep (counted separately in `/metrics`
    /// as `dante_serve_fleet_jobs_total`).
    #[must_use]
    pub fn is_fleet(&self) -> bool {
        self.spec.is_fleet()
    }

    /// Whether this job is a retraining run (counted separately in
    /// `/metrics` as `dante_serve_retrain_jobs_total`).
    #[must_use]
    pub fn is_retrain(&self) -> bool {
        self.spec.is_retrain()
    }

    /// Blocks until the job reaches a terminal status or `shutdown` is
    /// raised; returns the status seen last. Polls on a short condvar
    /// timeout so a shutdown signalled from another thread is never missed.
    #[must_use]
    pub fn wait_terminal(&self, shutdown: &AtomicBool) -> JobStatus {
        let mut state = self.state.lock().expect("job lock poisoned");
        loop {
            if state.status.is_terminal() {
                return state.status;
            }
            if shutdown.load(Ordering::SeqCst) && state.status == JobStatus::Queued {
                // The queue drain will cancel it momentarily; report the
                // intent without racing the drain.
                return JobStatus::Cancelled;
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, Duration::from_millis(50))
                .expect("job lock poisoned");
            state = next;
        }
    }
}

/// Submission failure: the bounded queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// Weighted-round-robin credits for the two lanes: out of every
/// `interactive + bulk` consecutive dispatches under contention, the
/// interactive lane receives `interactive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWeights {
    /// Dispatches per round for the interactive lane.
    pub interactive: u32,
    /// Dispatches per round for the bulk lane.
    pub bulk: u32,
}

impl Default for LaneWeights {
    /// 4:1 in favour of interactive work — bulk jobs run minutes, so even
    /// heavily favouring the short lane costs bulk throughput almost
    /// nothing while keeping solves responsive.
    fn default() -> Self {
        Self {
            interactive: 4,
            bulk: 1,
        }
    }
}

impl LaneWeights {
    /// Parses the `DANTE_SERVE_LANE_WEIGHTS` format
    /// `"<interactive>,<bulk>"` (both positive integers).
    ///
    /// # Errors
    ///
    /// Describes the malformed field.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let (i, b) = raw
            .split_once(',')
            .ok_or_else(|| format!("lane weights {raw:?} must be \"<interactive>,<bulk>\""))?;
        let interactive: u32 = i
            .trim()
            .parse()
            .map_err(|_| format!("bad interactive lane weight {i:?}"))?;
        let bulk: u32 = b
            .trim()
            .parse()
            .map_err(|_| format!("bad bulk lane weight {b:?}"))?;
        if interactive == 0 || bulk == 0 {
            return Err("lane weights must both be positive (a zero weight starves a lane)".into());
        }
        Ok(Self { interactive, bulk })
    }
}

/// Queue internals: one FIFO for the interactive lane, per-client FIFOs
/// with client rotation for the bulk lane, and the WRR credit state.
#[derive(Debug, Default)]
struct LaneState {
    interactive: VecDeque<Arc<Job>>,
    /// Bulk jobs keyed by client token.
    bulk: HashMap<String, VecDeque<Arc<Job>>>,
    /// Clients with waiting bulk jobs, in round-robin service order.
    bulk_rotation: VecDeque<String>,
    bulk_len: usize,
    credits_interactive: u32,
    credits_bulk: u32,
}

impl LaneState {
    fn len(&self) -> usize {
        self.interactive.len() + self.bulk_len
    }

    fn pop_bulk(&mut self) -> Option<Arc<Job>> {
        let client = self.bulk_rotation.pop_front()?;
        let queue = self
            .bulk
            .get_mut(&client)
            .expect("rotation entries always have a queue");
        let job = queue.pop_front().expect("rotation queues are non-empty");
        if queue.is_empty() {
            self.bulk.remove(&client);
        } else {
            // The client goes to the back of the rotation: each waiting
            // client gets one dispatch per cycle regardless of backlog.
            self.bulk_rotation.push_back(client);
        }
        self.bulk_len -= 1;
        Some(job)
    }
}

/// The bounded two-lane queue feeding the worker pool (see the module docs
/// for the scheduling discipline).
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    weights: LaneWeights,
    inner: Mutex<LaneState>,
    cv: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs, with default
    /// lane weights.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_weights(capacity, LaneWeights::default())
    }

    /// A queue with explicit lane weights (`DANTE_SERVE_LANE_WEIGHTS`).
    #[must_use]
    pub fn with_weights(capacity: usize, weights: LaneWeights) -> Self {
        Self {
            capacity,
            weights,
            inner: Mutex::new(LaneState::default()),
            cv: Condvar::new(),
        }
    }

    /// Enqueues `job` in its lane, or reports [`QueueFull`] — the caller
    /// turns that into HTTP 429 with `Retry-After`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when `capacity` jobs are already waiting
    /// (the bound covers both lanes together).
    pub fn try_push(&self, job: Arc<Job>) -> Result<(), QueueFull> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        if state.len() >= self.capacity {
            return Err(QueueFull);
        }
        match job.lane() {
            Lane::Interactive => state.interactive.push_back(job),
            Lane::Bulk => {
                let client = job.client.clone();
                let newly_active = state.bulk.get(&client).is_none_or(|queue| queue.is_empty());
                if newly_active {
                    state.bulk_rotation.push_back(client.clone());
                }
                state.bulk.entry(client).or_default().push_back(job);
                state.bulk_len += 1;
            }
        }
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job per the weighted-round-robin discipline;
    /// returns `None` once `shutdown` is raised (workers then exit —
    /// in-flight jobs have already been claimed and run to completion,
    /// which is the drain guarantee).
    ///
    /// The scheduler is work-conserving: credits only arbitrate when both
    /// lanes hold work; a lone non-empty lane is always served.
    #[must_use]
    pub fn pop(&self, shutdown: &AtomicBool) -> Option<Arc<Job>> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if state.len() > 0 {
                if state.credits_interactive == 0 && state.credits_bulk == 0 {
                    state.credits_interactive = self.weights.interactive;
                    state.credits_bulk = self.weights.bulk;
                }
                let take_interactive = if state.interactive.is_empty() {
                    false
                } else if state.bulk_len == 0 {
                    true
                } else {
                    // Both lanes have work: spend interactive credits
                    // first, then bulk's guaranteed share.
                    state.credits_interactive > 0
                };
                if take_interactive {
                    state.credits_interactive = state.credits_interactive.saturating_sub(1);
                    let job = state.interactive.pop_front().expect("checked non-empty");
                    return Some(job);
                }
                state.credits_bulk = state.credits_bulk.saturating_sub(1);
                let job = state.pop_bulk().expect("bulk lane checked non-empty");
                return Some(job);
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, Duration::from_millis(50))
                .expect("queue lock poisoned");
            state = next;
        }
    }

    /// Jobs currently waiting across both lanes (the `/metrics` gauge).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").len()
    }

    /// `(interactive, bulk)` waiting-job counts (per-lane gauges).
    #[must_use]
    pub fn lane_depths(&self) -> (usize, usize) {
        let state = self.inner.lock().expect("queue lock poisoned");
        (state.interactive.len(), state.bulk_len)
    }

    /// Empties both lanes, returning the jobs that never ran (shutdown
    /// cancels them).
    #[must_use]
    pub fn drain(&self) -> Vec<Arc<Job>> {
        let mut state = self.inner.lock().expect("queue lock poisoned");
        let mut drained: Vec<Arc<Job>> = state.interactive.drain(..).collect();
        while let Some(job) = state.pop_bulk() {
            drained.push(job);
        }
        drop(state);
        self.cv.notify_all();
        drained
    }

    /// Wakes every thread blocked in [`Self::pop`] (shutdown path).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

/// All jobs the service has seen, by id, plus an active-by-digest index so
/// concurrent identical submissions share one simulation.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    active_by_digest: Mutex<HashMap<String, Arc<Job>>>,
    next_id: AtomicU64,
}

impl JobRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates and registers a job for `spec`, attributed to `client` (the
    /// `X-Dante-Client` token; empty for anonymous submissions).
    #[must_use]
    pub fn create(&self, spec: JobSpec, digest: String, client: String) -> Arc<Job> {
        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let job = Arc::new(Job::new(id.clone(), digest.clone(), spec, client));
        self.jobs
            .lock()
            .expect("registry lock poisoned")
            .insert(id, job.clone());
        self.active_by_digest
            .lock()
            .expect("registry lock poisoned")
            .insert(digest, job.clone());
        job
    }

    /// Looks up a job by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("registry lock poisoned")
            .get(id)
            .cloned()
    }

    /// The non-terminal job already covering `digest`, if any — concurrent
    /// identical submissions attach to it instead of re-simulating.
    #[must_use]
    pub fn active_for_digest(&self, digest: &str) -> Option<Arc<Job>> {
        let mut index = self
            .active_by_digest
            .lock()
            .expect("registry lock poisoned");
        match index.get(digest) {
            Some(job) if !job.status().is_terminal() => Some(job.clone()),
            Some(_) => {
                index.remove(digest);
                None
            }
            None => None,
        }
    }

    /// Drops the active-index entry once `job` is terminal (idempotent; a
    /// newer job under the same digest is left in place).
    pub fn retire(&self, job: &Arc<Job>) {
        let mut index = self
            .active_by_digest
            .lock()
            .expect("registry lock poisoned");
        if let Some(current) = index.get(&job.digest) {
            if Arc::ptr_eq(current, job) {
                index.remove(&job.digest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::Sweep(SweepSpec::toy_default())
    }

    fn iso_spec() -> JobSpec {
        JobSpec::Iso(IsoAccuracySpec::toy_default())
    }

    #[test]
    fn job_spec_delegates_classification_and_canonical_string() {
        let sweep = spec();
        assert!(!sweep.is_fleet());
        assert!(!sweep.is_energy_sweep(), "toy single-supply sweep");
        assert!(sweep.canonical_string().starts_with("dante.sweep."));
        assert_eq!(sweep.lane(), Lane::Bulk);
        let fleet = JobSpec::Fleet(FleetSpec::toy_default());
        assert!(fleet.is_fleet());
        assert!(!fleet.is_energy_sweep());
        assert!(fleet.canonical_string().starts_with("dante.fleet."));
        assert_eq!(fleet.lane(), Lane::Bulk);
        let iso = iso_spec();
        assert!(iso.is_iso());
        assert!(!iso.is_energy_sweep());
        assert!(iso.canonical_string().starts_with("dante.iso."));
        assert_eq!(iso.lane(), Lane::Interactive);
        let retrain = JobSpec::Retrain(RetrainSpec::toy_default());
        assert!(retrain.is_retrain());
        assert!(!retrain.is_fleet());
        assert!(!retrain.is_energy_sweep());
        assert!(retrain.canonical_string().starts_with("dante.retrain."));
        assert_eq!(retrain.lane(), Lane::Bulk, "epochs of work ride bulk");
    }

    #[test]
    fn lane_weights_parse_and_reject_garbage() {
        assert_eq!(
            LaneWeights::parse("4,1").unwrap(),
            LaneWeights {
                interactive: 4,
                bulk: 1
            }
        );
        assert_eq!(
            LaneWeights::parse(" 2 , 3 ").unwrap(),
            LaneWeights {
                interactive: 2,
                bulk: 3
            }
        );
        assert!(LaneWeights::parse("4").is_err());
        assert!(LaneWeights::parse("x,1").is_err());
        assert!(LaneWeights::parse("0,1").is_err(), "zero starves a lane");
    }

    #[test]
    fn queue_enforces_capacity_and_fifo_order() {
        let registry = JobRegistry::new();
        let queue = JobQueue::new(2);
        let a = registry.create(spec(), "d1".into(), String::new());
        let b = registry.create(spec(), "d2".into(), String::new());
        let c = registry.create(spec(), "d3".into(), String::new());
        assert_eq!(a.id, "job-1");
        queue.try_push(a.clone()).unwrap();
        queue.try_push(b.clone()).unwrap();
        assert_eq!(queue.try_push(c).unwrap_err(), QueueFull);
        assert_eq!(queue.depth(), 2);
        let shutdown = AtomicBool::new(false);
        assert_eq!(queue.pop(&shutdown).unwrap().id, a.id);
        assert_eq!(queue.pop(&shutdown).unwrap().id, b.id);
    }

    #[test]
    fn interactive_jobs_overtake_a_bulk_backlog() {
        let registry = JobRegistry::new();
        let queue = JobQueue::new(16);
        let shutdown = AtomicBool::new(false);
        // A bulk backlog already waiting...
        let bulk: Vec<_> = (0..4)
            .map(|i| registry.create(spec(), format!("b{i}"), "batch".into()))
            .collect();
        for job in &bulk {
            queue.try_push(job.clone()).unwrap();
        }
        // ...then an interactive solve arrives late.
        let iso = registry.create(iso_spec(), "iso".into(), "human".into());
        queue.try_push(iso.clone()).unwrap();
        assert_eq!(queue.lane_depths(), (1, 4));
        // The very next dispatch is the interactive job, not the backlog.
        assert_eq!(queue.pop(&shutdown).unwrap().id, iso.id);
        assert_eq!(queue.pop(&shutdown).unwrap().id, bulk[0].id);
    }

    #[test]
    fn lane_credits_prevent_interactive_monopoly() {
        // With weights 2:1 and both lanes saturated, bulk gets every third
        // dispatch instead of starving.
        let registry = JobRegistry::new();
        let queue = JobQueue::with_weights(
            16,
            LaneWeights {
                interactive: 2,
                bulk: 1,
            },
        );
        let shutdown = AtomicBool::new(false);
        for i in 0..3 {
            queue
                .try_push(registry.create(spec(), format!("b{i}"), String::new()))
                .unwrap();
        }
        for i in 0..6 {
            queue
                .try_push(registry.create(iso_spec(), format!("i{i}"), String::new()))
                .unwrap();
        }
        let lanes: Vec<Lane> = (0..9)
            .map(|_| queue.pop(&shutdown).unwrap().lane())
            .collect();
        use Lane::{Bulk, Interactive};
        assert_eq!(
            lanes,
            vec![
                Interactive,
                Interactive,
                Bulk,
                Interactive,
                Interactive,
                Bulk,
                Interactive,
                Interactive,
                Bulk
            ]
        );
    }

    #[test]
    fn bulk_lane_round_robins_clients() {
        // Client "hog" queues a backlog before "small" submits one job;
        // "small" is served on the second bulk dispatch, not after the
        // whole backlog.
        let registry = JobRegistry::new();
        let queue = JobQueue::new(16);
        let shutdown = AtomicBool::new(false);
        let hogs: Vec<_> = (0..4)
            .map(|i| registry.create(spec(), format!("h{i}"), "hog".into()))
            .collect();
        for job in &hogs {
            queue.try_push(job.clone()).unwrap();
        }
        let small = registry.create(spec(), "s0".into(), "small".into());
        queue.try_push(small.clone()).unwrap();
        let order: Vec<String> = (0..5)
            .map(|_| queue.pop(&shutdown).unwrap().id.clone())
            .collect();
        assert_eq!(order[0], hogs[0].id, "hog was first in line");
        assert_eq!(
            order[1], small.id,
            "small client is not stuck behind the backlog"
        );
        assert_eq!(
            &order[2..],
            &[hogs[1].id.clone(), hogs[2].id.clone(), hogs[3].id.clone()]
        );
    }

    #[test]
    fn finish_seq_orders_completions() {
        let registry = JobRegistry::new();
        let a = registry.create(spec(), "fa".into(), String::new());
        let b = registry.create(spec(), "fb".into(), String::new());
        assert_eq!(a.finish_seq(), None);
        b.set_status(JobStatus::Done, None, None);
        a.set_status(JobStatus::Done, None, None);
        let (sa, sb) = (a.finish_seq().unwrap(), b.finish_seq().unwrap());
        assert!(sb < sa, "b finished first: {sb} vs {sa}");
        // Idempotent: re-setting a terminal status keeps the first seq.
        a.set_status(JobStatus::Done, None, None);
        assert_eq!(a.finish_seq(), Some(sa));
    }

    #[test]
    fn pop_returns_none_on_shutdown() {
        let queue = JobQueue::new(1);
        let shutdown = AtomicBool::new(true);
        assert!(queue.pop(&shutdown).is_none());
    }

    #[test]
    fn wait_terminal_sees_completion_from_another_thread() {
        let registry = JobRegistry::new();
        let job = registry.create(spec(), "d".into(), String::new());
        let waiter = {
            let job = job.clone();
            std::thread::spawn(move || {
                let shutdown = AtomicBool::new(false);
                job.wait_terminal(&shutdown)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        job.set_status(JobStatus::Done, Some(Arc::new("body".into())), None);
        assert_eq!(waiter.join().unwrap(), JobStatus::Done);
        assert_eq!(
            job.state
                .lock()
                .unwrap()
                .result
                .as_deref()
                .map(String::as_str),
            Some("body")
        );
    }

    #[test]
    fn event_cap_drops_but_counts() {
        let registry = JobRegistry::new();
        let job = registry.create(spec(), "d".into(), String::new());
        for i in 0..(EVENT_CAP + 10) {
            job.push_event(format!("e{i}"), false);
        }
        job.push_event("terminal".into(), true);
        let state = job.state.lock().unwrap();
        assert_eq!(state.events.len(), EVENT_CAP + 1);
        assert_eq!(state.dropped_events, 10);
        assert_eq!(state.events.last().unwrap().as_str(), "terminal");
    }

    /// Regression guard for long retrain jobs: even when the per-epoch
    /// stream blows past [`EVENT_CAP`], the forced terminal marker is
    /// still appended last, so `/v1/jobs/{id}/events` always ends with a
    /// definite `end` event (the follower loop keys off it).
    #[test]
    fn long_retrain_event_stream_past_cap_keeps_terminal_event() {
        let registry = JobRegistry::new();
        let job = registry.create(
            JobSpec::Retrain(RetrainSpec::toy_default()),
            "r".into(),
            String::new(),
        );
        for epoch in 0..(EVENT_CAP + 7) {
            job.push_event(
                format!("{{\"event\":\"epoch_start\",\"epoch\":{epoch}}}"),
                false,
            );
        }
        job.push_event("{\"event\":\"end\",\"status\":\"done\"}".into(), true);
        job.set_status(JobStatus::Done, Some(Arc::new("{}".into())), None);
        let state = job.state.lock().unwrap();
        assert_eq!(state.events.len(), EVENT_CAP + 1);
        assert_eq!(state.dropped_events, 7);
        assert!(
            state.events.last().unwrap().contains("\"end\""),
            "terminal marker must survive the cap"
        );
    }

    #[test]
    fn digest_index_dedups_active_jobs_and_retires_terminal_ones() {
        let registry = JobRegistry::new();
        let job = registry.create(spec(), "dig".into(), String::new());
        assert!(Arc::ptr_eq(
            &registry.active_for_digest("dig").unwrap(),
            &job
        ));
        job.set_status(JobStatus::Done, None, None);
        assert!(registry.active_for_digest("dig").is_none());
        registry.retire(&job); // idempotent after lazy removal
        assert!(registry.get(&job.id).is_some(), "history is retained");
    }
}
