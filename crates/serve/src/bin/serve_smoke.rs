//! End-to-end smoke test used by CI: boots the service in-process on an
//! ephemeral port, drives it with raw `TcpStream` clients (no HTTP client
//! dependency), and asserts the cache-hit response is byte-identical to
//! the cold run. Exits non-zero on any failure.

use dante_serve::server::{start, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One raw HTTP exchange; returns `(status, headers, body)`.
fn exchange(addr: SocketAddr, request: &str) -> (u16, Vec<String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set timeout");
    stream.write_all(request.as_bytes()).expect("write request");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end().to_owned();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
        headers.push(line);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, body)
}

fn post(addr: SocketAddr, path: &str, payload: &str) -> (u16, Vec<String>, Vec<u8>) {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: smoke\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    );
    exchange(addr, &request)
}

fn post_sweep(addr: SocketAddr, payload: &str) -> (u16, Vec<String>, Vec<u8>) {
    post(addr, "/v1/sweep", payload)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<String>, Vec<u8>) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n"),
    )
}

fn header<'a>(headers: &'a [String], name: &str) -> Option<&'a str> {
    headers.iter().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

fn main() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("boot server");
    let addr = handle.addr();
    println!("smoke: server on {addr}");

    let payload = r#"{"network": "toy", "trials": 3, "voltages_mv": [380, 440, 500]}"#;

    let (status, headers, cold) = post_sweep(addr, payload);
    assert_eq!(
        status,
        200,
        "cold sweep: {}",
        String::from_utf8_lossy(&cold)
    );
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("miss"));
    println!("smoke: cold sweep ok ({} bytes)", cold.len());

    let (status, headers, warm) = post_sweep(addr, payload);
    assert_eq!(
        status,
        200,
        "warm sweep: {}",
        String::from_utf8_lossy(&warm)
    );
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("hit"));
    assert_eq!(
        cold, warm,
        "cache hit must be byte-identical to the cold run"
    );
    println!("smoke: cache hit byte-identical");

    // A supply-configured sweep exercises the energy-aware path end to end.
    let boosted = r#"{"network": "toy", "trials": 2, "voltages_mv": [400, 440], "supply": {"kind": "boosted", "level": 3}}"#;
    let (status, _, body) = post_sweep(addr, boosted);
    assert_eq!(
        status,
        200,
        "boosted sweep: {}",
        String::from_utf8_lossy(&body)
    );
    let text = String::from_utf8(body).expect("sweep body is UTF-8");
    for needle in ["dynamic total [J]", "sram rail [V]", "supply=boosted(3)"] {
        assert!(text.contains(needle), "boosted sweep missing {needle}");
    }
    println!("smoke: boosted energy sweep ok");

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");
    println!("smoke: healthz ok");

    let iso_path = "/v1/iso-accuracy?floor=0.9&trials=2&start_mv=380&stop_mv=560&step_mv=60";
    let (status, headers, cold_iso) = get(addr, iso_path);
    assert_eq!(
        status,
        200,
        "iso solve: {}",
        String::from_utf8_lossy(&cold_iso)
    );
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("miss"));
    let (status, headers, warm_iso) = get(addr, iso_path);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("hit"));
    assert_eq!(
        cold_iso, warm_iso,
        "iso-accuracy cache hit must be byte-identical"
    );
    let iso_text = String::from_utf8(cold_iso).expect("iso body is UTF-8");
    for needle in [
        "\"single\"",
        "\"boosted\"",
        "\"dual\"",
        "boosted_over_single",
    ] {
        assert!(iso_text.contains(needle), "iso body missing {needle}");
    }
    println!("smoke: iso-accuracy solve + cache hit ok");

    // Fleet sweep under a non-default (correlated-burst) fault model: cold
    // run, then a cache hit that must be byte-identical to the cold bytes.
    let fleet_payload = r#"{"dies": 64, "array_bits": 65536, "grid": {"start_mv": 520, "stop_mv": 620, "step_mv": 20}, "fault_model": {"kind": "correlated_burst"}}"#;
    let (status, headers, cold_fleet) = post(addr, "/v1/fleet", fleet_payload);
    assert_eq!(
        status,
        200,
        "cold fleet: {}",
        String::from_utf8_lossy(&cold_fleet)
    );
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("miss"));
    let (status, headers, warm_fleet) = post(addr, "/v1/fleet", fleet_payload);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("hit"));
    assert_eq!(
        cold_fleet, warm_fleet,
        "fleet cache hit must be byte-identical to the cold run"
    );
    let fleet_text = String::from_utf8(cold_fleet).expect("fleet body is UTF-8");
    for needle in ["\"id\": \"fleet\"", "vmin quantile [V]", "fault=burst.v1("] {
        assert!(fleet_text.contains(needle), "fleet body missing {needle}");
    }
    println!("smoke: fleet sweep + byte-identical cache hit ok");

    // Retrain leg: a short 2-epoch fault-aware fine-tune of the toy
    // network. The hardened V_min must not exceed the baseline's (the
    // single-supply gap is non-negative), and the cache hit must be
    // byte-identical to the cold run.
    let retrain_payload = r#"{"network": "toy", "target_mv": 380, "epochs": 2, "trials": 2, "voltages_mv": [360, 420, 480, 540], "seed": 21}"#;
    let (status, headers, cold_retrain) = post(addr, "/v1/retrain", retrain_payload);
    assert_eq!(
        status,
        200,
        "cold retrain: {}",
        String::from_utf8_lossy(&cold_retrain)
    );
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("miss"));
    let (status, headers, warm_retrain) = post(addr, "/v1/retrain", retrain_payload);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("hit"));
    assert_eq!(
        cold_retrain, warm_retrain,
        "retrain cache hit must be byte-identical to the cold run"
    );
    let retrain_text = String::from_utf8(cold_retrain).expect("retrain body is UTF-8");
    for needle in ["\"weight_digest\"", "dante.retrain.v1;", "\"vmin_gap_mv\""] {
        assert!(
            retrain_text.contains(needle),
            "retrain body missing {needle}"
        );
    }
    let single_gap = retrain_text
        .split("\"vmin_gap_mv\":")
        .nth(1)
        .and_then(|tail| tail.split("\"single\":").nth(1))
        .and_then(|tail| tail.split(['}', ',']).next())
        .and_then(|token| token.trim().parse::<f64>().ok())
        .expect("single-supply V_min gap present and numeric");
    assert!(
        single_gap >= 0.0,
        "hardened V_min must not exceed baseline: gap = {single_gap} mV"
    );
    println!("smoke: retrain hardened V_min gap {single_gap} mV, cache hit byte-identical");

    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("metrics is UTF-8");
    for needle in [
        "dante_serve_requests_total",
        "dante_serve_cache_hits_total 4",
        // Five worker jobs: cold sweep, boosted sweep, iso solve, fleet,
        // retrain.
        "dante_serve_jobs_completed_total 5",
        "dante_serve_energy_sweep_jobs_total 1",
        "dante_serve_iso_accuracy_solves_total 1",
        "dante_serve_iso_accuracy_cache_hits_total 1",
        "dante_serve_fleet_jobs_total 1",
        "dante_serve_fleet_cache_hits_total 1",
        "dante_serve_retrain_jobs_total 1",
        "dante_serve_retrain_cache_hits_total 1",
        "dante_serve_jobs_rejected_total 0",
        "dante_serve_queue_depth 0",
    ] {
        assert!(text.contains(needle), "metrics missing {needle}:\n{text}");
    }
    println!("smoke: metrics ok");

    handle.shutdown();
    assert!(handle.join(), "server must drain cleanly");
    println!("smoke: clean shutdown ok");

    sharded_leg(payload, &cold);
    restart_recovery_leg();
    println!("smoke: all checks passed");
}

/// Sharded leg: two plain backends plus a coordinator fronting them. The
/// coordinated sweep must be byte-identical to `reference` — the bytes the
/// single-process server served for the same payload above.
fn sharded_leg(payload: &str, reference: &[u8]) {
    let backend_a = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("boot backend a");
    let backend_b = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("boot backend b");
    let coordinator = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        peers: vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        ..ServerConfig::default()
    })
    .expect("boot coordinator");
    let addr = coordinator.addr();

    let (status, headers, sharded) = post_sweep(addr, payload);
    assert_eq!(
        status,
        200,
        "sharded sweep: {}",
        String::from_utf8_lossy(&sharded)
    );
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("miss"));
    assert_eq!(
        sharded, reference,
        "sharded sweep must be byte-identical to the single-process run"
    );

    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("metrics is UTF-8");
    for needle in [
        // One leg per peer, no local fallback, nothing left in flight.
        "dante_serve_shard_requests_total 2",
        "dante_serve_shard_fallbacks_total 0",
        "dante_serve_shard_in_flight 0",
    ] {
        assert!(text.contains(needle), "metrics missing {needle}:\n{text}");
    }

    coordinator.shutdown();
    assert!(coordinator.join(), "coordinator must drain cleanly");
    backend_a.shutdown();
    assert!(backend_a.join(), "backend a must drain cleanly");
    backend_b.shutdown();
    assert!(backend_b.join(), "backend b must drain cleanly");
    println!("smoke: sharded sweep byte-identical across 2 backends");
}

/// Restart-recovery leg: a sweep served cold by one process is served as a
/// byte-identical cache hit by a fresh process sharing the same data dir.
fn restart_recovery_leg() {
    let dir = std::env::temp_dir().join(format!("dante-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let payload = r#"{"network": "toy", "trials": 2, "voltages_mv": [420, 480], "seed": 17}"#;

    let first = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("boot first server");
    let (status, headers, cold) = post_sweep(first.addr(), payload);
    assert_eq!(
        status,
        200,
        "cold sweep: {}",
        String::from_utf8_lossy(&cold)
    );
    assert_eq!(header(&headers, "X-Dante-Cache"), Some("miss"));
    first.shutdown();
    assert!(first.join(), "first server must drain cleanly");

    let second = start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("boot second server");
    let (status, headers, warm) = post_sweep(second.addr(), payload);
    assert_eq!(
        status,
        200,
        "warm sweep: {}",
        String::from_utf8_lossy(&warm)
    );
    assert_eq!(
        header(&headers, "X-Dante-Cache"),
        Some("hit"),
        "restarted server must hit the persisted cache"
    );
    assert_eq!(
        cold, warm,
        "persisted cache hit must be byte-identical across the restart"
    );
    second.shutdown();
    assert!(second.join(), "second server must drain cleanly");
    let _ = std::fs::remove_dir_all(&dir);
    println!("smoke: disk cache byte-identical across restart");
}
