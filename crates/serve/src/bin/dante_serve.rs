//! The `dante-serve` binary: boots the sweep service from environment
//! configuration and runs until the process is killed.
//!
//! Environment:
//!
//! * `DANTE_SERVE_ADDR` — bind address (default `127.0.0.1:7878`)
//! * `DANTE_SERVE_WORKERS` — sweep worker threads (default 2)
//! * `DANTE_SERVE_QUEUE` — bounded queue depth (default 32)
//! * `DANTE_SERVE_CACHE` — result cache capacity (default 64; 0 disables)
//! * `DANTE_SERVE_MAX_BODY` — request body cap in bytes (default 65536)
//! * `DANTE_THREADS` — per-sweep trial parallelism (validated at startup)

use dante_serve::server::{start, ServerConfig};

fn main() {
    // Validate DANTE_THREADS up front: a mistyped value should fail boot,
    // not surface as a panic inside the first sweep.
    if let Err(why) = dante_sim::TrialEngine::try_from_env() {
        eprintln!("dante-serve: {why}");
        std::process::exit(2);
    }
    let config = match ServerConfig::from_env() {
        Ok(config) => config,
        Err(why) => {
            eprintln!("dante-serve: {why}");
            std::process::exit(2);
        }
    };
    let workers = config.workers;
    let handle = match start(config) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("dante-serve: bind failed: {error}");
            std::process::exit(1);
        }
    };
    println!(
        "dante-serve listening on http://{} ({workers} workers)",
        handle.addr()
    );
    // No signal handling without external crates: serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
