//! Content-addressed result cache with LRU eviction.
//!
//! Keys are digests of a sweep's canonical spec string
//! ([`dante::sweep::SweepSpec::canonical_string`]); values are the exact
//! response bodies served. Because the trial engine is counter-based
//! deterministic, a cache hit is byte-identical to re-running the sweep —
//! the cache changes latency, never results.

use std::collections::HashMap;
use std::sync::Mutex;

/// 128-bit FNV-1a over the canonical spec bytes, rendered as 32 hex chars.
///
/// Two independent 64-bit FNV streams with distinct offset bases: not
/// cryptographic, but the keyspace is trusted (specs come through
/// validation) and 128 bits make accidental collisions negligible.
#[must_use]
pub fn digest(canonical: &str) -> String {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut a: u64 = 0xCBF2_9CE4_8422_2325;
    let mut b: u64 = 0x6C62_272E_07BB_0142;
    for &byte in canonical.as_bytes() {
        a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
        b = (b ^ u64::from(byte ^ 0x5A)).wrapping_mul(PRIME);
    }
    format!("{a:016x}{b:016x}")
}

#[derive(Debug)]
struct Entry {
    body: std::sync::Arc<String>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A bounded LRU cache of rendered response bodies, keyed by digest.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<std::sync::Arc<String>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let body = entry.body.clone();
                inner.hits += 1;
                Some(body)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting the least-recently-used entries while
    /// over capacity.
    pub fn insert(&self, key: String, body: std::sync::Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                body,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            // O(n) eviction scan: capacities are small (tens to hundreds)
            // and inserts happen once per *simulated sweep*, so a linked
            // list would be complexity without payoff.
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.map.remove(&oldest);
        }
    }

    /// `(hits, misses)` counters since startup.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("cache lock poisoned");
        (inner.hits, inner.misses)
    }

    /// Entries currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn digest_is_stable_and_collision_averse() {
        let d = digest("dante.sweep.v1;seed=1");
        assert_eq!(d.len(), 32);
        assert_eq!(d, digest("dante.sweep.v1;seed=1"), "deterministic");
        assert_ne!(d, digest("dante.sweep.v1;seed=2"));
        assert_ne!(digest(""), digest("\u{0000}"));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let cache = ResultCache::new(2);
        cache.insert("a".into(), Arc::new("A".into()));
        cache.insert("b".into(), Arc::new("B".into()));
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.get("a").unwrap().as_str(), "A");
        cache.insert("c".into(), Arc::new("C".into()));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "b was evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (3, 1));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert("a".into(), Arc::new("A".into()));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }
}
