//! Persistent content-addressed result store: append-only CRC-checked
//! segments on disk, fronting the in-memory LRU.
//!
//! The disk layer makes the cache survive restarts: because results are
//! deterministic functions of their canonical spec (see [`crate::cache`]),
//! a body read back from disk is byte-identical to the cold run that wrote
//! it, so a freshly booted server serves the same bytes the previous
//! process did.
//!
//! # On-disk format
//!
//! A store directory holds numbered segment files `seg-<n>.log`, each an
//! append-only sequence of records:
//!
//! ```text
//! [magic u32][key_len u32][body_len u32][crc32 u32]  -- 16-byte header, LE
//! [key bytes][body bytes]
//! ```
//!
//! The CRC covers `key || body`. There is no in-place mutation and no
//! separate index file: the in-memory index is rebuilt by scanning the
//! segments in id order at startup (last record for a key wins). A crash
//! mid-append leaves a truncated or CRC-failing tail record; recovery
//! truncates the segment at the last valid record and carries on — losing
//! at most the record being written, never an earlier one.
//!
//! Re-inserting an existing key appends a superseding record and marks the
//! old one dead. When dead bytes outweigh live bytes, [`DiskStore::insert`]
//! compacts opportunistically: live records are rewritten into fresh
//! segments and the old files deleted, preserving every live digest.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::cache::ResultCache;

/// Record-header magic: `"DSR1"` little-endian.
const MAGIC: u32 = 0x3152_5344;
/// Fixed record-header size (magic, key length, body length, CRC).
const HEADER_BYTES: usize = 16;
/// Segment rotation threshold: a new record opens a fresh segment once the
/// active one holds this many bytes. Small enough that compaction rewrites
/// stay incremental, large enough that a segment holds many sweep records.
const MAX_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;
/// Keys are digests (32 hex chars today); cap generously so a scan never
/// mistakes a corrupt length field for a gigantic allocation.
const MAX_KEY_BYTES: u32 = 1024;
/// Bodies are rendered JSON records; same defensive cap (64 MiB).
const MAX_BODY_BYTES: u32 = 64 * 1024 * 1024;

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`), table-driven.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[usize::from((crc as u8) ^ b)] ^ (crc >> 8);
    }
    !crc
}

/// Where a live record's body lives.
#[derive(Debug, Clone, Copy)]
struct RecordLoc {
    segment: u64,
    /// Byte offset of the body within the segment file.
    body_offset: u64,
    body_len: u32,
}

#[derive(Debug)]
struct StoreInner {
    /// key -> newest record holding it.
    index: HashMap<String, RecordLoc>,
    /// Ids of all segment files on disk, ascending.
    segments: Vec<u64>,
    /// Append handle for the newest segment.
    active: File,
    active_id: u64,
    active_bytes: u64,
    /// Bytes consumed by superseded records (header + key + body).
    dead_bytes: u64,
    dead_records: u64,
    /// Total bytes across all segment files.
    total_bytes: u64,
    /// Lifetime count of compactions (observable for tests/metrics).
    compactions: u64,
}

/// Point-in-time store gauges for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Segment files on disk.
    pub segments: u64,
    /// Total bytes across segment files.
    pub bytes: u64,
    /// Live (addressable) records.
    pub records: u64,
    /// Superseded records awaiting compaction.
    pub dead_records: u64,
    /// Compaction passes performed since open.
    pub compactions: u64,
}

/// The append-only segment store. All operations take the store lock; the
/// workload is one insert per *cold simulated sweep*, so contention is
/// negligible next to the compute being cached.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    max_segment_bytes: u64,
    inner: Mutex<StoreInner>,
}

impl DiskStore {
    /// Opens (or creates) a store at `dir`, rebuilding the index by
    /// scanning every segment. Torn or corrupt tails are truncated away.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or a segment cannot be
    /// read/repaired.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        Self::open_with_segment_cap(dir, MAX_SEGMENT_BYTES)
    }

    /// [`Self::open`] with a custom rotation threshold (tests use tiny
    /// segments to exercise rotation and compaction cheaply).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::open`].
    pub fn open_with_segment_cap(dir: &Path, max_segment_bytes: u64) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut ids: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name();
                let name = name.to_str()?;
                let id = name.strip_prefix("seg-")?.strip_suffix(".log")?;
                id.parse::<u64>().ok()
            })
            .collect();
        ids.sort_unstable();

        let mut index: HashMap<String, RecordLoc> = HashMap::new();
        let mut dead_bytes = 0u64;
        let mut dead_records = 0u64;
        let mut total_bytes = 0u64;
        for &id in &ids {
            let path = segment_path(dir, id);
            let valid = scan_segment(&path, id, &mut index, &mut dead_bytes, &mut dead_records)?;
            // Repair: drop any torn/corrupt tail so the segment ends on a
            // record boundary and future appends can't interleave with
            // garbage.
            let on_disk = fs::metadata(&path)?.len();
            if on_disk != valid {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid)?;
            }
            total_bytes += valid;
        }

        let active_id = ids.last().copied().unwrap_or(0);
        if ids.is_empty() {
            ids.push(active_id);
        }
        let active_path = segment_path(dir, active_id);
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;
        let active_bytes = active.metadata()?.len();

        Ok(Self {
            dir: dir.to_path_buf(),
            max_segment_bytes,
            inner: Mutex::new(StoreInner {
                index,
                segments: ids,
                active,
                active_id,
                active_bytes,
                dead_bytes,
                dead_records,
                total_bytes,
                compactions: 0,
            }),
        })
    }

    /// Reads the body stored under `key`, if any.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let loc = {
            let inner = self.inner.lock().expect("store lock poisoned");
            *inner.index.get(key)?
        };
        // Reads go straight to the segment file outside the lock: records
        // are immutable once written, and compaction (which could unlink
        // the file) retakes the lock before touching anything — a read
        // racing it either wins the open or retries via the fresh index.
        let mut f = File::open(segment_path(&self.dir, loc.segment)).ok()?;
        f.seek(SeekFrom::Start(loc.body_offset)).ok()?;
        let mut body = vec![0u8; loc.body_len as usize];
        f.read_exact(&mut body).ok()?;
        Some(body)
    }

    /// Appends `body` under `key`, superseding any previous record, and
    /// compacts if dead records now outweigh live ones.
    ///
    /// # Errors
    ///
    /// Propagates segment I/O failures (the in-memory index is only
    /// updated after a successful append + flush).
    pub fn insert(&self, key: &str, body: &[u8]) -> std::io::Result<()> {
        assert!(key.len() <= MAX_KEY_BYTES as usize, "oversized store key");
        assert!(
            body.len() <= MAX_BODY_BYTES as usize,
            "oversized store body"
        );
        let record_len = (HEADER_BYTES + key.len() + body.len()) as u64;
        let mut inner = self.inner.lock().expect("store lock poisoned");

        // Rotate before the write so a single record never straddles the
        // cap by more than its own size.
        if inner.active_bytes > 0 && inner.active_bytes + record_len > self.max_segment_bytes {
            let next_id = inner.active_id + 1;
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, next_id))?;
            inner.active = f;
            inner.active_id = next_id;
            inner.active_bytes = 0;
            inner.segments.push(next_id);
        }

        let mut record = Vec::with_capacity(record_len as usize);
        record.extend_from_slice(&MAGIC.to_le_bytes());
        record.extend_from_slice(&(key.len() as u32).to_le_bytes());
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        let mut crc_input = Vec::with_capacity(key.len() + body.len());
        crc_input.extend_from_slice(key.as_bytes());
        crc_input.extend_from_slice(body);
        record.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        record.extend_from_slice(&crc_input);
        inner.active.write_all(&record)?;
        inner.active.flush()?;

        let loc = RecordLoc {
            segment: inner.active_id,
            body_offset: inner.active_bytes + (HEADER_BYTES + key.len()) as u64,
            body_len: body.len() as u32,
        };
        inner.active_bytes += record_len;
        inner.total_bytes += record_len;
        if let Some(old) = inner.index.insert(key.to_owned(), loc) {
            inner.dead_records += 1;
            inner.dead_bytes += (HEADER_BYTES + key.len()) as u64 + u64::from(old.body_len);
        }

        // Opportunistic compaction: amortized against the insert that
        // crossed the threshold, so no background thread is needed and the
        // store is always compact at rest.
        if inner.dead_records > 0 && inner.dead_bytes * 2 > inner.total_bytes {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Rewrites live records into fresh segments and deletes the old
    /// files. Exposed for tests; [`Self::insert`] triggers it
    /// automatically when dead bytes outweigh live bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on failure the old segments are left
    /// untouched.
    pub fn compact(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock poisoned");
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut StoreInner) -> std::io::Result<()> {
        // Collect live payloads in deterministic (key-sorted) order.
        let mut keys: Vec<String> = inner.index.keys().cloned().collect();
        keys.sort_unstable();
        let mut live: Vec<(String, Vec<u8>)> = Vec::with_capacity(keys.len());
        for key in keys {
            let loc = inner.index[&key];
            let mut f = File::open(segment_path(&self.dir, loc.segment))?;
            f.seek(SeekFrom::Start(loc.body_offset))?;
            let mut body = vec![0u8; loc.body_len as usize];
            f.read_exact(&mut body)?;
            live.push((key, body));
        }

        let old_segments = std::mem::take(&mut inner.segments);
        let new_base = old_segments.last().copied().unwrap_or(0) + 1;
        inner.index.clear();
        inner.segments = vec![new_base];
        inner.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, new_base))?;
        inner.active_id = new_base;
        inner.active_bytes = 0;
        inner.dead_bytes = 0;
        inner.dead_records = 0;
        inner.total_bytes = 0;
        inner.compactions += 1;
        for &id in &old_segments {
            let _ = fs::remove_file(segment_path(&self.dir, id));
        }
        drop(old_segments);
        for (key, body) in live {
            // Re-insert through the normal path: rotation and accounting
            // stay consistent. Dead counters stay zero because the index
            // was cleared.
            self.insert_locked(inner, &key, &body)?;
        }
        Ok(())
    }

    /// The append half of [`Self::insert`] for a caller already holding
    /// the lock (compaction).
    fn insert_locked(&self, inner: &mut StoreInner, key: &str, body: &[u8]) -> std::io::Result<()> {
        let record_len = (HEADER_BYTES + key.len() + body.len()) as u64;
        if inner.active_bytes > 0 && inner.active_bytes + record_len > self.max_segment_bytes {
            let next_id = inner.active_id + 1;
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, next_id))?;
            inner.active = f;
            inner.active_id = next_id;
            inner.active_bytes = 0;
            inner.segments.push(next_id);
        }
        let mut record = Vec::with_capacity(record_len as usize);
        record.extend_from_slice(&MAGIC.to_le_bytes());
        record.extend_from_slice(&(key.len() as u32).to_le_bytes());
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        let mut crc_input = Vec::with_capacity(key.len() + body.len());
        crc_input.extend_from_slice(key.as_bytes());
        crc_input.extend_from_slice(body);
        record.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        record.extend_from_slice(&crc_input);
        inner.active.write_all(&record)?;
        inner.active.flush()?;
        let loc = RecordLoc {
            segment: inner.active_id,
            body_offset: inner.active_bytes + (HEADER_BYTES + key.len()) as u64,
            body_len: body.len() as u32,
        };
        inner.active_bytes += record_len;
        inner.total_bytes += record_len;
        if let Some(old) = inner.index.insert(key.to_owned(), loc) {
            inner.dead_records += 1;
            inner.dead_bytes += (HEADER_BYTES + key.len()) as u64 + u64::from(old.body_len);
        }
        Ok(())
    }

    /// Current store gauges.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock poisoned");
        StoreStats {
            segments: inner.segments.len() as u64,
            bytes: inner.total_bytes,
            records: inner.index.len() as u64,
            dead_records: inner.dead_records,
            compactions: inner.compactions,
        }
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id}.log"))
}

/// Scans one segment, folding its valid records into `index` (later
/// records supersede earlier ones). Returns the byte offset of the first
/// invalid position — the length the file should be truncated to.
fn scan_segment(
    path: &Path,
    segment: u64,
    index: &mut HashMap<String, RecordLoc>,
    dead_bytes: &mut u64,
    dead_records: &mut u64,
) -> std::io::Result<u64> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut offset = 0usize;
    // `data.get` bounds-checks every slice: a clean EOF, a torn header, or
    // a torn payload all end the scan at the last fully-valid record.
    while let Some(header) = data.get(offset..offset + HEADER_BYTES) {
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("sliced"));
        let key_len = u32::from_le_bytes(header[4..8].try_into().expect("sliced"));
        let body_len = u32::from_le_bytes(header[8..12].try_into().expect("sliced"));
        let crc = u32::from_le_bytes(header[12..16].try_into().expect("sliced"));
        if magic != MAGIC || key_len > MAX_KEY_BYTES || body_len > MAX_BODY_BYTES {
            break; // corrupt header
        }
        let payload_start = offset + HEADER_BYTES;
        let payload_len = key_len as usize + body_len as usize;
        let Some(payload) = data.get(payload_start..payload_start + payload_len) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // bit rot or torn write detected by checksum
        }
        let Ok(key) = std::str::from_utf8(&payload[..key_len as usize]) else {
            break;
        };
        let loc = RecordLoc {
            segment,
            body_offset: (payload_start + key_len as usize) as u64,
            body_len,
        };
        if let Some(old) = index.insert(key.to_owned(), loc) {
            *dead_records += 1;
            *dead_bytes += (HEADER_BYTES + key.len()) as u64 + u64::from(old.body_len);
        }
        offset = payload_start + payload_len;
    }
    Ok(offset as u64)
}

/// The in-memory LRU fronting an optional [`DiskStore`]: the cache layer
/// the server actually talks to.
///
/// * `get` — LRU first; on miss, the disk store (promoting hits back into
///   the LRU so hot digests stay memory-resident).
/// * `insert` — writes through to both tiers.
///
/// Hit/miss accounting lives here (a disk hit is a cache hit), so
/// `/metrics` reports the fleet-visible ratio, not per-tier internals.
#[derive(Debug)]
pub struct TieredCache {
    lru: ResultCache,
    disk: Option<DiskStore>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TieredCache {
    /// A tiered cache with the given LRU capacity and optional disk tier.
    #[must_use]
    pub fn new(capacity: usize, disk: Option<DiskStore>) -> Self {
        Self {
            lru: ResultCache::new(capacity),
            disk,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key` across both tiers.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<std::sync::Arc<String>> {
        if let Some(body) = self.lru.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(body);
        }
        if let Some(disk) = &self.disk {
            if let Some(bytes) = disk.get(key) {
                if let Ok(text) = String::from_utf8(bytes) {
                    let body = std::sync::Arc::new(text);
                    self.lru.insert(key.to_owned(), body.clone());
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(body);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Writes `body` through both tiers. Disk failures are reported on
    /// stderr but never fail the request: the result was computed and can
    /// be served; only its persistence is degraded.
    pub fn insert(&self, key: String, body: std::sync::Arc<String>) {
        if let Some(disk) = &self.disk {
            if let Err(e) = disk.insert(&key, body.as_bytes()) {
                eprintln!("dante-serve: disk cache write failed for {key}: {e}");
            }
        }
        self.lru.insert(key, body);
    }

    /// `(hits, misses)` across both tiers since startup.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries resident in the memory tier.
    #[must_use]
    pub fn memory_len(&self) -> usize {
        self.lru.len()
    }

    /// Disk-tier gauges (zeroes when no disk tier is configured).
    #[must_use]
    pub fn disk_stats(&self) -> StoreStats {
        self.disk.as_ref().map(DiskStore::stats).unwrap_or_default()
    }

    /// Whether a disk tier is configured.
    #[must_use]
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A fresh per-test directory under the system temp dir (std-only; no
    /// tempfile crate). Unique per process + per call.
    fn scratch_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("dante-store-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trips_and_survives_reopen() {
        let dir = scratch_dir("reopen");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.insert("k1", b"hello").unwrap();
            store.insert("k2", b"world").unwrap();
            assert_eq!(store.get("k1").unwrap(), b"hello");
            assert_eq!(store.stats().records, 2);
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.get("k1").unwrap(), b"hello");
        assert_eq!(store.get("k2").unwrap(), b"world");
        assert!(store.get("k3").is_none());
        assert_eq!(store.stats().records, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_record_is_discarded_on_reopen() {
        let dir = scratch_dir("torn");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.insert("keep", b"intact-body").unwrap();
            store.insert("torn", b"this-record-gets-cut").unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the segment tail.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(
            store.get("keep").unwrap(),
            b"intact-body",
            "earlier record intact"
        );
        assert!(store.get("torn").is_none(), "torn tail dropped");
        assert_eq!(store.stats().records, 1);
        // The repair truncated the file to the valid prefix, so appends
        // continue cleanly.
        store.insert("torn", b"rewritten").unwrap();
        assert_eq!(store.get("torn").unwrap(), b"rewritten");
        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.get("torn").unwrap(), b"rewritten");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_corruption_is_detected_and_later_records_dropped() {
        let dir = scratch_dir("crc");
        {
            let store = DiskStore::open(&dir).unwrap();
            store.insert("first", b"aaaa").unwrap();
            store.insert("second", b"bbbb").unwrap();
        }
        // Flip one payload bit inside the *first* record's body.
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let body_offset = HEADER_BYTES + "first".len();
        data[body_offset] ^= 0x01;
        fs::write(&seg, &data).unwrap();

        let store = DiskStore::open(&dir).unwrap();
        // The scan cannot trust anything at or after the corruption: both
        // records are gone, and the segment was truncated to offset 0.
        assert!(
            store.get("first").is_none(),
            "corrupt record rejected by CRC"
        );
        assert!(
            store.get("second").is_none(),
            "records after corruption are unreachable"
        );
        assert_eq!(store.stats().records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn superseding_inserts_trigger_compaction_preserving_digests() {
        let dir = scratch_dir("compact");
        let store = DiskStore::open_with_segment_cap(&dir, 256).unwrap();
        for i in 0..8 {
            store
                .insert(&format!("key-{i}"), format!("body-{i}").as_bytes())
                .unwrap();
        }
        // Supersede half the keys repeatedly; dead bytes eventually
        // outweigh live bytes and compaction fires on its own.
        for round in 0..6 {
            for i in 0..4 {
                store
                    .insert(&format!("key-{i}"), format!("body-{i}-r{round}").as_bytes())
                    .unwrap();
            }
        }
        let stats = store.stats();
        assert!(stats.compactions >= 1, "auto-compaction fired: {stats:?}");
        assert!(
            stats.dead_records * 2 <= stats.records + stats.dead_records + 1,
            "compaction keeps the dead ratio bounded: {stats:?}"
        );
        // Every digest still resolves to its newest body.
        for i in 0..4 {
            assert_eq!(
                store.get(&format!("key-{i}")).unwrap(),
                format!("body-{i}-r5").as_bytes()
            );
        }
        for i in 4..8 {
            assert_eq!(
                store.get(&format!("key-{i}")).unwrap(),
                format!("body-{i}").as_bytes()
            );
        }
        // And the compacted layout survives a reopen byte-for-byte.
        drop(store);
        let reopened = DiskStore::open_with_segment_cap(&dir, 256).unwrap();
        for i in 0..4 {
            assert_eq!(
                reopened.get(&format!("key-{i}")).unwrap(),
                format!("body-{i}-r5").as_bytes()
            );
        }
        assert_eq!(reopened.stats().records, 8);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_compact_preserves_all_records_across_segments() {
        let dir = scratch_dir("explicit");
        let store = DiskStore::open_with_segment_cap(&dir, 128).unwrap();
        let mut expected = Vec::new();
        for i in 0..10 {
            let key = format!("digest-{i:02}");
            let body = format!("payload-{i}-{}", "x".repeat(i));
            store.insert(&key, body.as_bytes()).unwrap();
            expected.push((key, body));
        }
        assert!(store.stats().segments > 1, "tiny cap forces rotation");
        store.compact().unwrap();
        for (key, body) in &expected {
            assert_eq!(store.get(key).unwrap(), body.as_bytes());
        }
        assert_eq!(store.stats().dead_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_cache_promotes_disk_hits_and_counts_once() {
        let dir = scratch_dir("tiered");
        let store = DiskStore::open(&dir).unwrap();
        store.insert("cold", b"persisted-body").unwrap();
        let cache = TieredCache::new(4, Some(store));
        assert_eq!(cache.memory_len(), 0);
        // Disk hit: served, promoted, counted as a hit.
        assert_eq!(cache.get("cold").unwrap().as_str(), "persisted-body");
        assert_eq!(cache.memory_len(), 1);
        // Second get is a pure LRU hit.
        assert_eq!(cache.get("cold").unwrap().as_str(), "persisted-body");
        assert!(cache.get("absent").is_none());
        assert_eq!(cache.stats(), (2, 1));
        assert_eq!(cache.disk_stats().records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiered_cache_without_disk_degrades_to_lru() {
        let cache = TieredCache::new(2, None);
        assert!(!cache.has_disk());
        cache.insert("a".into(), std::sync::Arc::new("A".into()));
        assert_eq!(cache.get("a").unwrap().as_str(), "A");
        assert!(cache.get("b").is_none());
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.disk_stats(), StoreStats::default());
    }
}
