//! The wire schema: JSON sweep requests in, `dante-bench` figure records
//! out, progress events as JSON lines.
//!
//! Decoding is strict — unknown sampling/ECC/network tokens and mistyped
//! fields are rejected with a message naming the field, so a 400 always
//! tells the client what to fix.

use dante::accuracy::{AccuracyStats, EccMode, OverlaySampling};
use dante::sweep::{NetworkSpec, SweepSpec};
use dante_bench::json::Value;
use dante_bench::record::{FigureRecord, Series};
use dante_circuit::units::Volt;
use dante_sim::TrialEvent;
use dante_sram::fault::VminFaultModel;
use std::collections::BTreeMap;

/// Decodes a `POST /v1/sweep` body into a spec.
///
/// Accepted shape (everything except `voltages_mv`/`grid` optional):
///
/// ```json
/// {
///   "seed": 17, "trials": 10,
///   "voltages_mv": [360, 400, 440],
///   "grid": {"start_mv": 360, "stop_mv": 520, "step_mv": 20},
///   "sampling": "sparse_tail" | "dense",
///   "ecc": "none" | "secded",
///   "network": "toy" | "mnist_fc"
///           | {"kind": "mnist_fc", "train_n": 1200, "test_n": 100, "epochs": 4}
/// }
/// ```
///
/// # Errors
///
/// Returns a human-readable reason (parse error with byte offset, or the
/// first field that failed decoding/validation).
pub fn decode_spec(body: &[u8]) -> Result<SweepSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = Value::parse(text).map_err(|e| e.to_string())?;
    if v.get("voltages_mv").is_some() && v.get("grid").is_some() {
        return Err("give either 'voltages_mv' or 'grid', not both".to_owned());
    }

    let u64_field = |key: &str, default: u64| -> Result<u64, String> {
        match v.get(key) {
            None => Ok(default),
            Some(Value::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= 1.8e19 => {
                Ok(*n as u64)
            }
            Some(_) => Err(format!("'{key}' must be a non-negative integer")),
        }
    };

    let voltages_mv = if let Some(grid) = v.get("grid") {
        let part = |key: &str| -> Result<u32, String> {
            grid.get(key)
                .and_then(Value::as_f64)
                .filter(|n| n.fract() == 0.0 && (0.0..=1e6).contains(n))
                .map(|n| n as u32)
                .ok_or_else(|| format!("'grid.{key}' must be a small non-negative integer"))
        };
        let (start, stop, step) = (part("start_mv")?, part("stop_mv")?, part("step_mv")?);
        if step == 0 || stop < start {
            return Err("'grid' needs step_mv >= 1 and stop_mv >= start_mv".to_owned());
        }
        (start..=stop).step_by(step as usize).collect()
    } else {
        v.get("voltages_mv")
            .ok_or_else(|| "missing 'voltages_mv' (or 'grid')".to_owned())?
            .as_array()
            .ok_or_else(|| "'voltages_mv' must be an array".to_owned())?
            .iter()
            .map(|p| {
                p.as_f64()
                    .filter(|n| n.fract() == 0.0 && (0.0..=1e6).contains(n))
                    .map(|n| n as u32)
                    .ok_or_else(|| "'voltages_mv' entries must be integers (millivolts)".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?
    };

    let sampling = match v.get("sampling").map(|s| s.as_str()) {
        None => OverlaySampling::SparseTail,
        Some(Some("sparse_tail")) => OverlaySampling::SparseTail,
        Some(Some("dense")) => OverlaySampling::Dense,
        Some(other) => {
            return Err(format!(
                "'sampling' must be \"sparse_tail\" or \"dense\", got {other:?}"
            ))
        }
    };
    let ecc = match v.get("ecc").map(|s| s.as_str()) {
        None => EccMode::None,
        Some(Some("none")) => EccMode::None,
        Some(Some("secded")) => EccMode::SecDed,
        Some(other) => {
            return Err(format!(
                "'ecc' must be \"none\" or \"secded\", got {other:?}"
            ))
        }
    };

    let network = match v.get("network") {
        None => NetworkSpec::Toy,
        Some(Value::String(s)) => match s.as_str() {
            "toy" => NetworkSpec::Toy,
            // Defaults match the repo's committed artifact cache entry.
            "mnist_fc" => NetworkSpec::MnistFc {
                train_n: 1200,
                test_n: 100,
                epochs: 4,
            },
            other => return Err(format!("unknown network {other:?}")),
        },
        Some(obj @ Value::Object(_)) => {
            let kind = obj
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| "'network.kind' must be a string".to_owned())?;
            if kind != "mnist_fc" {
                return Err(format!("unknown network kind {kind:?}"));
            }
            let size = |key: &str, default: usize| -> Result<usize, String> {
                match obj.get(key) {
                    None => Ok(default),
                    Some(Value::Number(n)) if n.fract() == 0.0 && (0.0..=1e9).contains(n) => {
                        Ok(*n as usize)
                    }
                    Some(_) => Err(format!("'network.{key}' must be a small integer")),
                }
            };
            NetworkSpec::MnistFc {
                train_n: size("train_n", 1200)?,
                test_n: size("test_n", 100)?,
                epochs: size("epochs", 4)?,
            }
        }
        Some(_) => return Err("'network' must be a string or object".to_owned()),
    };

    let spec = SweepSpec {
        seed: u64_field("seed", 0xDA17E)?,
        voltages_mv,
        trials: usize::try_from(u64_field("trials", 4)?).unwrap_or(usize::MAX),
        sampling,
        ecc,
        network,
    };
    spec.validate()?;
    Ok(spec)
}

/// Builds the response record from a spec and its per-point results.
///
/// Everything in the record is a pure function of the spec (plus the
/// deterministic results), so the rendered JSON is byte-identical across
/// cold runs, cache hits, and direct library calls.
#[must_use]
pub fn build_record(spec: &SweepSpec, results: &[(Volt, AccuracyStats)]) -> FigureRecord {
    let model = VminFaultModel::default_14nm();
    let mean = results
        .iter()
        .map(|(v, s)| (v.volts(), s.mean()))
        .collect::<Vec<_>>();
    let std = results
        .iter()
        .map(|(v, s)| (v.volts(), s.std_dev()))
        .collect::<Vec<_>>();
    let min = results
        .iter()
        .map(|(v, s)| (v.volts(), s.min()))
        .collect::<Vec<_>>();
    let ber = results
        .iter()
        .map(|(v, _)| (v.volts(), model.bit_error_rate(*v)))
        .collect::<Vec<_>>();
    FigureRecord::new(
        "sweep",
        "Monte-Carlo accuracy sweep (dante-serve)",
        "Vdd [V]",
        "accuracy / BER",
    )
    .with_series(Series::new("accuracy mean", mean))
    .with_series(Series::new("accuracy std", std))
    .with_series(Series::new("accuracy min", min))
    .with_series(Series::new("bit error rate", ber))
    .with_note(format!("spec: {}", spec.canonical_string()))
    .with_note(format!(
        "{} trials x {} points; deterministic per spec (counter-based seeds)",
        spec.trials,
        results.len()
    ))
}

/// Runs `spec` synchronously through the library path and renders the
/// response body — the reference the HTTP path must match byte-for-byte.
#[must_use]
pub fn run_spec_json(spec: &SweepSpec) -> String {
    let prep = spec.prepare();
    build_record(spec, &prep.run()).to_json_pretty()
}

/// Renders one key/value error payload, e.g. `{"error": "..."}`.
#[must_use]
pub fn error_body(message: &str) -> String {
    Value::Object(BTreeMap::from([(
        "error".to_owned(),
        Value::String(message.to_owned()),
    )]))
    .to_string_compact()
}

/// Renders a progress event line for the streaming endpoint. Returns
/// `None` for hook calls the stream intentionally elides (per-trial stage
/// timings — two extra events per trial with little client value).
#[must_use]
pub fn event_line(point: usize, mv: u32, event: &TrialEvent) -> Option<String> {
    let mut obj = BTreeMap::from([
        ("point".to_owned(), Value::Number(point as f64)),
        ("mv".to_owned(), Value::Number(f64::from(mv))),
    ]);
    match event {
        TrialEvent::BatchStart { total } => {
            obj.insert("event".to_owned(), Value::String("point_start".to_owned()));
            obj.insert("trials".to_owned(), Value::Number(*total as f64));
        }
        TrialEvent::TrialComplete { index, micros } => {
            obj.insert("event".to_owned(), Value::String("trial".to_owned()));
            obj.insert("trial".to_owned(), Value::Number(*index as f64));
            obj.insert("micros".to_owned(), Value::Number(*micros as f64));
        }
        TrialEvent::FaultBits { index, bits } => {
            obj.insert("event".to_owned(), Value::String("fault_bits".to_owned()));
            obj.insert("trial".to_owned(), Value::Number(*index as f64));
            obj.insert("bits".to_owned(), Value::Number(*bits as f64));
        }
        TrialEvent::BatchComplete { micros } => {
            obj.insert("event".to_owned(), Value::String("point_done".to_owned()));
            obj.insert("micros".to_owned(), Value::Number(*micros as f64));
        }
        TrialEvent::Stage { .. } => return None,
    }
    Some(Value::Object(obj).to_string_compact())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_full_request() {
        let body = br#"{
            "seed": 9, "trials": 3,
            "voltages_mv": [400, 440],
            "sampling": "dense", "ecc": "secded",
            "network": {"kind": "mnist_fc", "train_n": 100, "test_n": 50, "epochs": 2}
        }"#;
        let spec = decode_spec(body).unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.trials, 3);
        assert_eq!(spec.voltages_mv, vec![400, 440]);
        assert_eq!(spec.sampling, OverlaySampling::Dense);
        assert_eq!(spec.ecc, EccMode::SecDed);
        assert_eq!(
            spec.network,
            NetworkSpec::MnistFc {
                train_n: 100,
                test_n: 50,
                epochs: 2
            }
        );
    }

    #[test]
    fn defaults_fill_in_and_grid_expands() {
        let spec =
            decode_spec(br#"{"grid": {"start_mv": 360, "stop_mv": 440, "step_mv": 40}}"#).unwrap();
        assert_eq!(spec.voltages_mv, vec![360, 400, 440]);
        assert_eq!(spec.network, NetworkSpec::Toy);
        assert_eq!(spec.sampling, OverlaySampling::SparseTail);
        assert_eq!(spec.trials, 4);
    }

    #[test]
    fn rejections_name_the_field() {
        let cases: [(&[u8], &str); 9] = [
            (b"{", "parse error"),
            (br#"{"voltages_mv": "x"}"#, "voltages_mv"),
            (br#"{"voltages_mv": [400.5]}"#, "millivolts"),
            (br#"{"voltages_mv": [400], "sampling": "best"}"#, "sampling"),
            (br#"{"voltages_mv": [400], "ecc": 3}"#, "ecc"),
            (br#"{"voltages_mv": [400], "network": "vgg"}"#, "vgg"),
            (br#"{"voltages_mv": [400], "trials": -2}"#, "trials"),
            (br#"{"voltages_mv": [200]}"#, "200"),
            (
                br#"{"voltages_mv": [400], "grid": {"start_mv": 1, "stop_mv": 2, "step_mv": 1}}"#,
                "not both",
            ),
        ];
        for (body, needle) in cases {
            let err = decode_spec(body).unwrap_err();
            assert!(
                err.contains(needle),
                "{:?}: expected {needle:?} in {err:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn record_is_a_pure_function_of_spec_and_results() {
        let spec = SweepSpec {
            voltages_mv: vec![400, 480],
            trials: 2,
            ..SweepSpec::toy_default()
        };
        let a = run_spec_json(&spec);
        let b = run_spec_json(&spec);
        assert_eq!(a, b, "two library runs must render identically");
        assert!(a.contains("accuracy mean"));
        assert!(a.contains(&spec.canonical_string()));
    }

    #[test]
    fn event_lines_are_compact_json() {
        let line = event_line(
            1,
            440,
            &TrialEvent::TrialComplete {
                index: 3,
                micros: 17,
            },
        )
        .unwrap();
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("trial"));
        assert_eq!(v.get("trial").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("mv").and_then(Value::as_f64), Some(440.0));
        assert!(event_line(
            0,
            400,
            &TrialEvent::Stage {
                stage: "corrupt",
                micros: 1
            }
        )
        .is_none());
    }

    #[test]
    fn error_body_escapes_cleanly() {
        let body = error_body("bad \"thing\" at byte 3");
        let v = Value::parse(&body).unwrap();
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("bad \"thing\" at byte 3")
        );
    }
}
