//! The wire schema: JSON sweep requests in, `dante-bench` figure records
//! out, progress events as JSON lines, and the iso-accuracy query/response
//! encoding.
//!
//! Decoding is strict — unknown sampling/ECC/network/supply tokens,
//! mistyped fields, and unknown iso-accuracy query keys are rejected with a
//! message naming the field, so a 400 always tells the client what to fix.

use dante::accuracy::{EccMode, OverlaySampling};
use dante::fleet::{DieOutcome, FleetResult, FleetSpec};
use dante::iso::{IsoAccuracyResult, IsoAccuracySpec, IsoConfigPoint};
use dante::retrain::{HardenedNetwork, ResamplePolicy, RetrainEvent, RetrainSpec};
use dante::sweep::{GeometrySpec, NetworkSpec, SupplySpec, SweepPoint, SweepSpec};
use dante_bench::json::Value;
use dante_bench::record::{FigureRecord, Series};
use dante_circuit::macro_model::MacroGeometry;
use dante_circuit::units::Volt;
use dante_sim::TrialEvent;
use dante_sram::model::{CellFaultRate, FaultModel};
use std::collections::BTreeMap;

/// Decodes a `POST /v1/sweep` body into a spec.
///
/// Accepted shape (everything except `voltages_mv`/`grid` optional):
///
/// ```json
/// {
///   "seed": 17, "trials": 10,
///   "voltages_mv": [360, 400, 440],
///   "grid": {"start_mv": 360, "stop_mv": 520, "step_mv": 20},
///   "sampling": "sparse_tail" | "dense",
///   "ecc": "none" | "secded",
///   "network": "toy" | "mnist_fc" | "alexnet_conv"
///           | {"kind": "mnist_fc", "train_n": 1200, "test_n": 100, "epochs": 4}
///           | {"kind": "alexnet_conv", "layers": 5, "train_n": 1200, "test_n": 100, "epochs": 4},
///   "supply": "single" | "boosted"
///           | {"kind": "boosted", "level": 4}
///           | {"kind": "boosted_scheduled", "level": 4, "critical_layers": 1}
///           | {"kind": "dual", "v_h_mv": 600},
///   "geometry": "calibrated"
///           | {"rows": 256, "cols": 128, "mux": 4, "banks": 2}
/// }
/// ```
///
/// # Errors
///
/// Returns a human-readable reason (parse error with byte offset, or the
/// first field that failed decoding/validation).
pub fn decode_spec(body: &[u8]) -> Result<SweepSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = Value::parse(text).map_err(|e| e.to_string())?;
    decode_spec_value(&v)
}

/// Decodes an already-parsed sweep-spec object (the `spec` sub-object of a
/// shard request, or a whole `POST /v1/sweep` body).
///
/// # Errors
///
/// Same contract as [`decode_spec`].
pub fn decode_spec_value(v: &Value) -> Result<SweepSpec, String> {
    if v.get("voltages_mv").is_some() && v.get("grid").is_some() {
        return Err("give either 'voltages_mv' or 'grid', not both".to_owned());
    }

    let u64_field = |key: &str, default: u64| -> Result<u64, String> {
        match v.get(key) {
            None => Ok(default),
            Some(Value::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= 1.8e19 => {
                Ok(*n as u64)
            }
            Some(_) => Err(format!("'{key}' must be a non-negative integer")),
        }
    };

    let voltages_mv = if let Some(grid) = v.get("grid") {
        let part = |key: &str| -> Result<u32, String> {
            grid.get(key)
                .and_then(Value::as_f64)
                .filter(|n| n.fract() == 0.0 && (0.0..=1e6).contains(n))
                .map(|n| n as u32)
                .ok_or_else(|| format!("'grid.{key}' must be a small non-negative integer"))
        };
        let (start, stop, step) = (part("start_mv")?, part("stop_mv")?, part("step_mv")?);
        if step == 0 || stop < start {
            return Err("'grid' needs step_mv >= 1 and stop_mv >= start_mv".to_owned());
        }
        (start..=stop).step_by(step as usize).collect()
    } else {
        v.get("voltages_mv")
            .ok_or_else(|| "missing 'voltages_mv' (or 'grid')".to_owned())?
            .as_array()
            .ok_or_else(|| "'voltages_mv' must be an array".to_owned())?
            .iter()
            .map(|p| {
                p.as_f64()
                    .filter(|n| n.fract() == 0.0 && (0.0..=1e6).contains(n))
                    .map(|n| n as u32)
                    .ok_or_else(|| "'voltages_mv' entries must be integers (millivolts)".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?
    };

    let sampling = decode_sampling(v.get("sampling"))?;
    let ecc = decode_ecc(v.get("ecc"))?;

    let network = decode_network(v.get("network"))?;

    let supply = match v.get("supply") {
        None => SupplySpec::Single,
        Some(Value::String(s)) => match s.as_str() {
            "single" => SupplySpec::Single,
            // Bare "boosted" means the strongest boost (Table 1's Vddv4).
            "boosted" => SupplySpec::Boosted { level: 4 },
            "dual" => {
                return Err("'supply': \"dual\" needs a memory rail; use \
                     {\"kind\": \"dual\", \"v_h_mv\": ...}"
                    .to_owned())
            }
            other => return Err(format!("unknown supply {other:?}")),
        },
        Some(obj @ Value::Object(_)) => {
            let kind = obj
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| "'supply.kind' must be a string".to_owned())?;
            let int = |key: &str, default: u64| -> Result<u64, String> {
                match obj.get(key) {
                    None => Ok(default),
                    Some(Value::Number(n)) if n.fract() == 0.0 && (0.0..=1e6).contains(n) => {
                        Ok(*n as u64)
                    }
                    Some(_) => Err(format!("'supply.{key}' must be a small integer")),
                }
            };
            match kind {
                "single" => SupplySpec::Single,
                "boosted" => SupplySpec::Boosted {
                    level: int("level", 4)? as usize,
                },
                "boosted_scheduled" => SupplySpec::BoostedScheduled {
                    level: int("level", 4)? as usize,
                    critical_layers: int("critical_layers", 1)? as usize,
                },
                "dual" => match obj.get("v_h_mv") {
                    Some(_) => SupplySpec::Dual {
                        v_h_mv: int("v_h_mv", 0)? as u32,
                    },
                    None => return Err("'supply.v_h_mv' is required for dual".to_owned()),
                },
                other => return Err(format!("unknown supply kind {other:?}")),
            }
        }
        Some(_) => return Err("'supply' must be a string or object".to_owned()),
    };

    let spec = SweepSpec {
        seed: u64_field("seed", 0xDA17E)?,
        voltages_mv,
        trials: usize::try_from(u64_field("trials", 4)?).unwrap_or(usize::MAX),
        sampling,
        ecc,
        network,
        supply,
        fault_model: decode_fault_model(v.get("fault_model"))?,
        geometry: decode_geometry(v.get("geometry"))?,
    };
    spec.validate()?;
    Ok(spec)
}

/// Decodes the optional `geometry` field shared by `/v1/sweep` and
/// `/v1/fleet` bodies.
///
/// Accepted shapes (omitting the field — or `"calibrated"` — selects the
/// scalar calibration, which keeps the spec's historical cache key):
///
/// ```json
/// "calibrated" | {"rows": 256, "cols": 128, "mux": 4, "banks": 2}
/// ```
///
/// Range checks happen in the spec's own `validate`, so a 400 names the
/// bound.
///
/// # Errors
///
/// Returns a message naming the offending field.
pub fn decode_geometry(v: Option<&Value>) -> Result<GeometrySpec, String> {
    let Some(v) = v else {
        return Ok(GeometrySpec::Calibrated);
    };
    match v {
        Value::String(s) if s == "calibrated" => Ok(GeometrySpec::Calibrated),
        Value::String(other) => Err(format!("unknown geometry {other:?}")),
        obj @ Value::Object(_) => {
            let dim = |key: &str| -> Result<usize, String> {
                match obj.get(key) {
                    Some(Value::Number(n)) if n.fract() == 0.0 && (1.0..=1e6).contains(n) => {
                        Ok(*n as usize)
                    }
                    _ => Err(format!("'geometry.{key}' must be a small positive integer")),
                }
            };
            Ok(GeometrySpec::Structural(MacroGeometry {
                rows: dim("rows")?,
                cols: dim("cols")?,
                mux: dim("mux")?,
                banks: dim("banks")?,
            }))
        }
        _ => Err("'geometry' must be \"calibrated\" or an object".to_owned()),
    }
}

/// Decodes the optional `fault_model` field shared by `/v1/sweep` and
/// `/v1/fleet` bodies.
///
/// Accepted shapes (omitting the field selects the paper's default
/// Gaussian, which keeps the spec's historical cache key):
///
/// ```json
/// "gaussian" | "correlated_burst" | "chip_variation"
/// | {"kind": "gaussian", "mu_mv": 352, "sigma_mv": 40, "flip_ppm": 500000}
/// | {"kind": "correlated_burst", "row_weak_ppm": 2000, "col_weak_ppm": 1000, "shift_mv": 120}
/// | {"kind": "chip_variation", "mu_spread_mv": 15, "sigma_spread_pct": 10}
/// ```
///
/// Object forms also accept the base `mu_mv`/`sigma_mv`/`flip_ppm` keys;
/// anything omitted falls back to the calibrated 14 nm defaults. Range
/// checks happen in the spec's own `validate`, so a 400 names the bound.
///
/// # Errors
///
/// Returns a message naming the offending field.
pub fn decode_fault_model(v: Option<&Value>) -> Result<FaultModel, String> {
    let Some(v) = v else {
        return Ok(FaultModel::default());
    };
    let bare = |token: &str| -> Result<FaultModel, String> {
        match token {
            "gaussian" => Ok(FaultModel::gaussian_default()),
            "correlated_burst" => Ok(FaultModel::burst_default()),
            "chip_variation" => Ok(FaultModel::chip_variation_default()),
            other => Err(format!("unknown fault_model {other:?}")),
        }
    };
    match v {
        Value::String(s) => bare(s),
        obj @ Value::Object(_) => {
            let kind = obj
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| "'fault_model.kind' must be a string".to_owned())?;
            let int = |key: &str, default: u32| -> Result<u32, String> {
                match obj.get(key) {
                    None => Ok(default),
                    Some(Value::Number(n)) if n.fract() == 0.0 && (0.0..=1e7).contains(n) => {
                        Ok(*n as u32)
                    }
                    Some(_) => Err(format!("'fault_model.{key}' must be a small integer")),
                }
            };
            let mu_mv = int("mu_mv", dante_sram::model::DEFAULT_MU_MV)?;
            let sigma_mv = int("sigma_mv", dante_sram::model::DEFAULT_SIGMA_MV)?;
            let flip_ppm = int("flip_ppm", dante_sram::model::DEFAULT_FLIP_PPM)?;
            match kind {
                "gaussian" => Ok(FaultModel::Gaussian {
                    mu_mv,
                    sigma_mv,
                    flip_ppm,
                }),
                "correlated_burst" => Ok(FaultModel::CorrelatedBurst {
                    mu_mv,
                    sigma_mv,
                    flip_ppm,
                    row_weak_ppm: int("row_weak_ppm", 2000)?,
                    col_weak_ppm: int("col_weak_ppm", 1000)?,
                    shift_mv: int("shift_mv", 120)?,
                }),
                "chip_variation" => Ok(FaultModel::ChipVariation {
                    mu_mv,
                    sigma_mv,
                    flip_ppm,
                    mu_spread_mv: int("mu_spread_mv", 15)?,
                    sigma_spread_pct: int("sigma_spread_pct", 10)?,
                }),
                other => Err(format!("unknown fault_model kind {other:?}")),
            }
        }
        _ => Err("'fault_model' must be a string or object".to_owned()),
    }
}

/// Decodes a `POST /v1/fleet` body into a [`FleetSpec`].
///
/// Accepted shape (every field optional; defaults are the fleet toy spec —
/// a thousand 1 Mbit dies of the default Gaussian process):
///
/// ```json
/// {
///   "seed": 17, "dies": 1000, "array_bits": 1048576,
///   "voltages_mv": [520, 560, 600],
///   "grid": {"start_mv": 500, "stop_mv": 640, "step_mv": 10},
///   "fault_model": "chip_variation",
///   "geometry": "calibrated"
///           | {"rows": 256, "cols": 128, "mux": 4, "banks": 2}
/// }
/// ```
///
/// # Errors
///
/// Returns a human-readable reason naming the first offending field or the
/// first bound the assembled spec violates.
pub fn decode_fleet_spec(body: &[u8]) -> Result<FleetSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = Value::parse(text).map_err(|e| e.to_string())?;
    decode_fleet_value(&v)
}

/// Decodes an already-parsed fleet-spec object (the `spec` sub-object of a
/// shard request, or a whole `POST /v1/fleet` body).
///
/// # Errors
///
/// Same contract as [`decode_fleet_spec`].
pub fn decode_fleet_value(v: &Value) -> Result<FleetSpec, String> {
    if v.get("voltages_mv").is_some() && v.get("grid").is_some() {
        return Err("give either 'voltages_mv' or 'grid', not both".to_owned());
    }
    let mut spec = FleetSpec::toy_default();
    match v.get("seed") {
        None => {}
        Some(Value::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= 1.8e19 => {
            spec.seed = *n as u64;
        }
        Some(_) => return Err("'seed' must be a non-negative integer".to_owned()),
    }
    let size = |key: &str, default: usize| -> Result<usize, String> {
        match v.get(key) {
            None => Ok(default),
            Some(Value::Number(n)) if n.fract() == 0.0 && (0.0..=1e9).contains(n) => {
                Ok(*n as usize)
            }
            Some(_) => Err(format!("'{key}' must be a small non-negative integer")),
        }
    };
    spec.dies = size("dies", spec.dies)?;
    spec.array_bits = size("array_bits", spec.array_bits)?;
    if let Some(grid) = v.get("grid") {
        let part = |key: &str| -> Result<u32, String> {
            grid.get(key)
                .and_then(Value::as_f64)
                .filter(|n| n.fract() == 0.0 && (0.0..=1e6).contains(n))
                .map(|n| n as u32)
                .ok_or_else(|| format!("'grid.{key}' must be a small non-negative integer"))
        };
        let (start, stop, step) = (part("start_mv")?, part("stop_mv")?, part("step_mv")?);
        if step == 0 || stop < start {
            return Err("'grid' needs step_mv >= 1 and stop_mv >= start_mv".to_owned());
        }
        spec.voltages_mv = (start..=stop).step_by(step as usize).collect();
    } else if let Some(volts) = v.get("voltages_mv") {
        spec.voltages_mv = volts
            .as_array()
            .ok_or_else(|| "'voltages_mv' must be an array".to_owned())?
            .iter()
            .map(|p| {
                p.as_f64()
                    .filter(|n| n.fract() == 0.0 && (0.0..=1e6).contains(n))
                    .map(|n| n as u32)
                    .ok_or_else(|| "'voltages_mv' entries must be integers (millivolts)".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    spec.fault_model = decode_fault_model(v.get("fault_model"))?;
    spec.geometry = decode_geometry(v.get("geometry"))?;
    spec.validate()?;
    Ok(spec)
}

/// Decodes a `POST /v1/retrain` body into a [`RetrainSpec`].
///
/// Accepted shape (every field optional; defaults are the toy hardening
/// run at 380 mV):
///
/// ```json
/// {
///   "seed": 17, "target_mv": 380, "epochs": 4,
///   "resample": "every_epoch" | "hold",
///   "fault_model": "gaussian" | {"kind": "correlated_burst", ...},
///   "network": "toy" | "mnist_fc" | {"kind": "mnist_fc", ...},
///   "voltages_mv": [360, 400, 440],
///   "grid": {"start_mv": 340, "stop_mv": 600, "step_mv": 20},
///   "trials": 4, "floor": 0.97, "level": 4,
///   "sampling": "sparse_tail" | "dense",
///   "ecc": "none" | "secded"
/// }
/// ```
///
/// # Errors
///
/// Returns a human-readable reason naming the first offending field or the
/// first bound the assembled spec violates.
pub fn decode_retrain_spec(body: &[u8]) -> Result<RetrainSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = Value::parse(text).map_err(|e| e.to_string())?;
    decode_retrain_value(&v)
}

/// Decodes an already-parsed retrain-spec object.
///
/// # Errors
///
/// Same contract as [`decode_retrain_spec`].
pub fn decode_retrain_value(v: &Value) -> Result<RetrainSpec, String> {
    if v.get("voltages_mv").is_some() && v.get("grid").is_some() {
        return Err("give either 'voltages_mv' or 'grid', not both".to_owned());
    }
    let mut spec = RetrainSpec::toy_default();
    match v.get("seed") {
        None => {}
        Some(Value::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= 1.8e19 => {
            spec.seed = *n as u64;
        }
        Some(_) => return Err("'seed' must be a non-negative integer".to_owned()),
    }
    let size = |key: &str, default: usize| -> Result<usize, String> {
        match v.get(key) {
            None => Ok(default),
            Some(Value::Number(n)) if n.fract() == 0.0 && (0.0..=1e9).contains(n) => {
                Ok(*n as usize)
            }
            Some(_) => Err(format!("'{key}' must be a small non-negative integer")),
        }
    };
    spec.target_mv = size("target_mv", spec.target_mv as usize)? as u32;
    spec.epochs = size("epochs", spec.epochs)?;
    spec.trials = size("trials", spec.trials)?;
    spec.level = size("level", spec.level)?;
    spec.resample = match v.get("resample").map(|s| s.as_str()) {
        None => spec.resample,
        Some(Some("every_epoch")) => ResamplePolicy::EveryEpoch,
        Some(Some("hold")) => ResamplePolicy::Hold,
        Some(other) => {
            return Err(format!(
                "'resample' must be \"every_epoch\" or \"hold\", got {other:?}"
            ))
        }
    };
    match v.get("floor") {
        None => {}
        Some(Value::Number(n)) if n.is_finite() => spec.floor = *n,
        Some(_) => return Err("'floor' must be a finite number".to_owned()),
    }
    if let Some(grid) = v.get("grid") {
        let part = |key: &str| -> Result<u32, String> {
            grid.get(key)
                .and_then(Value::as_f64)
                .filter(|n| n.fract() == 0.0 && (0.0..=1e6).contains(n))
                .map(|n| n as u32)
                .ok_or_else(|| format!("'grid.{key}' must be a small non-negative integer"))
        };
        let (start, stop, step) = (part("start_mv")?, part("stop_mv")?, part("step_mv")?);
        if step == 0 || stop < start {
            return Err("'grid' needs step_mv >= 1 and stop_mv >= start_mv".to_owned());
        }
        spec.voltages_mv = (start..=stop).step_by(step as usize).collect();
    } else if let Some(volts) = v.get("voltages_mv") {
        spec.voltages_mv = volts
            .as_array()
            .ok_or_else(|| "'voltages_mv' must be an array".to_owned())?
            .iter()
            .map(|p| {
                p.as_f64()
                    .filter(|n| n.fract() == 0.0 && (0.0..=1e6).contains(n))
                    .map(|n| n as u32)
                    .ok_or_else(|| "'voltages_mv' entries must be integers (millivolts)".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    spec.sampling = decode_sampling(v.get("sampling"))?;
    spec.ecc = decode_ecc(v.get("ecc"))?;
    spec.network = decode_network(v.get("network"))?;
    spec.fault_model = decode_fault_model(v.get("fault_model"))?;
    spec.validate()?;
    Ok(spec)
}

/// Decodes the optional `sampling` token shared by `/v1/sweep` and
/// `/v1/retrain` bodies; omitting it selects the sparse-tail sampler.
fn decode_sampling(v: Option<&Value>) -> Result<OverlaySampling, String> {
    match v.map(|s| s.as_str()) {
        None => Ok(OverlaySampling::SparseTail),
        Some(Some("sparse_tail")) => Ok(OverlaySampling::SparseTail),
        Some(Some("dense")) => Ok(OverlaySampling::Dense),
        Some(other) => Err(format!(
            "'sampling' must be \"sparse_tail\" or \"dense\", got {other:?}"
        )),
    }
}

/// Decodes the optional `ecc` token shared by `/v1/sweep` and `/v1/retrain`
/// bodies; omitting it selects no protection.
fn decode_ecc(v: Option<&Value>) -> Result<EccMode, String> {
    match v.map(|s| s.as_str()) {
        None => Ok(EccMode::None),
        Some(Some("none")) => Ok(EccMode::None),
        Some(Some("secded")) => Ok(EccMode::SecDed),
        Some(other) => Err(format!(
            "'ecc' must be \"none\" or \"secded\", got {other:?}"
        )),
    }
}

/// Decodes the optional `network` field shared by `/v1/sweep` and
/// `/v1/retrain` bodies: a bare token or a sized object; omitting the
/// field selects the toy network.
fn decode_network(v: Option<&Value>) -> Result<NetworkSpec, String> {
    match v {
        None => Ok(NetworkSpec::Toy),
        Some(Value::String(s)) => default_network(s),
        Some(obj @ Value::Object(_)) => {
            let kind = obj
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| "'network.kind' must be a string".to_owned())?;
            let size = |key: &str, default: usize| -> Result<usize, String> {
                match obj.get(key) {
                    None => Ok(default),
                    Some(Value::Number(n)) if n.fract() == 0.0 && (0.0..=1e9).contains(n) => {
                        Ok(*n as usize)
                    }
                    Some(_) => Err(format!("'network.{key}' must be a small integer")),
                }
            };
            match kind {
                "mnist_fc" => Ok(NetworkSpec::MnistFc {
                    train_n: size("train_n", 1200)?,
                    test_n: size("test_n", 100)?,
                    epochs: size("epochs", 4)?,
                }),
                "alexnet_conv" => Ok(NetworkSpec::AlexNetConv {
                    layers: size("layers", 5)?,
                    train_n: size("train_n", 1200)?,
                    test_n: size("test_n", 100)?,
                    epochs: size("epochs", 4)?,
                }),
                other => Err(format!("unknown network kind {other:?}")),
            }
        }
        Some(_) => Err("'network' must be a string or object".to_owned()),
    }
}

/// The network a bare string token selects; sized defaults match the repo's
/// committed artifact cache entries.
fn default_network(token: &str) -> Result<NetworkSpec, String> {
    match token {
        "toy" => Ok(NetworkSpec::Toy),
        "mnist_fc" => Ok(NetworkSpec::MnistFc {
            train_n: 1200,
            test_n: 100,
            epochs: 4,
        }),
        "alexnet_conv" => Ok(NetworkSpec::AlexNetConv {
            layers: 5,
            train_n: 1200,
            test_n: 100,
            epochs: 4,
        }),
        other => Err(format!("unknown network {other:?}")),
    }
}

/// Encodes a sweep spec as a JSON object [`decode_spec_value`] accepts —
/// the wire form shard requests carry. Every field is written explicitly
/// (no defaults elided), so a backend on the same build decodes a spec
/// with the identical canonical string.
#[must_use]
pub fn encode_spec_value(spec: &SweepSpec) -> Value {
    let num = |n: f64| Value::Number(n);
    let network = match spec.network {
        NetworkSpec::Toy => Value::String("toy".to_owned()),
        NetworkSpec::MnistFc {
            train_n,
            test_n,
            epochs,
        } => Value::Object(BTreeMap::from([
            ("kind".to_owned(), Value::String("mnist_fc".to_owned())),
            ("train_n".to_owned(), num(train_n as f64)),
            ("test_n".to_owned(), num(test_n as f64)),
            ("epochs".to_owned(), num(epochs as f64)),
        ])),
        NetworkSpec::AlexNetConv {
            layers,
            train_n,
            test_n,
            epochs,
        } => Value::Object(BTreeMap::from([
            ("kind".to_owned(), Value::String("alexnet_conv".to_owned())),
            ("layers".to_owned(), num(layers as f64)),
            ("train_n".to_owned(), num(train_n as f64)),
            ("test_n".to_owned(), num(test_n as f64)),
            ("epochs".to_owned(), num(epochs as f64)),
        ])),
    };
    let supply = match spec.supply {
        SupplySpec::Single => Value::String("single".to_owned()),
        SupplySpec::Boosted { level } => Value::Object(BTreeMap::from([
            ("kind".to_owned(), Value::String("boosted".to_owned())),
            ("level".to_owned(), num(level as f64)),
        ])),
        SupplySpec::BoostedScheduled {
            level,
            critical_layers,
        } => Value::Object(BTreeMap::from([
            (
                "kind".to_owned(),
                Value::String("boosted_scheduled".to_owned()),
            ),
            ("level".to_owned(), num(level as f64)),
            ("critical_layers".to_owned(), num(critical_layers as f64)),
        ])),
        SupplySpec::Dual { v_h_mv } => Value::Object(BTreeMap::from([
            ("kind".to_owned(), Value::String("dual".to_owned())),
            ("v_h_mv".to_owned(), num(f64::from(v_h_mv))),
        ])),
    };
    Value::Object(BTreeMap::from([
        ("seed".to_owned(), num(spec.seed as f64)),
        ("trials".to_owned(), num(spec.trials as f64)),
        (
            "voltages_mv".to_owned(),
            Value::Array(
                spec.voltages_mv
                    .iter()
                    .map(|&mv| num(f64::from(mv)))
                    .collect(),
            ),
        ),
        (
            "sampling".to_owned(),
            Value::String(
                match spec.sampling {
                    OverlaySampling::SparseTail => "sparse_tail",
                    OverlaySampling::Dense => "dense",
                }
                .to_owned(),
            ),
        ),
        (
            "ecc".to_owned(),
            Value::String(
                match spec.ecc {
                    EccMode::None => "none",
                    EccMode::SecDed => "secded",
                }
                .to_owned(),
            ),
        ),
        ("network".to_owned(), network),
        ("supply".to_owned(), supply),
        (
            "fault_model".to_owned(),
            encode_fault_model(spec.fault_model),
        ),
        ("geometry".to_owned(), encode_geometry(spec.geometry)),
    ]))
}

/// Encodes a geometry spec as a value [`decode_geometry`] accepts.
#[must_use]
pub fn encode_geometry(geometry: GeometrySpec) -> Value {
    match geometry {
        GeometrySpec::Calibrated => Value::String("calibrated".to_owned()),
        GeometrySpec::Structural(g) => Value::Object(BTreeMap::from([
            ("rows".to_owned(), Value::Number(g.rows as f64)),
            ("cols".to_owned(), Value::Number(g.cols as f64)),
            ("mux".to_owned(), Value::Number(g.mux as f64)),
            ("banks".to_owned(), Value::Number(g.banks as f64)),
        ])),
    }
}

/// Encodes a fault model as an object [`decode_fault_model`] accepts.
#[must_use]
pub fn encode_fault_model(model: FaultModel) -> Value {
    let num = |n: u32| Value::Number(f64::from(n));
    match model {
        FaultModel::Gaussian {
            mu_mv,
            sigma_mv,
            flip_ppm,
        } => Value::Object(BTreeMap::from([
            ("kind".to_owned(), Value::String("gaussian".to_owned())),
            ("mu_mv".to_owned(), num(mu_mv)),
            ("sigma_mv".to_owned(), num(sigma_mv)),
            ("flip_ppm".to_owned(), num(flip_ppm)),
        ])),
        FaultModel::CorrelatedBurst {
            mu_mv,
            sigma_mv,
            flip_ppm,
            row_weak_ppm,
            col_weak_ppm,
            shift_mv,
        } => Value::Object(BTreeMap::from([
            (
                "kind".to_owned(),
                Value::String("correlated_burst".to_owned()),
            ),
            ("mu_mv".to_owned(), num(mu_mv)),
            ("sigma_mv".to_owned(), num(sigma_mv)),
            ("flip_ppm".to_owned(), num(flip_ppm)),
            ("row_weak_ppm".to_owned(), num(row_weak_ppm)),
            ("col_weak_ppm".to_owned(), num(col_weak_ppm)),
            ("shift_mv".to_owned(), num(shift_mv)),
        ])),
        FaultModel::ChipVariation {
            mu_mv,
            sigma_mv,
            flip_ppm,
            mu_spread_mv,
            sigma_spread_pct,
        } => Value::Object(BTreeMap::from([
            (
                "kind".to_owned(),
                Value::String("chip_variation".to_owned()),
            ),
            ("mu_mv".to_owned(), num(mu_mv)),
            ("sigma_mv".to_owned(), num(sigma_mv)),
            ("flip_ppm".to_owned(), num(flip_ppm)),
            ("mu_spread_mv".to_owned(), num(mu_spread_mv)),
            ("sigma_spread_pct".to_owned(), num(sigma_spread_pct)),
        ])),
    }
}

/// Encodes a fleet spec as a JSON object [`decode_fleet_value`] accepts.
#[must_use]
pub fn encode_fleet_value(spec: &FleetSpec) -> Value {
    Value::Object(BTreeMap::from([
        ("seed".to_owned(), Value::Number(spec.seed as f64)),
        ("dies".to_owned(), Value::Number(spec.dies as f64)),
        (
            "array_bits".to_owned(),
            Value::Number(spec.array_bits as f64),
        ),
        (
            "voltages_mv".to_owned(),
            Value::Array(
                spec.voltages_mv
                    .iter()
                    .map(|&mv| Value::Number(f64::from(mv)))
                    .collect(),
            ),
        ),
        (
            "fault_model".to_owned(),
            encode_fault_model(spec.fault_model),
        ),
        ("geometry".to_owned(), encode_geometry(spec.geometry)),
    ]))
}

/// Renders an `f64` as its exact IEEE-754 bit pattern (16 hex chars).
/// Shard responses carry floats this way so merged results are
/// bit-identical to a single-process run — no decimal round-trip.
#[must_use]
pub fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parses an [`f64_hex`]-rendered bit pattern back to the exact `f64`.
///
/// # Errors
///
/// Rejects strings that are not exactly 16 hex characters.
pub fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("float bits must be 16 hex chars, got {s:?}"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad float bits {s:?}"))
}

/// Reads a `usize` window field (`trial_offset`, `die_count`, ...) from a
/// shard request object.
fn window_field(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .filter(|n| n.fract() == 0.0 && (0.0..=1e12).contains(n))
        .map(|n| n as usize)
        .ok_or_else(|| format!("'{key}' must be a non-negative integer"))
}

/// Encodes a `POST /v1/shard/sweep` request: the full spec plus the trial
/// window `[trial_offset, trial_offset + trial_count)` this shard owns.
#[must_use]
pub fn encode_shard_sweep_request(
    spec: &SweepSpec,
    trial_offset: usize,
    trial_count: usize,
) -> String {
    Value::Object(BTreeMap::from([
        ("spec".to_owned(), encode_spec_value(spec)),
        (
            "trial_offset".to_owned(),
            Value::Number(trial_offset as f64),
        ),
        ("trial_count".to_owned(), Value::Number(trial_count as f64)),
    ]))
    .to_string_compact()
}

/// Decodes a `POST /v1/shard/sweep` body into `(spec, offset, count)`.
///
/// # Errors
///
/// Rejects malformed bodies and windows outside `0..spec.trials`.
pub fn decode_shard_sweep_request(body: &[u8]) -> Result<(SweepSpec, usize, usize), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = Value::parse(text).map_err(|e| e.to_string())?;
    let spec = decode_spec_value(v.get("spec").ok_or("missing 'spec'")?)?;
    let offset = window_field(&v, "trial_offset")?;
    let count = window_field(&v, "trial_count")?;
    if count == 0 || offset.saturating_add(count) > spec.trials {
        return Err(format!(
            "trial window {offset}+{count} outside 0..{}",
            spec.trials
        ));
    }
    Ok((spec, offset, count))
}

/// Encodes a shard sweep response: for each sweep point, the shard's raw
/// per-trial accuracies as exact bit patterns, in trial order.
#[must_use]
pub fn encode_shard_sweep_response(per_point: &[Vec<f64>]) -> String {
    Value::Object(BTreeMap::from([(
        "points".to_owned(),
        Value::Array(
            per_point
                .iter()
                .map(|trials| {
                    Value::Array(trials.iter().map(|&x| Value::String(f64_hex(x))).collect())
                })
                .collect(),
        ),
    )]))
    .to_string_compact()
}

/// Decodes a shard sweep response back to per-point raw trial accuracies.
///
/// # Errors
///
/// Rejects malformed bodies (including error payloads from the peer).
pub fn decode_shard_sweep_response(body: &[u8]) -> Result<Vec<Vec<f64>>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = Value::parse(text).map_err(|e| e.to_string())?;
    v.get("points")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing 'points' array".to_owned())?
        .iter()
        .map(|point| {
            point
                .as_array()
                .ok_or_else(|| "'points' entries must be arrays".to_owned())?
                .iter()
                .map(|bits| f64_from_hex(bits.as_str().ok_or("float bits must be strings")?))
                .collect()
        })
        .collect()
}

/// Encodes a `POST /v1/shard/fleet` request: the full spec plus the die
/// window `[die_offset, die_offset + die_count)` this shard owns.
#[must_use]
pub fn encode_shard_fleet_request(spec: &FleetSpec, die_offset: usize, die_count: usize) -> String {
    Value::Object(BTreeMap::from([
        ("spec".to_owned(), encode_fleet_value(spec)),
        ("die_offset".to_owned(), Value::Number(die_offset as f64)),
        ("die_count".to_owned(), Value::Number(die_count as f64)),
    ]))
    .to_string_compact()
}

/// Decodes a `POST /v1/shard/fleet` body into `(spec, offset, count)`.
///
/// # Errors
///
/// Rejects malformed bodies and windows outside `0..spec.dies`.
pub fn decode_shard_fleet_request(body: &[u8]) -> Result<(FleetSpec, usize, usize), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = Value::parse(text).map_err(|e| e.to_string())?;
    let spec = decode_fleet_value(v.get("spec").ok_or("missing 'spec'")?)?;
    let offset = window_field(&v, "die_offset")?;
    let count = window_field(&v, "die_count")?;
    if count == 0 || offset.saturating_add(count) > spec.dies {
        return Err(format!(
            "die window {offset}+{count} outside 0..{}",
            spec.dies
        ));
    }
    Ok((spec, offset, count))
}

/// Encodes a shard fleet response: the shard's raw per-die outcomes in die
/// order, V_min as an exact bit pattern.
#[must_use]
pub fn encode_shard_fleet_response(dies: &[DieOutcome]) -> String {
    Value::Object(BTreeMap::from([(
        "dies".to_owned(),
        Value::Array(
            dies.iter()
                .map(|die| {
                    Value::Object(BTreeMap::from([
                        ("v_min_bits".to_owned(), Value::String(f64_hex(die.v_min))),
                        ("censored".to_owned(), Value::Bool(die.censored)),
                        (
                            "fault_cells".to_owned(),
                            Value::Number(die.fault_cells as f64),
                        ),
                    ]))
                })
                .collect(),
        ),
    )]))
    .to_string_compact()
}

/// Decodes a shard fleet response back to raw per-die outcomes.
///
/// # Errors
///
/// Rejects malformed bodies (including error payloads from the peer).
pub fn decode_shard_fleet_response(body: &[u8]) -> Result<Vec<DieOutcome>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v = Value::parse(text).map_err(|e| e.to_string())?;
    v.get("dies")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing 'dies' array".to_owned())?
        .iter()
        .map(|die| {
            let v_min = f64_from_hex(
                die.get("v_min_bits")
                    .and_then(Value::as_str)
                    .ok_or("'v_min_bits' must be a string")?,
            )?;
            let censored = die
                .get("censored")
                .and_then(Value::as_bool)
                .ok_or("'censored' must be a bool")?;
            let fault_cells =
                die.get("fault_cells")
                    .and_then(Value::as_f64)
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .ok_or("'fault_cells' must be a non-negative integer")? as u64;
            Ok(DieOutcome {
                v_min,
                censored,
                fault_cells,
            })
        })
        .collect()
}

/// Builds the response record from a spec and its per-point results.
///
/// Everything in the record is a pure function of the spec (plus the
/// deterministic results), so the rendered JSON is byte-identical across
/// cold runs, cache hits, and direct library calls. The energy series carry
/// exactly the `dante-energy` breakdown values attached to each point —
/// recomputing them through the library yields the same `f64`s, hence the
/// same rendered bytes.
#[must_use]
pub fn build_record(spec: &SweepSpec, results: &[SweepPoint]) -> FigureRecord {
    // The BER series reflects the spec's own fault model. For the default
    // Gaussian this computes exactly `VminFaultModel::default_14nm()`'s
    // bit_error_rate, so pre-fault-model responses stay byte-identical.
    let model = spec.fault_model;
    let xy = |f: &dyn Fn(&SweepPoint) -> f64| -> Vec<(f64, f64)> {
        results.iter().map(|p| (p.vdd.volts(), f(p))).collect()
    };
    let activity = spec.network.energy_activity();
    FigureRecord::new(
        "sweep",
        "Monte-Carlo accuracy + energy sweep (dante-serve)",
        "Vdd [V]",
        "accuracy / BER / energy",
    )
    .with_series(Series::new("accuracy mean", xy(&|p| p.stats.mean())))
    .with_series(Series::new("accuracy std", xy(&|p| p.stats.std_dev())))
    .with_series(Series::new("accuracy min", xy(&|p| p.stats.min())))
    .with_series(Series::new(
        "bit error rate",
        xy(&|p| model.marginal_ber(p.v_sram)),
    ))
    .with_series(Series::new("sram rail [V]", xy(&|p| p.v_sram.volts())))
    .with_series(Series::new(
        "dynamic sram [J]",
        xy(&|p| p.energy.dynamic.sram.joules()),
    ))
    .with_series(Series::new(
        "dynamic logic [J]",
        xy(&|p| p.energy.dynamic.logic.joules()),
    ))
    .with_series(Series::new(
        "dynamic booster [J]",
        xy(&|p| p.energy.dynamic.booster.joules()),
    ))
    .with_series(Series::new(
        "dynamic total [J]",
        xy(&|p| p.energy.dynamic.total().joules()),
    ))
    .with_series(Series::new(
        "dynamic total /ref0.5V",
        xy(&|p| p.energy.normalized_total()),
    ))
    .with_series(Series::new(
        "leakage per cycle [J]",
        xy(&|p| p.energy.leakage_per_cycle.joules()),
    ))
    .with_note(format!("spec: {}", spec.canonical_string()))
    .with_note(format!(
        "{} trials x {} points; deterministic per spec (counter-based seeds)",
        spec.trials,
        results.len()
    ))
    .with_note(format!(
        "supply: {}; energy workload: {} MACs, {} SRAM accesses per inference",
        spec.supply.canonical_token(),
        activity.total_macs(),
        activity.total_sram_accesses()
    ))
}

/// Runs `spec` synchronously through the library path and renders the
/// response body — the reference the HTTP path must match byte-for-byte.
#[must_use]
pub fn run_spec_json(spec: &SweepSpec) -> String {
    let prep = spec.prepare();
    build_record(spec, &prep.run()).to_json_pretty()
}

/// Builds the `/v1/fleet` response record from a spec and its result.
///
/// Like [`build_record`], everything here is a pure function of the spec and
/// its deterministic result, so cold runs, cache hits, and direct library
/// calls render byte-identical JSON.
#[must_use]
pub fn build_fleet_record(spec: &FleetSpec, result: &FleetResult) -> FigureRecord {
    let yield_points: Vec<(f64, f64)> = result
        .yield_at_voltage
        .iter()
        .map(|&(mv, y)| (Volt::from_millivolts(f64::from(mv)).volts(), y))
        .collect();
    let analytic_points: Vec<(f64, f64)> = result
        .yield_at_voltage
        .iter()
        .map(|&(mv, _)| {
            let v = Volt::from_millivolts(f64::from(mv));
            (v.volts(), spec.analytic_yield(v))
        })
        .collect();
    FigureRecord::new(
        "fleet",
        "Fleet-scale V_min / yield sweep (dante-serve)",
        "Vdd [V] (yield series) / quantile level (V_min series)",
        "yield fraction / V_min [V]",
    )
    .with_series(Series::new("yield", yield_points))
    .with_series(Series::new("analytic single-die yield", analytic_points))
    .with_series(Series::new("vmin quantile [V]", result.quantiles.clone()))
    .with_note(format!("spec: {}", spec.canonical_string()))
    .with_note(format!(
        "{} dies x {} bits; {} censored at the {} mV floor; {} faulty cells",
        result.dies,
        spec.array_bits,
        result.censored_dies,
        spec.voltages_mv[0],
        result.total_fault_cells
    ))
    .with_note(
        "deterministic per spec (counter-based die seeds); censored dies \
         report V_min at the grid floor"
            .to_owned(),
    )
}

/// Runs a fleet spec synchronously through the library path and renders the
/// response body — the reference the HTTP path must match byte-for-byte.
#[must_use]
pub fn run_fleet_json(spec: &FleetSpec) -> String {
    build_fleet_record(spec, &spec.solve()).to_json_pretty()
}

/// Renders a fleet progress event line for the streaming endpoint: one
/// `die`/`die_faults` pair per simulated die, bracketed by
/// `fleet_start`/`fleet_done`. Stage timings are elided like in
/// [`event_line`].
#[must_use]
pub fn fleet_event_line(event: &TrialEvent) -> Option<String> {
    let mut obj = BTreeMap::new();
    match event {
        TrialEvent::BatchStart { total } => {
            obj.insert("event".to_owned(), Value::String("fleet_start".to_owned()));
            obj.insert("dies".to_owned(), Value::Number(*total as f64));
        }
        TrialEvent::TrialComplete { index, micros } => {
            obj.insert("event".to_owned(), Value::String("die".to_owned()));
            obj.insert("die".to_owned(), Value::Number(*index as f64));
            obj.insert("micros".to_owned(), Value::Number(*micros as f64));
        }
        TrialEvent::FaultBits { index, bits } => {
            obj.insert("event".to_owned(), Value::String("die_faults".to_owned()));
            obj.insert("die".to_owned(), Value::Number(*index as f64));
            obj.insert("cells".to_owned(), Value::Number(*bits as f64));
        }
        TrialEvent::BatchComplete { micros } => {
            obj.insert("event".to_owned(), Value::String("fleet_done".to_owned()));
            obj.insert("micros".to_owned(), Value::Number(*micros as f64));
        }
        TrialEvent::Annotation { key, value } => {
            obj.insert("event".to_owned(), Value::String("annotation".to_owned()));
            obj.insert("key".to_owned(), Value::String((*key).to_owned()));
            obj.insert("value".to_owned(), Value::Number(*value));
        }
        TrialEvent::Stage { .. } => return None,
    }
    Some(Value::Object(obj).to_string_compact())
}

/// Decodes the `GET /v1/iso-accuracy` query string into a solve spec.
///
/// Recognized keys (all optional): `network` (`toy` | `mnist_fc` |
/// `alexnet_conv`), `floor` (fraction of clean accuracy, default `0.97`),
/// `trials`, `seed`, `level` (boost level, default `4`), and the grid
/// `start_mv`/`stop_mv`/`step_mv` (default `340..=600` step `20`). Unknown
/// keys are rejected so a typo cannot silently fall back to a default.
///
/// # Errors
///
/// Returns a message naming the offending query key.
pub fn decode_iso_query(query: &str) -> Result<IsoAccuracySpec, String> {
    let mut spec = IsoAccuracySpec::toy_default();
    let (mut start, mut stop, mut step) = (340u32, 600u32, 20u32);
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        let int = || -> Result<u64, String> {
            value
                .parse::<u64>()
                .ok()
                .filter(|&n| n <= 1_000_000)
                .ok_or_else(|| {
                    format!("'{key}' must be a small non-negative integer, got {value:?}")
                })
        };
        match key {
            "network" => spec.network = default_network(value)?,
            "floor" => {
                spec.floor = value
                    .parse::<f64>()
                    .ok()
                    .filter(|f| f.is_finite())
                    .ok_or_else(|| format!("'floor' must be a number, got {value:?}"))?;
            }
            "trials" => spec.trials = int()? as usize,
            "seed" => {
                spec.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("'seed' must be a non-negative integer, got {value:?}"))?;
            }
            "level" => spec.level = int()? as usize,
            "start_mv" => start = int()? as u32,
            "stop_mv" => stop = int()? as u32,
            "step_mv" => step = int()? as u32,
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    if step == 0 || stop < start {
        return Err("grid needs step_mv >= 1 and stop_mv >= start_mv".to_owned());
    }
    spec.voltages_mv = (start..=stop).step_by(step as usize).collect();
    spec.validate()?;
    Ok(spec)
}

/// The shared body of an iso-accuracy result rendering: everything except
/// the `spec` key. Both `/v1/iso-accuracy` responses and the baseline /
/// hardened sub-objects of `/v1/retrain` responses are built from exactly
/// these entries, so the two endpoints render a solve identically.
fn iso_result_entries(result: &IsoAccuracyResult) -> BTreeMap<String, Value> {
    let config = |point: &Option<IsoConfigPoint>| -> Value {
        match point {
            None => Value::Null,
            Some(p) => Value::Object(BTreeMap::from([
                (
                    "v_logic_mv".to_owned(),
                    Value::Number(p.v_logic.millivolts()),
                ),
                ("v_sram_mv".to_owned(), Value::Number(p.v_sram.millivolts())),
                ("accuracy".to_owned(), Value::Number(p.accuracy_mean)),
                (
                    "dynamic_sram_j".to_owned(),
                    Value::Number(p.energy.dynamic.sram.joules()),
                ),
                (
                    "dynamic_logic_j".to_owned(),
                    Value::Number(p.energy.dynamic.logic.joules()),
                ),
                (
                    "dynamic_booster_j".to_owned(),
                    Value::Number(p.energy.dynamic.booster.joules()),
                ),
                (
                    "dynamic_total_j".to_owned(),
                    Value::Number(p.energy.dynamic.total().joules()),
                ),
                (
                    "dynamic_total_norm0v5".to_owned(),
                    Value::Number(p.energy.normalized_total()),
                ),
                (
                    "leakage_per_cycle_j".to_owned(),
                    Value::Number(p.energy.leakage_per_cycle.joules()),
                ),
            ])),
        }
    };
    let ratio = |r: &Option<f64>| r.map_or(Value::Null, Value::Number);
    BTreeMap::from([
        (
            "clean_accuracy".to_owned(),
            Value::Number(result.clean_accuracy),
        ),
        (
            "target_accuracy".to_owned(),
            Value::Number(result.target_accuracy),
        ),
        ("single".to_owned(), config(&result.single)),
        ("boosted".to_owned(), config(&result.boosted)),
        ("dual".to_owned(), config(&result.dual)),
        (
            "boosted_over_single".to_owned(),
            ratio(&result.boosted_over_single),
        ),
        (
            "boosted_over_dual".to_owned(),
            ratio(&result.boosted_over_dual),
        ),
    ])
}

/// Renders an iso-accuracy solve as a compact JSON object (deterministic:
/// `BTreeMap` key order, same float formatter as every other endpoint).
#[must_use]
pub fn render_iso(spec: &IsoAccuracySpec, result: &IsoAccuracyResult) -> String {
    let mut obj = iso_result_entries(result);
    obj.insert("spec".to_owned(), Value::String(spec.canonical_string()));
    Value::Object(obj).to_string_compact()
}

/// Renders a `/v1/retrain` response: the spec's canonical string, the
/// hardened weights' digest, the per-epoch training telemetry, the
/// baseline and hardened iso-accuracy solves (same rendering as
/// `/v1/iso-accuracy`), and the headline `V_min` gap / energy-ratio
/// summary. Deterministic like every other endpoint — `BTreeMap` key
/// order, shared float formatter.
#[must_use]
pub fn render_retrain(spec: &RetrainSpec, hardened: &HardenedNetwork) -> String {
    let opt = |r: Option<f64>| r.map_or(Value::Null, Value::Number);
    let epochs = hardened
        .epochs
        .iter()
        .map(|e| {
            Value::Object(BTreeMap::from([
                ("epoch".to_owned(), Value::Number(e.epoch as f64)),
                ("loss".to_owned(), Value::Number(f64::from(e.loss))),
                ("clean_accuracy".to_owned(), Value::Number(e.clean_accuracy)),
                (
                    "faulty_accuracy".to_owned(),
                    Value::Number(e.faulty_accuracy),
                ),
            ]))
        })
        .collect();
    Value::Object(BTreeMap::from([
        ("spec".to_owned(), Value::String(spec.canonical_string())),
        (
            "weight_digest".to_owned(),
            Value::String(format!("{:016x}", hardened.weight_digest())),
        ),
        ("epochs".to_owned(), Value::Array(epochs)),
        (
            "baseline".to_owned(),
            Value::Object(iso_result_entries(&hardened.baseline)),
        ),
        (
            "hardened".to_owned(),
            Value::Object(iso_result_entries(&hardened.hardened)),
        ),
        (
            "vmin_gap_mv".to_owned(),
            Value::Object(BTreeMap::from([
                ("single".to_owned(), opt(hardened.single_vmin_gap_mv())),
                ("boosted".to_owned(), opt(hardened.boosted_vmin_gap_mv())),
            ])),
        ),
        (
            "energy_ratio".to_owned(),
            Value::Object(BTreeMap::from([
                ("single".to_owned(), opt(hardened.single_energy_ratio())),
                ("boosted".to_owned(), opt(hardened.boosted_energy_ratio())),
                ("dual".to_owned(), opt(hardened.dual_energy_ratio())),
            ])),
        ),
    ]))
    .to_string_compact()
}

/// Runs a retrain spec synchronously through the library path and renders
/// the response body — the reference the HTTP path must match
/// byte-for-byte.
#[must_use]
pub fn run_retrain_json(spec: &RetrainSpec) -> String {
    render_retrain(spec, &spec.run())
}

/// Renders a retrain progress event line for the streaming endpoint: one
/// `epoch_start`/`epoch_done` pair per training epoch, the latter carrying
/// the epoch's mean loss and clean/faulty test accuracies.
#[must_use]
pub fn retrain_event_line(event: &RetrainEvent) -> String {
    let obj = match *event {
        RetrainEvent::EpochStart { epoch } => BTreeMap::from([
            ("event".to_owned(), Value::String("epoch_start".to_owned())),
            ("epoch".to_owned(), Value::Number(epoch as f64)),
        ]),
        RetrainEvent::EpochDone {
            epoch,
            loss,
            clean_accuracy,
            faulty_accuracy,
        } => BTreeMap::from([
            ("event".to_owned(), Value::String("epoch_done".to_owned())),
            ("epoch".to_owned(), Value::Number(epoch as f64)),
            ("loss".to_owned(), Value::Number(f64::from(loss))),
            ("clean_accuracy".to_owned(), Value::Number(clean_accuracy)),
            ("faulty_accuracy".to_owned(), Value::Number(faulty_accuracy)),
        ]),
    };
    Value::Object(obj).to_string_compact()
}

/// Renders one key/value error payload, e.g. `{"error": "..."}`.
#[must_use]
pub fn error_body(message: &str) -> String {
    Value::Object(BTreeMap::from([(
        "error".to_owned(),
        Value::String(message.to_owned()),
    )]))
    .to_string_compact()
}

/// Renders a progress event line for the streaming endpoint. Returns
/// `None` for hook calls the stream intentionally elides (per-trial stage
/// timings — two extra events per trial with little client value).
#[must_use]
pub fn event_line(point: usize, mv: u32, event: &TrialEvent) -> Option<String> {
    let mut obj = BTreeMap::from([
        ("point".to_owned(), Value::Number(point as f64)),
        ("mv".to_owned(), Value::Number(f64::from(mv))),
    ]);
    match event {
        TrialEvent::BatchStart { total } => {
            obj.insert("event".to_owned(), Value::String("point_start".to_owned()));
            obj.insert("trials".to_owned(), Value::Number(*total as f64));
        }
        TrialEvent::TrialComplete { index, micros } => {
            obj.insert("event".to_owned(), Value::String("trial".to_owned()));
            obj.insert("trial".to_owned(), Value::Number(*index as f64));
            obj.insert("micros".to_owned(), Value::Number(*micros as f64));
        }
        TrialEvent::FaultBits { index, bits } => {
            obj.insert("event".to_owned(), Value::String("fault_bits".to_owned()));
            obj.insert("trial".to_owned(), Value::Number(*index as f64));
            obj.insert("bits".to_owned(), Value::Number(*bits as f64));
        }
        TrialEvent::BatchComplete { micros } => {
            obj.insert("event".to_owned(), Value::String("point_done".to_owned()));
            obj.insert("micros".to_owned(), Value::Number(*micros as f64));
        }
        TrialEvent::Annotation { key, value } => {
            obj.insert("event".to_owned(), Value::String("annotation".to_owned()));
            obj.insert("key".to_owned(), Value::String((*key).to_owned()));
            obj.insert("value".to_owned(), Value::Number(*value));
        }
        TrialEvent::Stage { .. } => return None,
    }
    Some(Value::Object(obj).to_string_compact())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_full_request() {
        let body = br#"{
            "seed": 9, "trials": 3,
            "voltages_mv": [400, 440],
            "sampling": "dense", "ecc": "secded",
            "network": {"kind": "mnist_fc", "train_n": 100, "test_n": 50, "epochs": 2},
            "supply": {"kind": "dual", "v_h_mv": 600}
        }"#;
        let spec = decode_spec(body).unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.trials, 3);
        assert_eq!(spec.voltages_mv, vec![400, 440]);
        assert_eq!(spec.sampling, OverlaySampling::Dense);
        assert_eq!(spec.ecc, EccMode::SecDed);
        assert_eq!(
            spec.network,
            NetworkSpec::MnistFc {
                train_n: 100,
                test_n: 50,
                epochs: 2
            }
        );
        assert_eq!(spec.supply, SupplySpec::Dual { v_h_mv: 600 });
    }

    #[test]
    fn defaults_fill_in_and_grid_expands() {
        let spec =
            decode_spec(br#"{"grid": {"start_mv": 360, "stop_mv": 440, "step_mv": 40}}"#).unwrap();
        assert_eq!(spec.voltages_mv, vec![360, 400, 440]);
        assert_eq!(spec.network, NetworkSpec::Toy);
        assert_eq!(spec.sampling, OverlaySampling::SparseTail);
        assert_eq!(spec.trials, 4);
        assert_eq!(spec.supply, SupplySpec::Single);
    }

    #[test]
    fn decodes_geometry_and_scheduled_boost() {
        let spec = decode_spec(
            br#"{"voltages_mv": [400],
                 "supply": {"kind": "boosted_scheduled", "level": 3, "critical_layers": 2},
                 "geometry": {"rows": 256, "cols": 128, "mux": 4, "banks": 2}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.supply,
            SupplySpec::BoostedScheduled {
                level: 3,
                critical_layers: 2
            }
        );
        assert_eq!(
            spec.geometry,
            GeometrySpec::Structural(MacroGeometry::bank_64kbit())
        );
        assert!(spec.canonical_string().starts_with("dante.sweep.v4;"));
        // "calibrated" and omission both select the default (legacy keys).
        let spec = decode_spec(br#"{"voltages_mv": [400], "geometry": "calibrated"}"#).unwrap();
        assert_eq!(spec.geometry, GeometrySpec::Calibrated);
        assert!(
            decode_spec(br#"{"voltages_mv": [400], "geometry": "wide"}"#)
                .unwrap_err()
                .contains("geometry")
        );
        assert!(
            decode_spec(br#"{"voltages_mv": [400], "geometry": {"rows": 256}}"#)
                .unwrap_err()
                .contains("geometry.cols")
        );
        // Invalid dimensions are caught by spec validation, naming the bound.
        let err = decode_spec(
            br#"{"voltages_mv": [400],
                 "geometry": {"rows": 100, "cols": 128, "mux": 4, "banks": 1}}"#,
        )
        .unwrap_err();
        assert!(err.contains("geometry"), "{err}");
        // Fleet bodies accept the same field.
        let fleet = decode_fleet_spec(
            br#"{"dies": 64, "array_bits": 65536, "voltages_mv": [520, 560],
                 "geometry": {"rows": 256, "cols": 128, "mux": 4, "banks": 1}}"#,
        )
        .unwrap();
        assert!(fleet.canonical_string().starts_with("dante.fleet.v2;"));
    }

    #[test]
    fn decodes_supply_and_alexnet_tokens() {
        let spec = decode_spec(br#"{"voltages_mv": [400], "supply": "boosted"}"#).unwrap();
        assert_eq!(spec.supply, SupplySpec::Boosted { level: 4 });
        let spec =
            decode_spec(br#"{"voltages_mv": [400], "supply": {"kind": "boosted", "level": 2}}"#)
                .unwrap();
        assert_eq!(spec.supply, SupplySpec::Boosted { level: 2 });
        let spec = decode_spec(
            br#"{"voltages_mv": [400], "trials": 2,
                 "network": {"kind": "alexnet_conv", "layers": 3, "train_n": 100,
                             "test_n": 20, "epochs": 1}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.network,
            NetworkSpec::AlexNetConv {
                layers: 3,
                train_n: 100,
                test_n: 20,
                epochs: 1
            }
        );
        let spec = decode_spec(br#"{"voltages_mv": [400], "network": "alexnet_conv"}"#).unwrap();
        assert_eq!(
            spec.network,
            NetworkSpec::AlexNetConv {
                layers: 5,
                train_n: 1200,
                test_n: 100,
                epochs: 4
            }
        );
    }

    #[test]
    fn rejections_name_the_field() {
        let cases: [(&[u8], &str); 14] = [
            (b"{", "parse error"),
            (br#"{"voltages_mv": "x"}"#, "voltages_mv"),
            (br#"{"voltages_mv": [400.5]}"#, "millivolts"),
            (br#"{"voltages_mv": [400], "sampling": "best"}"#, "sampling"),
            (br#"{"voltages_mv": [400], "ecc": 3}"#, "ecc"),
            (br#"{"voltages_mv": [400], "network": "vgg"}"#, "vgg"),
            (br#"{"voltages_mv": [400], "trials": -2}"#, "trials"),
            (br#"{"voltages_mv": [200]}"#, "200"),
            (
                br#"{"voltages_mv": [400], "grid": {"start_mv": 1, "stop_mv": 2, "step_mv": 1}}"#,
                "not both",
            ),
            (br#"{"voltages_mv": [400, 400]}"#, "duplicate"),
            (br#"{"voltages_mv": [400], "supply": "dual"}"#, "v_h_mv"),
            (br#"{"voltages_mv": [400], "supply": "turbo"}"#, "turbo"),
            (
                br#"{"voltages_mv": [400], "supply": {"kind": "dual"}}"#,
                "v_h_mv",
            ),
            (
                br#"{"voltages_mv": [400], "supply": {"kind": "boosted", "level": 9}}"#,
                "level",
            ),
        ];
        for (body, needle) in cases {
            let err = decode_spec(body).unwrap_err();
            assert!(
                err.contains(needle),
                "{:?}: expected {needle:?} in {err:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn record_is_a_pure_function_of_spec_and_results() {
        let spec = SweepSpec {
            voltages_mv: vec![400, 480],
            trials: 2,
            ..SweepSpec::toy_default()
        };
        let a = run_spec_json(&spec);
        let b = run_spec_json(&spec);
        assert_eq!(a, b, "two library runs must render identically");
        assert!(a.contains("accuracy mean"));
        assert!(a.contains("dynamic total [J]"));
        assert!(a.contains(&spec.canonical_string()));
    }

    #[test]
    fn record_energy_series_match_the_library_breakdown() {
        let spec = SweepSpec {
            voltages_mv: vec![440],
            trials: 2,
            supply: SupplySpec::Boosted { level: 3 },
            ..SweepSpec::toy_default()
        };
        let prep = spec.prepare();
        let json = build_record(&spec, &prep.run()).to_json_pretty();
        let v = Value::parse(&json).unwrap();
        let series = v.get("series").unwrap().as_array().unwrap();
        let find = |name: &str| -> f64 {
            series
                .iter()
                .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
                .and_then(|s| s.get("points"))
                .and_then(Value::as_array)
                .and_then(|pts| pts[0].as_array())
                .and_then(|p| p[1].as_f64())
                .unwrap_or_else(|| panic!("series {name:?} missing in {json}"))
        };
        let expected = prep.point_energy(dante_circuit::units::Volt::from_millivolts(440.0));
        assert_eq!(find("dynamic sram [J]"), expected.dynamic.sram.joules());
        assert_eq!(find("dynamic logic [J]"), expected.dynamic.logic.joules());
        assert_eq!(
            find("dynamic booster [J]"),
            expected.dynamic.booster.joules()
        );
        assert_eq!(find("dynamic total [J]"), expected.dynamic.total().joules());
    }

    #[test]
    fn iso_query_decodes_and_rejects_unknowns() {
        let spec = decode_iso_query("").unwrap();
        assert_eq!(spec.network, NetworkSpec::Toy);
        assert_eq!(spec.level, 4);
        let spec =
            decode_iso_query("floor=0.9&trials=2&level=3&start_mv=380&stop_mv=460&step_mv=40")
                .unwrap();
        assert_eq!(spec.floor, 0.9);
        assert_eq!(spec.trials, 2);
        assert_eq!(spec.level, 3);
        assert_eq!(spec.voltages_mv, vec![380, 420, 460]);
        for (query, needle) in [
            ("flor=0.9", "flor"),
            ("floor=high", "floor"),
            ("level=9", "level"),
            ("network=vgg", "vgg"),
            ("start_mv=500&stop_mv=400", "stop_mv"),
            ("floor=2.0", "floor"),
        ] {
            let err = decode_iso_query(query).unwrap_err();
            assert!(err.contains(needle), "{query}: {err}");
        }
    }

    #[test]
    fn iso_render_is_deterministic_json() {
        let spec = IsoAccuracySpec {
            trials: 2,
            voltages_mv: vec![400, 480, 560],
            ..IsoAccuracySpec::toy_default()
        };
        let result = spec.solve();
        let a = render_iso(&spec, &result);
        assert_eq!(a, render_iso(&spec, &result));
        let v = Value::parse(&a).unwrap();
        assert!(v.get("clean_accuracy").and_then(Value::as_f64).unwrap() > 0.5);
        assert!(v.get("boosted").unwrap().get("v_logic_mv").is_some());
        assert_eq!(
            v.get("spec").and_then(Value::as_str),
            Some(spec.canonical_string().as_str())
        );
    }

    #[test]
    fn event_lines_are_compact_json() {
        let line = event_line(
            1,
            440,
            &TrialEvent::TrialComplete {
                index: 3,
                micros: 17,
            },
        )
        .unwrap();
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("trial"));
        assert_eq!(v.get("trial").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("mv").and_then(Value::as_f64), Some(440.0));
        let line = event_line(
            0,
            400,
            &TrialEvent::Annotation {
                key: "dynamic_energy_j",
                value: 1.5e-6,
            },
        )
        .unwrap();
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("annotation"));
        assert_eq!(
            v.get("key").and_then(Value::as_str),
            Some("dynamic_energy_j")
        );
        assert_eq!(v.get("value").and_then(Value::as_f64), Some(1.5e-6));
        assert!(event_line(
            0,
            400,
            &TrialEvent::Stage {
                stage: "corrupt",
                micros: 1
            }
        )
        .is_none());
    }

    #[test]
    fn decodes_fault_models_in_sweep_bodies() {
        let spec = decode_spec(br#"{"voltages_mv": [400]}"#).unwrap();
        assert_eq!(spec.fault_model, FaultModel::default());
        let spec =
            decode_spec(br#"{"voltages_mv": [400], "fault_model": "correlated_burst"}"#).unwrap();
        assert_eq!(spec.fault_model, FaultModel::burst_default());
        let spec = decode_spec(
            br#"{"voltages_mv": [400],
                 "fault_model": {"kind": "chip_variation", "mu_spread_mv": 25}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.fault_model,
            FaultModel::ChipVariation {
                mu_mv: dante_sram::model::DEFAULT_MU_MV,
                sigma_mv: dante_sram::model::DEFAULT_SIGMA_MV,
                flip_ppm: dante_sram::model::DEFAULT_FLIP_PPM,
                mu_spread_mv: 25,
                sigma_spread_pct: 10,
            }
        );
        for (body, needle) in [
            (
                br#"{"voltages_mv": [400], "fault_model": "thermal"}"#.as_slice(),
                "thermal",
            ),
            (
                br#"{"voltages_mv": [400], "fault_model": {"kind": "burst", "x": 1}}"#.as_slice(),
                "kind",
            ),
            (
                br#"{"voltages_mv": [400], "fault_model": {"kind": "gaussian", "mu_mv": "hi"}}"#
                    .as_slice(),
                "mu_mv",
            ),
            (
                br#"{"voltages_mv": [400], "fault_model": {"kind": "gaussian", "sigma_mv": 900}}"#
                    .as_slice(),
                "sigma",
            ),
        ] {
            let err = decode_spec(body).unwrap_err();
            assert!(
                err.contains(needle),
                "{:?}: expected {needle:?} in {err:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn decodes_fleet_specs_with_defaults_and_grids() {
        let spec = decode_fleet_spec(b"{}").unwrap();
        assert_eq!(spec, dante::fleet::FleetSpec::toy_default());
        let spec = decode_fleet_spec(
            br#"{"seed": 9, "dies": 64, "array_bits": 65536,
                 "grid": {"start_mv": 520, "stop_mv": 600, "step_mv": 40},
                 "fault_model": "chip_variation"}"#,
        )
        .unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.dies, 64);
        assert_eq!(spec.array_bits, 65536);
        assert_eq!(spec.voltages_mv, vec![520, 560, 600]);
        assert_eq!(spec.fault_model, FaultModel::chip_variation_default());
        for (body, needle) in [
            (br#"{"dies": 0}"#.as_slice(), "dies"),
            (br#"{"voltages_mv": [560, 520]}"#.as_slice(), "increasing"),
            (
                br#"{"voltages_mv": [520], "grid": {"start_mv": 1, "stop_mv": 2, "step_mv": 1}}"#
                    .as_slice(),
                "not both",
            ),
            (br#"{"fault_model": 7}"#.as_slice(), "fault_model"),
        ] {
            let err = decode_fleet_spec(body).unwrap_err();
            assert!(
                err.contains(needle),
                "{:?}: expected {needle:?} in {err:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn fleet_record_is_a_pure_function_of_the_spec() {
        let spec = decode_fleet_spec(
            br#"{"dies": 32, "array_bits": 16384,
                 "grid": {"start_mv": 520, "stop_mv": 600, "step_mv": 40}}"#,
        )
        .unwrap();
        let a = run_fleet_json(&spec);
        let b = run_fleet_json(&spec);
        assert_eq!(a, b, "two library runs must render identically");
        for needle in [
            "\"id\": \"fleet\"",
            "vmin quantile [V]",
            "analytic single-die yield",
        ] {
            assert!(a.contains(needle), "fleet record missing {needle}");
        }
        assert!(a.contains(&spec.canonical_string()));
    }

    #[test]
    fn fleet_event_lines_name_dies() {
        let line = fleet_event_line(&TrialEvent::TrialComplete {
            index: 7,
            micros: 11,
        })
        .unwrap();
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("die"));
        assert_eq!(v.get("die").and_then(Value::as_f64), Some(7.0));
        let line = fleet_event_line(&TrialEvent::FaultBits { index: 7, bits: 3 }).unwrap();
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("die_faults"));
        assert_eq!(v.get("cells").and_then(Value::as_f64), Some(3.0));
        assert!(fleet_event_line(&TrialEvent::Stage {
            stage: "sample",
            micros: 1
        })
        .is_none());
    }

    #[test]
    fn sweep_record_ber_series_follows_the_spec_fault_model() {
        let base = SweepSpec {
            voltages_mv: vec![440],
            trials: 2,
            ..SweepSpec::toy_default()
        };
        let burst = SweepSpec {
            fault_model: FaultModel::burst_default(),
            ..base.clone()
        };
        let ber_of = |spec: &SweepSpec| -> f64 {
            let prep = spec.prepare();
            let json = build_record(spec, &prep.run()).to_json_pretty();
            let v = Value::parse(&json).unwrap();
            v.get("series")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .find(|s| s.get("name").and_then(Value::as_str) == Some("bit error rate"))
                .and_then(|s| s.get("points"))
                .and_then(Value::as_array)
                .and_then(|pts| pts[0].as_array())
                .and_then(|p| p[1].as_f64())
                .unwrap()
        };
        let v = dante_circuit::units::Volt::from_millivolts(440.0);
        assert_eq!(ber_of(&base), base.fault_model.marginal_ber(v));
        assert_eq!(ber_of(&burst), burst.fault_model.marginal_ber(v));
        assert!(
            ber_of(&burst) > ber_of(&base),
            "weak-cell bursts raise the marginal BER"
        );
    }

    #[test]
    fn spec_encoders_round_trip_through_the_decoders() {
        let spec = SweepSpec {
            seed: 97,
            trials: 3,
            voltages_mv: vec![400, 440],
            sampling: OverlaySampling::Dense,
            ecc: EccMode::SecDed,
            network: NetworkSpec::MnistFc {
                train_n: 100,
                test_n: 50,
                epochs: 2,
            },
            supply: SupplySpec::Dual { v_h_mv: 600 },
            fault_model: FaultModel::burst_default(),
            geometry: GeometrySpec::Structural(MacroGeometry::bank_64kbit()),
        };
        let body = encode_spec_value(&spec).to_string_compact();
        let decoded = decode_spec(body.as_bytes()).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(
            decoded.canonical_string(),
            spec.canonical_string(),
            "wire round-trip must preserve the cache key"
        );
        let fleet = decode_fleet_spec(
            br#"{"seed": 9, "dies": 64, "array_bits": 65536,
                 "voltages_mv": [520, 560, 600],
                 "fault_model": "chip_variation"}"#,
        )
        .unwrap();
        let body = encode_fleet_value(&fleet).to_string_compact();
        let decoded = decode_fleet_spec(body.as_bytes()).unwrap();
        assert_eq!(decoded, fleet);
        assert_eq!(decoded.canonical_string(), fleet.canonical_string());
    }

    #[test]
    fn float_bits_survive_the_wire_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            0.971_234_567_890_123_4,
        ] {
            let back = f64_from_hex(&f64_hex(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        assert!(f64_from_hex("abc").is_err(), "short strings rejected");
        assert!(f64_from_hex("zzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn shard_sweep_codecs_round_trip_and_validate_windows() {
        let spec = SweepSpec {
            voltages_mv: vec![400, 480],
            trials: 5,
            ..SweepSpec::toy_default()
        };
        let body = encode_shard_sweep_request(&spec, 2, 3);
        let (decoded, offset, count) = decode_shard_sweep_request(body.as_bytes()).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!((offset, count), (2, 3));
        // Window past the trial count is rejected.
        let bad = encode_shard_sweep_request(&spec, 3, 3);
        assert!(decode_shard_sweep_request(bad.as_bytes())
            .unwrap_err()
            .contains("window"));
        let per_point = vec![
            vec![0.5, 1.0 / 3.0, 0.971],
            vec![0.25, -0.0, f64::MIN_POSITIVE],
        ];
        let decoded =
            decode_shard_sweep_response(encode_shard_sweep_response(&per_point).as_bytes())
                .unwrap();
        assert_eq!(decoded.len(), per_point.len());
        for (a, b) in decoded.iter().flatten().zip(per_point.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Error payloads from a peer decode to Err, not a panic.
        assert!(decode_shard_sweep_response(br#"{"error": "boom"}"#).is_err());
    }

    #[test]
    fn shard_fleet_codecs_round_trip_and_validate_windows() {
        let spec = decode_fleet_spec(br#"{"dies": 7, "array_bits": 16384}"#).unwrap();
        let body = encode_shard_fleet_request(&spec, 3, 4);
        let (decoded, offset, count) = decode_shard_fleet_request(body.as_bytes()).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!((offset, count), (3, 4));
        let bad = encode_shard_fleet_request(&spec, 4, 4);
        assert!(decode_shard_fleet_request(bad.as_bytes())
            .unwrap_err()
            .contains("window"));
        let dies = vec![
            DieOutcome {
                v_min: 0.561_234_567_89,
                censored: false,
                fault_cells: 3,
            },
            DieOutcome {
                v_min: 0.5,
                censored: true,
                fault_cells: 0,
            },
        ];
        let decoded =
            decode_shard_fleet_response(encode_shard_fleet_response(&dies).as_bytes()).unwrap();
        assert_eq!(decoded, dies);
        assert_eq!(decoded[0].v_min.to_bits(), dies[0].v_min.to_bits());
        assert!(decode_shard_fleet_response(br#"{"error": "boom"}"#).is_err());
    }

    #[test]
    fn retrain_body_decodes_and_rejections_name_the_field() {
        let spec = decode_retrain_spec(b"{}").unwrap();
        assert_eq!(spec, RetrainSpec::toy_default());
        let spec = decode_retrain_spec(
            br#"{"seed": 11, "target_mv": 420, "epochs": 3, "resample": "hold",
                 "grid": {"start_mv": 360, "stop_mv": 440, "step_mv": 40},
                 "trials": 2, "floor": 0.9, "level": 3, "sampling": "dense",
                 "ecc": "secded", "fault_model": "correlated_burst",
                 "network": "mnist_fc"}"#,
        )
        .unwrap();
        assert_eq!(spec.seed, 11);
        assert_eq!(spec.target_mv, 420);
        assert_eq!(spec.epochs, 3);
        assert_eq!(spec.resample, ResamplePolicy::Hold);
        assert_eq!(spec.voltages_mv, vec![360, 400, 440]);
        assert_eq!(spec.trials, 2);
        assert_eq!(spec.floor, 0.9);
        assert_eq!(spec.level, 3);
        assert_eq!(spec.sampling, OverlaySampling::Dense);
        assert_eq!(spec.ecc, EccMode::SecDed);
        assert_eq!(spec.fault_model, FaultModel::burst_default());
        assert!(matches!(spec.network, NetworkSpec::MnistFc { .. }));

        let cases: [(&[u8], &str); 7] = [
            (br#"{"target_mv": 200}"#, "target_mv"),
            (br#"{"epochs": 0}"#, "epochs"),
            (br#"{"epochs": 40}"#, "epochs"),
            (br#"{"resample": "sometimes"}"#, "resample"),
            (br#"{"floor": "high"}"#, "floor"),
            (br#"{"network": "vgg"}"#, "vgg"),
            (
                br#"{"voltages_mv": [400], "grid": {"start_mv": 1, "stop_mv": 2, "step_mv": 1}}"#,
                "not both",
            ),
        ];
        for (body, needle) in cases {
            let err = decode_retrain_spec(body).unwrap_err();
            assert!(
                err.contains(needle),
                "{:?}: expected {needle:?} in {err:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn retrain_render_is_deterministic_and_carries_the_comparison() {
        let spec = RetrainSpec {
            trials: 2,
            epochs: 1,
            voltages_mv: vec![360, 420, 480, 540],
            ..RetrainSpec::toy_default()
        };
        let a = run_retrain_json(&spec);
        assert_eq!(a, run_retrain_json(&spec), "renders must be byte-identical");
        let v = Value::parse(&a).unwrap();
        assert_eq!(
            v.get("spec").and_then(Value::as_str),
            Some(spec.canonical_string().as_str())
        );
        let digest = v.get("weight_digest").and_then(Value::as_str).unwrap();
        assert_eq!(digest.len(), 16, "digest is 16 hex chars, got {digest:?}");
        let epochs = v.get("epochs").and_then(Value::as_array).unwrap();
        assert_eq!(epochs.len(), 1);
        assert!(epochs[0].get("loss").and_then(Value::as_f64).is_some());
        // Baseline and hardened sub-objects render exactly like /v1/iso-accuracy.
        for key in ["baseline", "hardened"] {
            let solve = v.get(key).unwrap();
            assert!(solve
                .get("clean_accuracy")
                .and_then(Value::as_f64)
                .is_some());
            assert!(solve.get("single").is_some());
            assert!(solve.get("boosted_over_single").is_some());
        }
        assert!(v.get("vmin_gap_mv").unwrap().get("single").is_some());
        assert!(v.get("energy_ratio").unwrap().get("dual").is_some());
    }

    #[test]
    fn retrain_event_lines_are_compact_json() {
        let line = retrain_event_line(&RetrainEvent::EpochStart { epoch: 2 });
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("epoch_start"));
        assert_eq!(v.get("epoch").and_then(Value::as_f64), Some(2.0));
        let line = retrain_event_line(&RetrainEvent::EpochDone {
            epoch: 2,
            loss: 0.5,
            clean_accuracy: 0.9,
            faulty_accuracy: 0.8,
        });
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("epoch_done"));
        assert_eq!(v.get("loss").and_then(Value::as_f64), Some(0.5));
        assert_eq!(v.get("clean_accuracy").and_then(Value::as_f64), Some(0.9));
        assert_eq!(v.get("faulty_accuracy").and_then(Value::as_f64), Some(0.8));
    }

    #[test]
    fn error_body_escapes_cleanly() {
        let body = error_body("bad \"thing\" at byte 3");
        let v = Value::parse(&body).unwrap();
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("bad \"thing\" at byte 3")
        );
    }
}
