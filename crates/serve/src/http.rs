//! A minimal HTTP/1.1 layer over `std::net`.
//!
//! Implements exactly what the sweep service needs — request parsing with
//! hard size and time limits, fixed-length and chunked responses, and
//! keep-alive — with no external dependencies. Not a general-purpose HTTP
//! implementation: requests must carry `Content-Length` bodies (chunked
//! *request* bodies are rejected with 411), and only the small header set
//! the service inspects is retained.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (without the `?`), empty if absent.
    pub query: String,
    /// Body bytes (empty when the request carried none).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The `X-Dante-Client` header value (empty when absent). Bulk-lane
    /// fairness is keyed on this token, so one client's backlog cannot
    /// starve another's.
    pub client: String,
}

impl Request {
    /// The value of query parameter `key` (`k=v` pairs split on `&`), if
    /// present. No percent-decoding: the service's parameters are plain
    /// tokens.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be served; each maps to one response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Clean EOF before any request byte (keep-alive connection closed).
    Closed,
    /// Socket error or timeout mid-request.
    Io(String),
    /// Malformed request head.
    BadRequest(String),
    /// Head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Body exceeded the configured cap; the payload carries the cap.
    BodyTooLarge(usize),
    /// Request body without a `Content-Length` (e.g. chunked upload).
    LengthRequired,
}

/// Reads one request from a connection.
///
/// `max_body` caps the declared `Content-Length`; oversized requests fail
/// *before* the body is read, so a hostile client cannot make the server
/// buffer it.
///
/// # Errors
///
/// Returns a [`RequestError`] describing which limit or syntax rule failed.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, RequestError> {
    let mut head = Vec::new();
    // Read byte-wise up to the blank line; BufReader makes this cheap and
    // guarantees we never consume bytes past the head we aren't meant to.
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Err(RequestError::Closed);
                }
                return Err(RequestError::BadRequest("truncated request head".into()));
            }
            Ok(_) => head.push(byte[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(if head.is_empty() {
                    RequestError::Closed
                } else {
                    RequestError::Io("timed out reading request head".into())
                });
            }
            Err(e) => return Err(RequestError::Io(e.to_string())),
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::HeadTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| RequestError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::BadRequest(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));

    let mut content_length: Option<usize> = None;
    let mut keep_alive = version == "HTTP/1.1"; // 1.1 default; 1.0 closes.
    let mut expects_continue = false;
    let mut has_transfer_encoding = false;
    let mut client = String::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::BadRequest(format!(
                "malformed header line {line:?}"
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = Some(value.parse().map_err(|_| {
                    RequestError::BadRequest(format!("bad Content-Length {value:?}"))
                })?);
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" => expects_continue = value.eq_ignore_ascii_case("100-continue"),
            "transfer-encoding" => has_transfer_encoding = true,
            "x-dante-client" => client = value.to_owned(),
            _ => {}
        }
    }
    if has_transfer_encoding {
        return Err(RequestError::LengthRequired);
    }

    let body = match content_length {
        None | Some(0) => Vec::new(),
        Some(n) if n > max_body => return Err(RequestError::BodyTooLarge(max_body)),
        Some(n) => {
            if expects_continue {
                let _ = reader.get_ref().write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
            }
            let mut body = vec![0u8; n];
            reader
                .read_exact(&mut body)
                .map_err(|e| RequestError::Io(format!("short body read: {e}")))?;
            body
        }
    };
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query: query.to_owned(),
        body,
        keep_alive,
        client,
    })
}

/// Reason phrase for the status codes the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a fixed-length response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress: one header write, then any
/// number of [`chunk`](Self::chunk)s, then [`finish`](Self::finish). The
/// connection always closes afterwards (streams are unbounded, so reusing
/// the connection would require trailer bookkeeping the service doesn't
/// need).
#[derive(Debug)]
pub struct ChunkedResponse<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedResponse<'a> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn start(stream: &'a mut TcpStream, status: u16, content_type: &str) -> io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status),
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(Self { stream })
    }

    /// Writes one non-empty chunk (empty payloads are skipped: an empty
    /// chunk is the stream terminator in the wire format).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn chunk(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", payload.len())?;
        self.stream.write_all(payload)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminating zero chunk, ending the stream cleanly.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Applies the service's socket timeouts (read and write) to a connection.
pub fn configure_stream(stream: &TcpStream, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn round_trip(raw: &[u8], max_body: usize) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Hold the socket open briefly so the reader sees a live peer.
            thread::sleep(Duration::from_millis(50));
        });
        let (stream, _) = listener.accept().unwrap();
        configure_stream(&stream, Duration::from_secs(2));
        let mut reader = BufReader::new(stream);
        let out = read_request(&mut reader, max_body);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = round_trip(
            b"POST /v1/sweep?mode=async&x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
            64,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweep");
        assert_eq!(req.query_param("mode"), Some("async"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.client, "", "no client token sent");
    }

    #[test]
    fn client_token_header_is_retained() {
        let req = round_trip(
            b"GET /healthz HTTP/1.1\r\nX-Dante-Client: team-a\r\n\r\n",
            64,
        )
        .unwrap();
        assert_eq!(req.client, "team-a");
        // Header names are case-insensitive.
        let req = round_trip(b"GET / HTTP/1.1\r\nx-dante-CLIENT:  b \r\n\r\n", 64).unwrap();
        assert_eq!(req.client, "b");
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = round_trip(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 64).unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let err = round_trip(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 64).unwrap_err();
        assert_eq!(err, RequestError::BodyTooLarge(64));
    }

    #[test]
    fn chunked_request_bodies_are_refused() {
        let err =
            round_trip(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 64).unwrap_err();
        assert_eq!(err, RequestError::LengthRequired);
    }

    #[test]
    fn malformed_request_lines_error() {
        for raw in [
            &b"NONSENSE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
        ] {
            assert!(
                matches!(round_trip(raw, 64), Err(RequestError::BadRequest(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn immediate_eof_reports_closed() {
        assert_eq!(round_trip(b"", 64).unwrap_err(), RequestError::Closed);
    }
}
