//! Integration tests for the sweep service, driven entirely through raw
//! `std::net::TcpStream` clients — no external HTTP client.
//!
//! Covers the acceptance criteria: HTTP responses byte-identical to the
//! library API (cold and cached), failure paths (413/400/429), concurrent
//! load returning only 200/429 with uncorrupted bodies, and clean shutdown
//! while an event stream is open.

use dante::sweep::SweepSpec;
use dante_serve::server::{start, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed raw response.
#[derive(Debug)]
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("body is UTF-8")
    }
}

/// Reads a response head + fixed-length body from `reader`.
fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header colon");
        let (name, value) = (name.trim().to_owned(), value.trim().to_owned());
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().expect("content length");
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    Response {
        status,
        headers,
        body,
    }
}

/// One-shot exchange over a fresh connection.
fn exchange(addr: SocketAddr, raw: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    stream.write_all(raw).expect("write");
    stream.flush().expect("flush");
    read_response(&mut BufReader::new(stream))
}

fn post_sweep(addr: SocketAddr, payload: &str) -> Response {
    let raw = format!(
        "POST /v1/sweep HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    );
    exchange(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> Response {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn boot(config: ServerConfig) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("boot server")
}

#[test]
fn http_sweep_matches_library_api_cold_and_cached() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();

    let spec = SweepSpec {
        voltages_mv: vec![380, 460, 540],
        trials: 3,
        ..SweepSpec::toy_default()
    };
    let reference = dante_serve::api::run_spec_json(&spec);
    let payload = r#"{"network": "toy", "trials": 3, "voltages_mv": [380, 460, 540]}"#;

    let cold = post_sweep(addr, payload);
    assert_eq!(cold.status, 200, "{}", cold.body_str());
    assert_eq!(cold.header("X-Dante-Cache"), Some("miss"));
    assert_eq!(
        cold.body_str(),
        reference,
        "HTTP cold response must be byte-identical to the library API"
    );

    let warm = post_sweep(addr, payload);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("X-Dante-Cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "cache hit must be byte-identical");

    // Same spec spelled differently (grid form) hits the same cache entry.
    let grid = post_sweep(
        addr,
        r#"{"network": "toy", "trials": 3, "grid": {"start_mv": 380, "stop_mv": 540, "step_mv": 80}}"#,
    );
    assert_eq!(grid.status, 200);
    assert_eq!(grid.header("X-Dante-Cache"), Some("hit"));
    assert_eq!(grid.body, cold.body);

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let handle = boot(ServerConfig {
        max_body_bytes: 128,
        ..ServerConfig::default()
    });
    let big = format!(r#"{{"padding": "{}"}}"#, "x".repeat(4096));
    let response = post_sweep(handle.addr(), &big);
    assert_eq!(response.status, 413);
    assert!(
        response.body_str().contains("128"),
        "diagnostic names the cap: {}",
        response.body_str()
    );
    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn malformed_json_gets_400_with_diagnostic_payload() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();

    let response = post_sweep(addr, r#"{"trials": "#);
    assert_eq!(response.status, 400);
    let body = response.body_str();
    assert!(body.starts_with(r#"{"error":"#), "JSON error body: {body}");
    assert!(
        body.contains("byte"),
        "parse diagnostics include offset: {body}"
    );

    // Well-formed JSON with an invalid field is also a 400, naming the field.
    let response = post_sweep(addr, r#"{"voltages_mv": [400], "trials": 0}"#);
    assert_eq!(response.status, 400);
    assert!(
        response.body_str().contains("trials"),
        "{}",
        response.body_str()
    );

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn full_queue_gets_429_with_retry_after() {
    // workers = 0: jobs queue but never drain, so queue-full is
    // deterministic, not a race against worker speed.
    let handle = boot(ServerConfig {
        workers: 0,
        queue_depth: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Distinct specs (different seeds) so they don't dedup onto one job;
    // async submission so clients don't block on jobs that will never run.
    for seed in 0..2 {
        let raw = format!(r#"{{"network": "toy", "voltages_mv": [400], "seed": {seed}}}"#);
        let response = exchange(
            addr,
            format!(
                "POST /v1/sweep?mode=async HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{raw}",
                raw.len(),
            )
            .as_bytes(),
        );
        assert_eq!(response.status, 202, "{}", response.body_str());
    }
    let raw = r#"{"network": "toy", "voltages_mv": [400], "seed": 99}"#;
    let response = exchange(
        addr,
        format!(
            "POST /v1/sweep?mode=async HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{raw}",
            raw.len(),
        )
        .as_bytes(),
    );
    assert_eq!(response.status, 429, "{}", response.body_str());
    assert_eq!(response.header("Retry-After"), Some("1"));
    assert!(response.body_str().contains("queue full"));

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn shutdown_while_streaming_closes_the_chunk_stream_cleanly() {
    let handle = boot(ServerConfig {
        workers: 0, // job stays queued, so the stream must outlive our shutdown
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let raw = r#"{"network": "toy", "voltages_mv": [400], "seed": 7}"#;
    let submitted = exchange(
        addr,
        format!(
            "POST /v1/sweep?mode=async HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{raw}",
            raw.len(),
        )
        .as_bytes(),
    );
    assert_eq!(submitted.status, 202);
    let job_id = {
        let body = submitted.body_str();
        let needle = r#""job":""#;
        let start = body.find(needle).expect("job id in body") + needle.len();
        body[start..].split('"').next().unwrap().to_owned()
    };

    // Open the event stream, then shut the server down underneath it.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "GET /v1/jobs/{job_id}/events HTTP/1.1\r\nHost: t\r\n\r\n"
    )
    .expect("write");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    assert!(status_line.contains("200"), "{status_line}");
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        if line.trim_end().is_empty() {
            break;
        }
        if line.to_ascii_lowercase().starts_with("transfer-encoding") {
            assert!(line.contains("chunked"), "{line}");
        }
    }

    handle.shutdown();

    // The stream must end with a well-formed chunked tail: data chunks,
    // then the zero-length terminator — not an abrupt reset.
    let mut tail = Vec::new();
    reader
        .read_to_end(&mut tail)
        .expect("stream closes cleanly");
    let tail = String::from_utf8(tail).expect("chunked payload is UTF-8");
    assert!(
        tail.contains(r#"{"event":"shutdown"}"#) || tail.contains(r#""status":"cancelled""#),
        "stream announces shutdown: {tail}"
    );
    assert!(
        tail.ends_with("0\r\n\r\n"),
        "chunked stream is terminated cleanly: {tail:?}"
    );

    assert!(handle.join(), "server drains cleanly");
}

#[test]
fn events_stream_replays_progress_for_a_completed_job() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();

    let raw = r#"{"network": "toy", "trials": 2, "voltages_mv": [400, 500], "seed": 11}"#;
    let done = post_sweep(addr, raw);
    assert_eq!(done.status, 200, "{}", done.body_str());

    // Find the job id via the async route: same digest attaches or, once
    // done, serves from cache — so resubmit async and use the jobs list via
    // status endpoint instead. Simplest: submit a *new* spec async and poll.
    let raw2 = r#"{"network": "toy", "trials": 2, "voltages_mv": [400, 500], "seed": 12}"#;
    let submitted = exchange(
        addr,
        format!(
            "POST /v1/sweep?mode=async HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{raw2}",
            raw2.len(),
        )
        .as_bytes(),
    );
    assert_eq!(submitted.status, 202);
    let body = submitted.body_str().to_owned();
    let needle = r#""job":""#;
    let start = body.find(needle).expect("job id") + needle.len();
    let job_id = body[start..].split('"').next().unwrap().to_owned();

    // Poll status until done.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = get(addr, &format!("/v1/jobs/{job_id}"));
        assert_eq!(status.status, 200);
        if status.body_str().contains(r#""status": "done""#)
            || status.body_str().contains(r#""status":"done""#)
        {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job finished in time");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The raw result endpoint serves the byte-exact body.
    let result = get(addr, &format!("/v1/jobs/{job_id}/result"));
    assert_eq!(result.status, 200);
    assert!(result.body_str().contains("\"id\": \"sweep\""));

    // The event stream replays history and terminates with the end marker.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "GET /v1/jobs/{job_id}/events HTTP/1.1\r\nHost: t\r\n\r\n"
    )
    .expect("write");
    let mut all = Vec::new();
    let mut reader = BufReader::new(stream);
    reader.read_to_end(&mut all).expect("read stream");
    let text = String::from_utf8(all).expect("UTF-8");
    for needle in [
        r#""event":"point_start""#,
        r#""event":"trial""#,
        r#""event":"point_done""#,
        r#""event":"end","status":"done""#,
    ] {
        assert!(text.contains(needle), "missing {needle} in stream:\n{text}");
    }
    assert!(text.ends_with("0\r\n\r\n"), "clean chunked termination");

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn concurrent_load_returns_only_200_or_429_and_drains_cleanly() {
    let handle = boot(ServerConfig {
        workers: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // 12 clients: 4 share one spec (dedup + cache), 8 use distinct seeds to
    // contend for the queue. Every response must be a complete, valid 200
    // or 429 — never a short read, never a mixed body.
    let threads: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                let seed = if i < 4 { 1000 } else { 2000 + i };
                let payload = format!(
                    r#"{{"network": "toy", "trials": 2, "voltages_mv": [420, 480], "seed": {seed}}}"#
                );
                let response = post_sweep(addr, &payload);
                (seed, response)
            })
        })
        .collect();

    let mut bodies_by_seed: std::collections::HashMap<u64, Vec<u8>> =
        std::collections::HashMap::new();
    let mut ok = 0usize;
    let mut busy = 0usize;
    for thread in threads {
        let (seed, response) = thread.join().expect("client thread");
        match response.status {
            200 => {
                ok += 1;
                assert!(
                    response.body_str().contains("\"id\": \"sweep\""),
                    "valid record body"
                );
                // All 200s for one seed must agree byte-for-byte.
                let prior = bodies_by_seed.insert(seed, response.body.clone());
                if let Some(prior) = prior {
                    assert_eq!(prior, response.body, "corrupted response for seed {seed}");
                }
            }
            429 => {
                busy += 1;
                assert!(response.body_str().contains("queue full"));
            }
            other => panic!("unexpected status {other}: {}", response.body_str()),
        }
    }
    assert!(
        ok >= 1,
        "at least the deduped spec must complete ({ok} ok, {busy} busy)"
    );
    assert_eq!(ok + busy, 12);

    // The deduped seed's four clients all saw identical bytes (checked
    // above); service stays healthy and drains.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    handle.shutdown();
    assert!(handle.join(), "clean drain under load");
}

#[test]
fn alexnet_sweep_energy_is_byte_identical_to_the_library_under_each_supply() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();

    // Tiny proxy CNN (disk-cached after the first preparation) over two
    // grid points, under each of the three supply configurations.
    let network =
        r#"{"kind": "alexnet_conv", "layers": 2, "train_n": 120, "test_n": 20, "epochs": 1}"#;
    let supplies = [
        ("single", r#""single""#),
        ("boosted", r#"{"kind": "boosted", "level": 3}"#),
        ("dual", r#"{"kind": "dual", "v_h_mv": 600}"#),
    ];
    for (name, supply) in supplies {
        let payload = format!(
            r#"{{"network": {network}, "supply": {supply}, "trials": 2, "voltages_mv": [400, 440], "seed": 5}}"#
        );
        let spec = dante_serve::api::decode_spec(payload.as_bytes()).expect(name);
        let reference = dante_serve::api::run_spec_json(&spec);
        let response = post_sweep(addr, &payload);
        assert_eq!(response.status, 200, "{name}: {}", response.body_str());
        assert_eq!(
            response.body_str(),
            reference,
            "{name}: served sweep must be byte-identical to the library path"
        );
        // The served energy series carries exactly the dante-energy value
        // for this point (same f64, hence the same rendered bytes).
        let expected = spec
            .prepare()
            .point_energy(dante_circuit::units::Volt::from_millivolts(400.0));
        let parsed = dante_bench::json::Value::parse(response.body_str()).expect("valid JSON");
        let served = parsed
            .get("series")
            .and_then(dante_bench::json::Value::as_array)
            .expect("series array")
            .iter()
            .find(|s| {
                s.get("name").and_then(dante_bench::json::Value::as_str)
                    == Some("dynamic total [J]")
            })
            .and_then(|s| s.get("points"))
            .and_then(dante_bench::json::Value::as_array)
            .and_then(|pts| pts[0].as_array())
            .and_then(|p| p[1].as_f64())
            .expect("dynamic total point");
        assert_eq!(
            served,
            expected.dynamic.total().joules(),
            "{name}: served energy equals the dante-energy computation exactly"
        );
    }

    // All three are energy sweeps (alexnet workload), so the gauge says 3.
    let metrics = get(addr, "/metrics");
    assert!(
        metrics
            .body_str()
            .contains("dante_serve_energy_sweep_jobs_total 3"),
        "{}",
        metrics.body_str()
    );

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn duplicate_voltages_are_rejected_with_400() {
    let handle = boot(ServerConfig::default());
    let response = post_sweep(
        handle.addr(),
        r#"{"network": "toy", "voltages_mv": [400, 440, 400]}"#,
    );
    assert_eq!(response.status, 400);
    assert!(
        response.body_str().contains("duplicate"),
        "{}",
        response.body_str()
    );
    assert!(
        response.body_str().contains("400"),
        "diagnostic names the repeated voltage: {}",
        response.body_str()
    );
    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn iso_accuracy_endpoint_solves_caches_and_rejects() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();
    let query = "floor=0.9&trials=2&start_mv=380&stop_mv=560&step_mv=60";

    let spec = dante_serve::api::decode_iso_query(query).expect("valid query");
    let reference = dante_serve::api::render_iso(&spec, &spec.solve());

    let cold = get(addr, &format!("/v1/iso-accuracy?{query}"));
    assert_eq!(cold.status, 200, "{}", cold.body_str());
    assert_eq!(cold.header("X-Dante-Cache"), Some("miss"));
    assert_eq!(
        cold.body_str(),
        reference,
        "served solve must be byte-identical to the library path"
    );

    let warm = get(addr, &format!("/v1/iso-accuracy?{query}"));
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("X-Dante-Cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);

    // A typo'd key is a 400 naming the key, not a silent default.
    let bad = get(addr, "/v1/iso-accuracy?flor=0.9");
    assert_eq!(bad.status, 400);
    assert!(bad.body_str().contains("flor"), "{}", bad.body_str());

    // Wrong method on the endpoint is 405.
    let raw = b"POST /v1/iso-accuracy HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
    assert_eq!(exchange(addr, raw).status, 405);

    // One cold solve, one cache hit in the counters.
    let metrics = get(addr, "/metrics");
    assert!(
        metrics
            .body_str()
            .contains("dante_serve_iso_accuracy_solves_total 1"),
        "{}",
        metrics.body_str()
    );
    assert!(
        metrics
            .body_str()
            .contains("dante_serve_iso_accuracy_cache_hits_total 1"),
        "{}",
        metrics.body_str()
    );

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn fleet_endpoint_serves_caches_and_streams_per_die_progress() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();
    let payload = r#"{"dies": 48, "array_bits": 65536, "grid": {"start_mv": 520, "stop_mv": 600, "step_mv": 40}, "fault_model": "chip_variation"}"#;
    let post_fleet = |payload: &str, query: &str| {
        exchange(
            addr,
            format!(
                "POST /v1/fleet{query} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
                payload.len(),
            )
            .as_bytes(),
        )
    };

    let spec = dante_serve::api::decode_fleet_spec(payload.as_bytes()).expect("valid fleet spec");
    let reference = dante_serve::api::run_fleet_json(&spec);

    let cold = post_fleet(payload, "");
    assert_eq!(cold.status, 200, "{}", cold.body_str());
    assert_eq!(cold.header("X-Dante-Cache"), Some("miss"));
    assert_eq!(
        cold.body_str(),
        reference,
        "served fleet sweep must be byte-identical to the library path"
    );

    let warm = post_fleet(payload, "");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("X-Dante-Cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "fleet cache hit is byte-identical");

    // Async submission of a distinct fleet: 202 ticket, then the event
    // stream replays per-die progress and the result endpoint serves the
    // byte-exact record.
    let payload2 = r#"{"seed": 3, "dies": 16, "array_bits": 65536, "grid": {"start_mv": 520, "stop_mv": 600, "step_mv": 40}}"#;
    let submitted = post_fleet(payload2, "?mode=async");
    assert_eq!(submitted.status, 202, "{}", submitted.body_str());
    let body = submitted.body_str().to_owned();
    let needle = r#""job":""#;
    let start = body.find(needle).expect("job id") + needle.len();
    let job_id = body[start..].split('"').next().unwrap().to_owned();

    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = get(addr, &format!("/v1/jobs/{job_id}"));
        assert_eq!(status.status, 200);
        if status.body_str().contains(r#""status":"done""#)
            || status.body_str().contains(r#""status": "done""#)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "fleet finished in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "GET /v1/jobs/{job_id}/events HTTP/1.1\r\nHost: t\r\n\r\n"
    )
    .expect("write");
    let mut all = Vec::new();
    let mut reader = BufReader::new(stream);
    reader.read_to_end(&mut all).expect("read stream");
    let text = String::from_utf8(all).expect("UTF-8");
    for needle in [
        r#""event":"fleet_start""#,
        r#""event":"die""#,
        r#""event":"die_faults""#,
        r#""event":"fleet_done""#,
        r#""event":"end","status":"done""#,
    ] {
        assert!(text.contains(needle), "missing {needle} in stream:\n{text}");
    }

    // Invalid fleet specs are 400s naming the bound.
    let bad = post_fleet(r#"{"dies": 0}"#, "");
    assert_eq!(bad.status, 400);
    assert!(bad.body_str().contains("dies"), "{}", bad.body_str());

    // The fleet counters tick: two cold fleets, one cache hit.
    let metrics = get(addr, "/metrics");
    assert!(
        metrics
            .body_str()
            .contains("dante_serve_fleet_jobs_total 2"),
        "{}",
        metrics.body_str()
    );
    assert!(
        metrics
            .body_str()
            .contains("dante_serve_fleet_cache_hits_total 1"),
        "{}",
        metrics.body_str()
    );

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn retrain_endpoint_hardens_caches_and_streams_epoch_progress() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();
    let payload = r#"{"network": "toy", "target_mv": 380, "epochs": 1, "trials": 2, "voltages_mv": [360, 420, 480, 540], "seed": 9}"#;
    let post_retrain = |payload: &str, query: &str| {
        exchange(
            addr,
            format!(
                "POST /v1/retrain{query} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
                payload.len(),
            )
            .as_bytes(),
        )
    };

    let spec =
        dante_serve::api::decode_retrain_spec(payload.as_bytes()).expect("valid retrain spec");
    let reference = dante_serve::api::run_retrain_json(&spec);

    let cold = post_retrain(payload, "");
    assert_eq!(cold.status, 200, "{}", cold.body_str());
    assert_eq!(cold.header("X-Dante-Cache"), Some("miss"));
    assert_eq!(
        cold.body_str(),
        reference,
        "served retrain artifact must be byte-identical to the library path"
    );
    assert!(cold.body_str().contains(r#""weight_digest":"#));
    assert!(cold.body_str().contains(r#""vmin_gap_mv":"#));

    let warm = post_retrain(payload, "");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("X-Dante-Cache"), Some("hit"));
    assert_eq!(warm.body, cold.body, "retrain cache hit is byte-identical");

    // Async submission of a distinct spec: 202 ticket, then the NDJSON
    // event stream replays per-epoch progress and terminates.
    let payload2 = r#"{"network": "toy", "target_mv": 380, "epochs": 2, "trials": 2, "voltages_mv": [360, 420, 480, 540], "seed": 10}"#;
    let submitted = post_retrain(payload2, "?mode=async");
    assert_eq!(submitted.status, 202, "{}", submitted.body_str());
    let body = submitted.body_str().to_owned();
    let needle = r#""job":""#;
    let start = body.find(needle).expect("job id") + needle.len();
    let job_id = body[start..].split('"').next().unwrap().to_owned();

    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = get(addr, &format!("/v1/jobs/{job_id}"));
        assert_eq!(status.status, 200);
        if status.body_str().contains(r#""status":"done""#)
            || status.body_str().contains(r#""status": "done""#)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "retrain finished in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "GET /v1/jobs/{job_id}/events HTTP/1.1\r\nHost: t\r\n\r\n"
    )
    .expect("write");
    let mut all = Vec::new();
    let mut reader = BufReader::new(stream);
    reader.read_to_end(&mut all).expect("read stream");
    let text = String::from_utf8(all).expect("UTF-8");
    for needle in [
        r#"{"epoch":0,"event":"epoch_start"}"#,
        r#""epoch":0,"event":"epoch_done""#,
        r#"{"epoch":1,"event":"epoch_start"}"#,
        r#""epoch":1,"event":"epoch_done""#,
        r#""event":"end","status":"done""#,
    ] {
        assert!(text.contains(needle), "missing {needle} in stream:\n{text}");
    }

    // Malformed specs are 400s naming the offending field.
    let bad = post_retrain(r#"{"epochs": 0}"#, "");
    assert_eq!(bad.status, 400);
    assert!(bad.body_str().contains("epochs"), "{}", bad.body_str());
    let bad = post_retrain(r#"{"resample": "sometimes"}"#, "");
    assert_eq!(bad.status, 400);
    assert!(bad.body_str().contains("resample"), "{}", bad.body_str());

    // The retrain counters tick: two cold runs, one cache hit.
    let metrics = get(addr, "/metrics");
    assert!(
        metrics
            .body_str()
            .contains("dante_serve_retrain_jobs_total 2"),
        "{}",
        metrics.body_str()
    );
    assert!(
        metrics
            .body_str()
            .contains("dante_serve_retrain_cache_hits_total 1"),
        "{}",
        metrics.body_str()
    );

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn sweep_with_fault_model_keys_a_distinct_cache_family() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();

    let default_payload =
        r#"{"network": "toy", "trials": 2, "voltages_mv": [420, 480], "seed": 77}"#;
    let burst_payload = r#"{"network": "toy", "trials": 2, "voltages_mv": [420, 480], "seed": 77, "fault_model": "correlated_burst"}"#;

    let base = post_sweep(addr, default_payload);
    assert_eq!(base.status, 200, "{}", base.body_str());
    let burst = post_sweep(addr, burst_payload);
    assert_eq!(burst.status, 200, "{}", burst.body_str());
    // Distinct cache keys (v1 vs v3 canonical strings) — the second run is
    // a cold miss, not a hit on the default-model entry.
    assert_eq!(burst.header("X-Dante-Cache"), Some("miss"));
    assert_ne!(
        base.header("X-Dante-Digest"),
        burst.header("X-Dante-Digest"),
        "fault-model sweeps must not alias the default-model cache entry"
    );
    assert_ne!(base.body, burst.body);
    assert!(base.body_str().contains("dante.sweep.v1;"));
    assert!(burst.body_str().contains("dante.sweep.v3;"));
    assert!(burst.body_str().contains("fault=burst.v1("));

    // And the served burst record matches the library path byte-for-byte.
    let spec = dante_serve::api::decode_spec(burst_payload.as_bytes()).expect("valid spec");
    assert_eq!(burst.body_str(), dante_serve::api::run_spec_json(&spec));

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn unknown_routes_and_methods_are_mapped_to_404_and_405() {
    let handle = boot(ServerConfig::default());
    let addr = handle.addr();
    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(get(addr, "/v1/jobs/job-none").status, 404);
    let response = exchange(
        addr,
        b"DELETE /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response.status, 405);
    handle.shutdown();
    assert!(handle.join());
}
