//! Integration tests for the scale-out serving features: the shard
//! coordinator (fan-out, retry, merge), the persistent disk cache across
//! a server restart, and the two-lane scheduler's fairness guarantees —
//! all driven through raw `std::net::TcpStream` clients against real
//! server processes-in-threads.
//!
//! Fairness is asserted through `finish_seq` (the process-wide completion
//! counter jobs expose via `/v1/jobs/{id}`), never through wall-clock
//! timing.

use dante_serve::server::{start, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// A parsed raw response.
#[derive(Debug)]
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("body is UTF-8")
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header colon");
        let (name, value) = (name.trim().to_owned(), value.trim().to_owned());
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().expect("content length");
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    Response {
        status,
        headers,
        body,
    }
}

/// One-shot exchange over a fresh connection.
fn exchange(addr: SocketAddr, raw: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    stream.write_all(raw).expect("write");
    stream.flush().expect("flush");
    read_response(&mut BufReader::new(stream))
}

/// POST to `path` with an optional `X-Dante-Client` token.
fn post(addr: SocketAddr, path: &str, payload: &str, client: &str) -> Response {
    let client_header = if client.is_empty() {
        String::new()
    } else {
        format!("X-Dante-Client: {client}\r\n")
    };
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\n{client_header}Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    );
    exchange(addr, raw.as_bytes())
}

fn get(addr: SocketAddr, path: &str) -> Response {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn boot(config: ServerConfig) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("boot server")
}

/// Extracts the job id from a 202 ticket body.
fn job_id_of(response: &Response) -> String {
    assert_eq!(response.status, 202, "{}", response.body_str());
    let body = response.body_str();
    let needle = r#""job":""#;
    let start = body.find(needle).expect("job id in ticket") + needle.len();
    body[start..]
        .split('"')
        .next()
        .expect("quoted id")
        .to_owned()
}

/// Polls `/v1/jobs/{id}` until terminal, then returns its `finish_seq`.
fn wait_finish_seq(addr: SocketAddr, id: &str) -> u64 {
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let status = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status.status, 200, "{}", status.body_str());
        let body = status.body_str();
        if let Some(at) = body.find(r#""finish_seq":"#) {
            let tail = &body[at + r#""finish_seq":"#.len()..];
            let digits: String = tail
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            return digits.parse().expect("finish_seq number");
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} must reach a terminal state: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A fresh per-test scratch directory under the target-adjacent temp root.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dante-scale-out-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The value of a single-line gauge/counter in a `/metrics` body.
fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing:\n{body}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

#[test]
fn coordinator_fans_out_and_serves_byte_identical_sweeps_and_fleets() {
    // Two plain backends, one coordinator pointed at both.
    let backend_a = boot(ServerConfig::default());
    let backend_b = boot(ServerConfig::default());
    let coordinator = boot(ServerConfig {
        peers: vec![backend_a.addr().to_string(), backend_b.addr().to_string()],
        ..ServerConfig::default()
    });
    let addr = coordinator.addr();

    // Sweep: the coordinated result is byte-identical to the library path.
    let payload = r#"{"network": "toy", "trials": 5, "voltages_mv": [400, 460, 520], "seed": 21}"#;
    let spec = dante_serve::api::decode_spec(payload.as_bytes()).expect("valid spec");
    let reference = dante_serve::api::run_spec_json(&spec);
    let cold = post(addr, "/v1/sweep", payload, "");
    assert_eq!(cold.status, 200, "{}", cold.body_str());
    assert_eq!(cold.header("X-Dante-Cache"), Some("miss"));
    assert_eq!(
        cold.body_str(),
        reference,
        "sharded sweep must be byte-identical to the single-process run"
    );
    let warm = post(addr, "/v1/sweep", payload, "");
    assert_eq!(warm.header("X-Dante-Cache"), Some("hit"));
    assert_eq!(warm.body, cold.body);

    // Fleet: same contract, an odd die count so the windows are uneven.
    let fleet_payload = r#"{"seed": 9, "dies": 13, "array_bits": 65536, "grid": {"start_mv": 520, "stop_mv": 600, "step_mv": 40}}"#;
    let fleet_spec =
        dante_serve::api::decode_fleet_spec(fleet_payload.as_bytes()).expect("valid fleet spec");
    let fleet_reference = dante_serve::api::run_fleet_json(&fleet_spec);
    let fleet = post(addr, "/v1/fleet", fleet_payload, "");
    assert_eq!(fleet.status, 200, "{}", fleet.body_str());
    assert_eq!(
        fleet.body_str(),
        fleet_reference,
        "sharded fleet must be byte-identical to the single-process run"
    );

    // The coordinator recorded its fan-out legs: one per peer per job, no
    // fallbacks, nothing left in flight.
    let metrics = get(addr, "/metrics");
    let body = metrics.body_str();
    assert_eq!(metric(body, "dante_serve_shard_requests_total"), 4);
    assert_eq!(metric(body, "dante_serve_shard_fallbacks_total"), 0);
    assert_eq!(metric(body, "dante_serve_shard_in_flight"), 0);

    coordinator.shutdown();
    assert!(coordinator.join());
    backend_a.shutdown();
    assert!(backend_a.join());
    backend_b.shutdown();
    assert!(backend_b.join());
}

#[test]
fn coordinator_retries_a_dead_peer_and_still_merges_byte_identical() {
    // One live backend plus one address that refuses connections (bound,
    // then dropped — the OS rejects immediately, no timeout flakiness).
    let backend = boot(ServerConfig::default());
    let dead = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let coordinator = boot(ServerConfig {
        peers: vec![dead.to_string(), backend.addr().to_string()],
        ..ServerConfig::default()
    });
    let addr = coordinator.addr();

    let payload = r#"{"network": "toy", "trials": 4, "voltages_mv": [420, 500], "seed": 33}"#;
    let spec = dante_serve::api::decode_spec(payload.as_bytes()).expect("valid spec");
    let response = post(addr, "/v1/sweep", payload, "");
    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(
        response.body_str(),
        dante_serve::api::run_spec_json(&spec),
        "retried shard legs must not perturb the merged bytes"
    );

    // The dead peer's window was retried onto the live one — no fallback
    // to local compute was needed.
    let metrics = get(addr, "/metrics");
    let body = metrics.body_str();
    assert!(
        metric(body, "dante_serve_shard_retries_total") >= 1,
        "dead peer must surface as a retry:\n{body}"
    );
    assert_eq!(metric(body, "dante_serve_shard_fallbacks_total"), 0);

    coordinator.shutdown();
    assert!(coordinator.join());
    backend.shutdown();
    assert!(backend.join());
}

#[test]
fn disk_cache_survives_restart_with_byte_identical_bodies() {
    let dir = scratch_dir("restart");
    let sweep_payload = r#"{"network": "toy", "trials": 3, "voltages_mv": [400, 480], "seed": 55}"#;
    let iso_query = "floor=0.9&trials=2&start_mv=380&stop_mv=560&step_mv=60";

    let (sweep_cold, iso_cold) = {
        let handle = boot(ServerConfig {
            data_dir: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let addr = handle.addr();
        let sweep = post(addr, "/v1/sweep", sweep_payload, "");
        assert_eq!(sweep.status, 200, "{}", sweep.body_str());
        assert_eq!(sweep.header("X-Dante-Cache"), Some("miss"));
        let iso = get(addr, &format!("/v1/iso-accuracy?{iso_query}"));
        assert_eq!(iso.status, 200, "{}", iso.body_str());

        // The disk store now holds both records.
        let metrics = get(addr, "/metrics");
        assert!(
            metric(metrics.body_str(), "dante_serve_disk_cache_records") >= 2,
            "{}",
            metrics.body_str()
        );
        handle.shutdown();
        assert!(handle.join());
        (sweep.body, iso.body)
    };

    // Cold process, same data dir: both requests are cache hits with the
    // exact bytes the previous process served.
    let handle = boot(ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let sweep = post(addr, "/v1/sweep", sweep_payload, "");
    assert_eq!(sweep.status, 200, "{}", sweep.body_str());
    assert_eq!(
        sweep.header("X-Dante-Cache"),
        Some("hit"),
        "restart must not lose the persisted sweep"
    );
    assert_eq!(
        sweep.body, sweep_cold,
        "persisted hit must be byte-identical"
    );
    let iso = get(addr, &format!("/v1/iso-accuracy?{iso_query}"));
    assert_eq!(iso.header("X-Dante-Cache"), Some("hit"));
    assert_eq!(iso.body, iso_cold);

    handle.shutdown();
    assert!(handle.join());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_full_rejections_carry_retry_after_and_count_exactly_once() {
    // workers = 0: jobs queue but never drain, so queue-full is
    // deterministic.
    let handle = boot(ServerConfig {
        workers: 0,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let fill = post(
        addr,
        "/v1/sweep?mode=async",
        r#"{"network": "toy", "voltages_mv": [400], "seed": 1}"#,
        "",
    );
    assert_eq!(fill.status, 202, "{}", fill.body_str());

    for round in 0..2u64 {
        let rejected = post(
            addr,
            "/v1/sweep?mode=async",
            &format!(
                r#"{{"network": "toy", "voltages_mv": [400], "seed": {}}}"#,
                round + 2
            ),
            "",
        );
        assert_eq!(rejected.status, 429, "{}", rejected.body_str());
        assert_eq!(
            rejected.header("Retry-After"),
            Some("1"),
            "every 429 must carry Retry-After"
        );
        let metrics = get(addr, "/metrics");
        assert_eq!(
            metric(metrics.body_str(), "dante_serve_jobs_rejected_total"),
            round + 1,
            "each rejection increments the counter exactly once"
        );
    }

    // The queued (never-run) job shows up in the lane gauges.
    let metrics = get(addr, "/metrics");
    let body = metrics.body_str();
    assert_eq!(metric(body, "dante_serve_queue_depth"), 1);
    assert_eq!(metric(body, "dante_serve_queue_depth_bulk"), 1);
    assert_eq!(metric(body, "dante_serve_queue_depth_interactive"), 0);

    handle.shutdown();
    assert!(handle.join());
}

#[test]
fn interactive_iso_overtakes_bulk_backlog_and_clients_share_the_bulk_lane() {
    // One worker: completion order equals scheduling order. The first bulk
    // job is deliberately heavy so the worker is pinned while the rest of
    // the backlog (and the interactive probe) is submitted.
    let handle = boot(ServerConfig {
        workers: 1,
        queue_depth: 32,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let heavy = post(
        addr,
        "/v1/sweep?mode=async",
        r#"{"network": "toy", "trials": 80, "voltages_mv": [380, 400, 420, 440, 460, 480, 500, 520], "seed": 70}"#,
        "alice",
    );
    let heavy_id = job_id_of(&heavy);

    // Alice's backlog, then Bob's single job, then the interactive iso.
    let alice_ids: Vec<String> = (0..3)
        .map(|i| {
            let ticket = post(
                addr,
                "/v1/sweep?mode=async",
                &format!(
                    r#"{{"network": "toy", "trials": 2, "voltages_mv": [400], "seed": {}}}"#,
                    71 + i
                ),
                "alice",
            );
            job_id_of(&ticket)
        })
        .collect();
    let bob = post(
        addr,
        "/v1/sweep?mode=async",
        r#"{"network": "toy", "trials": 2, "voltages_mv": [400], "seed": 90}"#,
        "bob",
    );
    let bob_id = job_id_of(&bob);
    let iso = exchange(
        addr,
        b"GET /v1/iso-accuracy?floor=0.9&trials=2&mode=async HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    let iso_id = job_id_of(&iso);

    let iso_seq = wait_finish_seq(addr, &iso_id);
    let heavy_seq = wait_finish_seq(addr, &heavy_id);
    let bob_seq = wait_finish_seq(addr, &bob_id);
    let alice_seqs: Vec<u64> = alice_ids
        .iter()
        .map(|id| wait_finish_seq(addr, id))
        .collect();

    // The interactive lane preempts every queued bulk job: only the
    // already-running heavy job may finish before the iso solve.
    for (i, &seq) in alice_seqs.iter().enumerate() {
        assert!(
            iso_seq < seq,
            "iso (seq {iso_seq}) must finish before queued bulk job {i} (seq {seq})"
        );
    }
    assert!(
        iso_seq < bob_seq,
        "iso (seq {iso_seq}) must finish before queued bulk work (seq {bob_seq})"
    );

    // Per-client fairness: Bob's lone job rotates in after a single Alice
    // job, so it cannot finish last behind Alice's whole backlog.
    let alice_max = *alice_seqs.iter().max().expect("alice seqs");
    assert!(
        bob_seq < alice_max,
        "bob (seq {bob_seq}) must not be starved behind alice's backlog (max seq {alice_max})"
    );

    // The heavy job was running before anything else was queued.
    assert!(heavy_seq >= 1, "heavy job completed (seq {heavy_seq})");

    // Lane counters saw both lanes; nothing was rejected.
    let metrics = get(addr, "/metrics");
    let body = metrics.body_str();
    assert_eq!(metric(body, "dante_serve_jobs_rejected_total"), 0);
    assert_eq!(metric(body, "dante_serve_iso_accuracy_solves_total"), 1);

    handle.shutdown();
    assert!(handle.join());
}
