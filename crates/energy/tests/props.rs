//! Property tests for the energy equations.

use dante_circuit::units::Volt;
use dante_energy::design_space::{sweep, DesignSpaceScenario};
use dante_energy::params::EnergyParams;
use dante_energy::supply::{BoostedGroup, EnergyModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Eq. 2 is exactly bilinear in the two activity counts.
    #[test]
    fn eq2_bilinear(mv in 320u32..790, acc in 1u64..1_000_000, macs in 1u64..1_000_000) {
        let m = EnergyModel::dante_chip();
        let v = Volt::from_millivolts(f64::from(mv));
        let e = m.dynamic_single(v, acc, macs).joules();
        let e_acc = m.dynamic_single(v, 2 * acc, macs).joules();
        let e_mac = m.dynamic_single(v, acc, 2 * macs).joules();
        let sram = m.params().e_sram(v).joules() * acc as f64;
        let pe = m.params().e_pe(v).joules() * macs as f64;
        prop_assert!((e - (sram + pe)).abs() / e < 1e-12);
        prop_assert!((e_acc - (2.0 * sram + pe)).abs() / e_acc < 1e-12);
        prop_assert!((e_mac - (sram + 2.0 * pe)).abs() / e_mac < 1e-12);
    }

    /// Eq. 3: splitting one group into two at the same level never changes
    /// the total (additivity).
    #[test]
    fn eq3_group_additivity(
        mv in 340u32..500,
        acc in 2u64..1_000_000,
        level in 0usize..=4,
        split_frac in 0.01f64..0.99,
    ) {
        let m = EnergyModel::dante_chip();
        let v = Volt::from_millivolts(f64::from(mv));
        let a = (acc as f64 * split_frac) as u64;
        let b = acc - a;
        let whole = m.dynamic_boosted(v, &[BoostedGroup { accesses: acc, level }], 1000);
        let split = m.dynamic_boosted(
            v,
            &[BoostedGroup { accesses: a, level }, BoostedGroup { accesses: b, level }],
            1000,
        );
        prop_assert!((whole.joules() - split.joules()).abs() / whole.joules() < 1e-12);
    }

    /// Boosted energy is non-decreasing in level (higher rails cost more per
    /// access).
    #[test]
    fn eq3_monotone_in_level(mv in 340u32..500, acc in 1u64..1_000_000, level in 0usize..4) {
        let m = EnergyModel::dante_chip();
        let v = Volt::from_millivolts(f64::from(mv));
        let lo = m.dynamic_boosted(v, &[BoostedGroup { accesses: acc, level }], 0);
        let hi = m.dynamic_boosted(v, &[BoostedGroup { accesses: acc, level: level + 1 }], 0);
        prop_assert!(hi > lo);
    }

    /// Eq. 6 degrades monotonically as the logic rail drops further below
    /// the memory rail (the LDO gets less efficient).
    #[test]
    fn eq6_dropout_penalty(hi_mv in 500u32..700, drop_mv in 20u32..160) {
        let m = EnergyModel::dante_chip();
        let v_h = Volt::from_millivolts(f64::from(hi_mv));
        let v_l = Volt::from_millivolts(f64::from(hi_mv - drop_mv));
        let v_l2 = Volt::from_millivolts(f64::from(hi_mv - drop_mv - 20));
        // Dynamic logic energy falls with V^2 but the 1/eta penalty grows
        // linearly; the *overhead ratio* dual/ideal must grow with dropout.
        let ideal = |v: Volt| m.params().e_pe(v).joules() * 1e6;
        let dual = |v: Volt| m.dynamic_dual(v_h, v, 0, 1_000_000).joules();
        let ratio1 = dual(v_l) / ideal(v_l);
        let ratio2 = dual(v_l2) / ideal(v_l2);
        prop_assert!(ratio2 > ratio1, "LDO overhead must grow with dropout");
    }

    /// Leakage per cycle: boosted < dual at every voltage in the operating
    /// range, for full boost.
    #[test]
    fn leakage_ordering(mv in 340u32..500) {
        let m = EnergyModel::dante_chip();
        let v = Volt::from_millivolts(f64::from(mv));
        let vddv = m.vddv(v, 4);
        prop_assert!(m.leakage_boosted_per_cycle(v) < m.leakage_dual_per_cycle(vddv, v));
    }

    /// The design-space surface is monotone in both axes.
    #[test]
    fn design_space_monotone(ops in 0.02f64..2.0, er in 1.0f64..15.0) {
        let s = DesignSpaceScenario::default();
        let base = sweep(s, &[ops], &[er])[0].boosted_over_dual;
        let more_ops = sweep(s, &[ops * 1.5], &[er])[0].boosted_over_dual;
        prop_assert!(more_ops >= base - 1e-12, "more memory activity must not help boosting");
    }

    /// Custom energy ratios feed through exactly.
    #[test]
    fn energy_ratio_override(ratio in 0.5f64..50.0, mv in 340u32..780) {
        let p = EnergyParams::dante_chip().with_energy_ratio(ratio);
        let v = Volt::from_millivolts(f64::from(mv));
        prop_assert!((p.e_sram(v).joules() / p.e_pe(v).joules() - ratio).abs() < 1e-9);
    }
}
