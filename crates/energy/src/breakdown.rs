//! Per-component energy breakdowns: where the joules of one inference go
//! under each supply configuration.
//!
//! The paper's argument is fundamentally about *which component pays*:
//! boosting moves a little energy into the SRAM (the boosted rail) and the
//! booster circuit so the logic can ride a much lower rail, while the LDO
//! baseline taxes every logic operation. Breakdowns make that visible and
//! are used by the examples and the report tooling.

use crate::supply::{BoostedGroup, EnergyModel};
use core::fmt;
use dante_circuit::units::{Joule, Volt};

/// Energy attributed to each component of one inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// SRAM array access energy.
    pub sram: Joule,
    /// Processing-element (logic) energy, including any LDO loss.
    pub logic: Joule,
    /// Booster-circuit drive energy (zero for non-boosted configurations).
    pub booster: Joule,
}

impl EnergyBreakdown {
    /// Total energy.
    #[must_use]
    pub fn total(&self) -> Joule {
        self.sram + self.logic + self.booster
    }

    /// Fraction of the total spent in the SRAM.
    #[must_use]
    pub fn sram_fraction(&self) -> f64 {
        self.sram.joules() / self.total().joules()
    }

    /// Fraction of the total spent in the logic (incl. LDO loss).
    #[must_use]
    pub fn logic_fraction(&self) -> f64 {
        self.logic.joules() / self.total().joules()
    }

    /// Fraction of the total spent driving the booster.
    #[must_use]
    pub fn booster_fraction(&self) -> f64 {
        self.booster.joules() / self.total().joules()
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sram {:.2} pJ ({:.0}%) | logic {:.2} pJ ({:.0}%) | booster {:.2} pJ ({:.0}%)",
            self.sram.picojoules(),
            self.sram_fraction() * 100.0,
            self.logic.picojoules(),
            self.logic_fraction() * 100.0,
            self.booster.picojoules(),
            self.booster_fraction() * 100.0,
        )
    }
}

impl EnergyModel {
    /// Component breakdown of the single-supply configuration (Eq. 2).
    #[must_use]
    pub fn breakdown_single(&self, vdd: Volt, sram_accesses: u64, macs: u64) -> EnergyBreakdown {
        EnergyBreakdown {
            sram: self.params().e_sram(vdd) * sram_accesses as f64,
            logic: self.params().e_pe(vdd) * macs as f64,
            booster: Joule::ZERO,
        }
    }

    /// Component breakdown of the boosted configuration (Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if any group's level exceeds the booster's.
    #[must_use]
    pub fn breakdown_boosted(
        &self,
        vdd: Volt,
        groups: &[BoostedGroup],
        macs: u64,
    ) -> EnergyBreakdown {
        let mut sram = Joule::ZERO;
        let mut booster = Joule::ZERO;
        for g in groups {
            let vddv = self.booster().boosted_voltage(vdd, g.level);
            sram += self.params().e_sram(vddv) * g.accesses as f64;
            booster += self.booster().boost_event_energy(vdd, g.level) * g.accesses as f64;
        }
        EnergyBreakdown {
            sram,
            logic: self.params().e_pe(vdd) * macs as f64,
            booster,
        }
    }

    /// Component breakdown of the dual-supply configuration (Eq. 6); the
    /// LDO loss is folded into the logic component, as in the paper.
    #[must_use]
    pub fn breakdown_dual(
        &self,
        v_mem: Volt,
        v_logic: Volt,
        sram_accesses: u64,
        macs: u64,
    ) -> EnergyBreakdown {
        let eta = self.ldo().efficiency(v_logic, v_mem);
        EnergyBreakdown {
            sram: self.params().e_sram(v_mem) * sram_accesses as f64,
            logic: self.params().e_pe(v_logic) * (macs as f64 / eta),
            booster: Joule::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: Volt = Volt::const_new(0.40);

    #[test]
    fn breakdown_totals_match_the_energy_equations() {
        let m = EnergyModel::dante_chip();
        let groups = [BoostedGroup {
            accesses: 10_000,
            level: 4,
        }];
        let b = m.breakdown_boosted(VDD, &groups, 1_000_000);
        let eq3 = m.dynamic_boosted(VDD, &groups, 1_000_000);
        assert!((b.total().joules() - eq3.joules()).abs() / eq3.joules() < 1e-12);

        let s = m.breakdown_single(VDD, 10_000, 1_000_000);
        let eq2 = m.dynamic_single(VDD, 10_000, 1_000_000);
        assert!((s.total().joules() - eq2.joules()).abs() / eq2.joules() < 1e-12);

        let vddv = m.vddv(VDD, 4);
        let d = m.breakdown_dual(vddv, VDD, 10_000, 1_000_000);
        let eq6 = m.dynamic_dual(vddv, VDD, 10_000, 1_000_000);
        assert!((d.total().joules() - eq6.joules()).abs() / eq6.joules() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = EnergyModel::dante_chip();
        let b = m.breakdown_boosted(
            VDD,
            &[BoostedGroup {
                accesses: 5_000,
                level: 2,
            }],
            100_000,
        );
        let sum = b.sram_fraction() + b.logic_fraction() + b.booster_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boosting_shifts_cost_from_logic_to_memory_side() {
        // The paper's Sec. 6.2 observation: "most of the energy savings are
        // obtained from the logic being able to operate at a lower voltage."
        let m = EnergyModel::dante_chip();
        let accesses = 16_700u64;
        let macs = 1_000_000u64;
        let vddv = m.vddv(VDD, 4);
        let boosted = m.breakdown_boosted(VDD, &[BoostedGroup { accesses, level: 4 }], macs);
        let single = m.breakdown_single(vddv, accesses, macs);
        // Logic energy drops by (vddv/vdd)^2 ~ 2.25x when boosted.
        let expected = (vddv.volts() / VDD.volts()).powi(2);
        assert!(
            (single.logic.joules() / boosted.logic.joules() - expected).abs() < 1e-9,
            "logic ratio {} vs expected {expected}",
            single.logic.joules() / boosted.logic.joules()
        );
        // SRAM energy is identical (same rail), modulo the booster tax.
        assert!((boosted.sram.joules() - single.sram.joules()).abs() < 1e-15);
        assert!(boosted.booster > Joule::ZERO);
    }

    #[test]
    fn dual_supply_logic_carries_the_ldo_tax() {
        let m = EnergyModel::dante_chip();
        let vddv = m.vddv(VDD, 4);
        let dual = m.breakdown_dual(vddv, VDD, 1_000, 1_000_000);
        let boosted = m.breakdown_boosted(
            VDD,
            &[BoostedGroup {
                accesses: 1_000,
                level: 4,
            }],
            1_000_000,
        );
        assert!(
            dual.logic > boosted.logic,
            "LDO loss must inflate dual logic energy"
        );
        assert_eq!(dual.booster, Joule::ZERO);
    }

    #[test]
    fn booster_fraction_is_small_for_conv_like_activity() {
        let m = EnergyModel::dante_chip();
        let b = m.breakdown_boosted(
            VDD,
            &[BoostedGroup {
                accesses: 16_700,
                level: 4,
            }],
            1_000_000,
        );
        assert!(
            b.booster_fraction() < 0.02,
            "booster tax {:.4}",
            b.booster_fraction()
        );
    }

    #[test]
    fn display_shows_all_components() {
        let m = EnergyModel::dante_chip();
        let b = m.breakdown_single(VDD, 100, 100);
        let s = format!("{b}");
        assert!(s.contains("sram") && s.contains("logic") && s.contains("booster"));
    }
}
