//! The boost-enabled accelerator design space of paper Fig. 12.
//!
//! Any accelerator with on-chip SRAM is characterized by two ratios:
//!
//! * `Ops_ratio` — memory accesses per compute operation, and
//! * `Energy_ratio` — energy of one memory access over one compute op.
//!
//! Fig. 12 sweeps both and plots the energy of a *boosted* design
//! (`Vdd = 0.4 V` boosted to `Vddv = 0.6 V`, i.e. full level-4 boost)
//! normalized to the equivalent *dual-supply* design (memory rail 0.6 V,
//! logic LDO'd down to 0.4 V). Values below 1 mean boosting wins.

use crate::params::EnergyParams;
use crate::supply::{BoostedGroup, EnergyModel};
use dante_circuit::booster::BoosterBank;
use dante_circuit::ldo::Ldo;
use dante_circuit::units::Volt;

/// One point of the Fig. 12 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignSpacePoint {
    /// Memory accesses per compute op.
    pub ops_ratio: f64,
    /// Memory-access energy over compute-op energy (at equal voltage).
    pub energy_ratio: f64,
    /// Boosted dynamic energy / dual-supply dynamic energy.
    pub boosted_over_dual: f64,
}

/// The Fig. 12 scenario voltages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignSpaceScenario {
    /// Logic (and idle-SRAM) supply.
    pub vdd: Volt,
    /// Boost level applied to every access.
    pub level: usize,
}

impl Default for DesignSpaceScenario {
    /// The paper's scenario: 0.4 V boosted at full level (to ~0.6 V, where
    /// the bit error rate is effectively zero).
    fn default() -> Self {
        Self {
            vdd: Volt::const_new(0.4),
            level: 4,
        }
    }
}

/// Sweeps the design space and returns the surface row-major
/// (`ops_ratios` outer, `energy_ratios` inner).
///
/// # Panics
///
/// Panics if either axis is empty or contains non-positive values.
#[must_use]
pub fn sweep(
    scenario: DesignSpaceScenario,
    ops_ratios: &[f64],
    energy_ratios: &[f64],
) -> Vec<DesignSpacePoint> {
    assert!(
        !ops_ratios.is_empty() && !energy_ratios.is_empty(),
        "empty sweep axis"
    );
    assert!(
        ops_ratios.iter().chain(energy_ratios).all(|&r| r > 0.0),
        "sweep ratios must be positive"
    );

    const MACS: u64 = 10_000_000;
    let mut out = Vec::with_capacity(ops_ratios.len() * energy_ratios.len());
    for &ops in ops_ratios {
        for &er in energy_ratios {
            let params = EnergyParams::dante_chip().with_energy_ratio(er);
            let model = EnergyModel::new(params, BoosterBank::standard(), Ldo::new());
            let accesses = (MACS as f64 * ops).round() as u64;
            let vddv = model.vddv(scenario.vdd, scenario.level);
            let boosted = model.dynamic_boosted(
                scenario.vdd,
                &[BoostedGroup {
                    accesses,
                    level: scenario.level,
                }],
                MACS,
            );
            let dual = model.dynamic_dual(vddv, scenario.vdd, accesses, MACS);
            out.push(DesignSpacePoint {
                ops_ratio: ops,
                energy_ratio: er,
                boosted_over_dual: boosted.joules() / dual.joules(),
            });
        }
    }
    out
}

/// The axis values used for the Fig. 12 reproduction.
#[must_use]
pub fn default_axes() -> (Vec<f64>, Vec<f64>) {
    let ops = vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.75, 1.0, 1.5, 2.0];
    let energy = vec![1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0];
    (ops, energy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boosting_wins_at_low_ratios() {
        // Paper Sec. 6.1: "boosting memories is more energy efficient for
        // designs with lower ratio of memory-to-compute operations and
        // memory-to-compute energy."
        let pts = sweep(DesignSpaceScenario::default(), &[0.0167], &[3.0]);
        assert!(
            pts[0].boosted_over_dual < 0.85,
            "ratio {}",
            pts[0].boosted_over_dual
        );
    }

    #[test]
    fn savings_reach_about_a_third_at_realistic_points() {
        // "For accelerators with realistic values of Ops_ratio and
        // Energy_ratio, it is possible to achieve energy savings of up to
        // 32% using programmable boosting."
        let (ops, er) = default_axes();
        let pts = sweep(DesignSpaceScenario::default(), &ops, &er);
        let best = pts
            .iter()
            .map(|p| 1.0 - p.boosted_over_dual)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((0.28..=0.40).contains(&best), "best savings {best:.3}");
    }

    #[test]
    fn dual_wins_at_extreme_memory_dominance() {
        // High Ops_ratio + high Energy_ratio is where the LDO baseline
        // catches up (and eventually passes) boosting.
        let pts = sweep(DesignSpaceScenario::default(), &[4.0], &[1.0]);
        assert!(
            pts[0].boosted_over_dual > 1.0,
            "ratio {}",
            pts[0].boosted_over_dual
        );
    }

    #[test]
    fn surface_is_monotonic_in_ops_ratio() {
        // More memory activity always erodes the boosting advantage at a
        // fixed energy ratio.
        let ops = [0.01, 0.1, 0.5, 1.0, 2.0];
        let pts = sweep(DesignSpaceScenario::default(), &ops, &[3.0]);
        for w in pts.windows(2) {
            assert!(w[1].boosted_over_dual >= w[0].boosted_over_dual);
        }
    }

    #[test]
    fn grid_is_row_major_and_complete() {
        let (ops, er) = default_axes();
        let pts = sweep(DesignSpaceScenario::default(), &ops, &er);
        assert_eq!(pts.len(), ops.len() * er.len());
        assert!((pts[1].ops_ratio - pts[0].ops_ratio).abs() < 1e-12);
        assert!(pts[1].energy_ratio > pts[0].energy_ratio);
    }

    #[test]
    #[should_panic(expected = "empty sweep axis")]
    fn empty_axis_rejected() {
        let _ = sweep(DesignSpaceScenario::default(), &[], &[1.0]);
    }
}
