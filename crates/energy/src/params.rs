//! Absolute energy calibration of the taped-out chip (DESIGN.md Sec. 4).
//!
//! The paper measures SRAM access energy with Spectre and PE energy with
//! Cadence Joules post-route; this module is the analytic stand-in. Dynamic
//! energies follow `C_eff * V^2`; leakage follows the shared
//! [`DeviceModel`]. The two effective capacitances set the paper's
//! `Energy_ratio` (memory access vs. compute op) to ~3, the "small banks"
//! regime the paper argues accelerators live in (Sec. 6.1).

use core::fmt;

use dante_circuit::device::DeviceModel;
use dante_circuit::macro_model::{AccessKind, MacroGeometry, SramMacroModel};
use dante_circuit::units::{Farad, Hertz, Joule, Second, Volt, Watt};

/// Effective switched capacitance of one 64 Kbit bank access including the
/// output multiplexer (E = 3.84 pJ at 0.8 V).
pub const C_SRAM_ACCESS: Farad = Farad::const_new(6.0e-12);

/// Effective switched capacitance of one PE operation (16-bit MAC +
/// activation + control; E = 1.28 pJ at 0.8 V).
pub const C_PE_OP: Farad = Farad::const_new(2.0e-12);

/// Nominal-voltage leakage of one 64 Kbit SRAM bank.
pub const P_LEAK_SRAM_BANK_NOM: Watt = Watt::const_new(40.0e-6);

/// Nominal-voltage leakage of the PE array plus control logic.
pub const P_LEAK_PE_NOM: Watt = Watt::const_new(200.0e-6);

/// Booster-circuit leakage as a fraction of chip leakage at the same
/// voltage (the paper reports ~6% overhead).
pub const BOOSTER_LEAK_FRACTION: f64 = 0.06;

/// Number of 64 Kbit banks on the chip (144 KB / 8 KB).
pub const DANTE_BANKS: usize = 18;

/// Bitcells in the calibrated 64 Kbit bank, the reference size the
/// per-bank leakage constant is quoted at.
pub const CALIBRATED_BANK_BITS: usize = 64 * 1024;

/// Where the SRAM access energy comes from: the measured scalar
/// calibration, or a structural [`MacroGeometry`] from which it is derived.
///
/// `Calibrated` is the default and encodes to nothing in canonical spec
/// strings, so every pre-existing cache key and golden record stays
/// byte-identical (the PR 5/6 versioning discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GeometrySpec {
    /// The measured scalar calibration (`C_SRAM_ACCESS` = 6 pF, 1 ns / 45%
    /// timing split).
    #[default]
    Calibrated,
    /// Access energy and leakage derived from a structural macro geometry
    /// via [`SramMacroModel`].
    Structural(MacroGeometry),
}

impl GeometrySpec {
    /// Whether this is the default calibrated geometry (encodes to nothing).
    #[must_use]
    pub fn is_default(&self) -> bool {
        matches!(self, Self::Calibrated)
    }

    /// Canonical token for cache keys; only non-default geometries get one.
    #[must_use]
    pub fn canonical_token(&self) -> Option<String> {
        match self {
            Self::Calibrated => None,
            Self::Structural(g) => Some(format!(
                "struct(r={},c={},m={},b={})",
                g.rows, g.cols, g.mux, g.banks
            )),
        }
    }

    /// Validates a structural geometry's bounds; the calibrated default is
    /// always valid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::Calibrated => Ok(()),
            Self::Structural(g) => g.validate(),
        }
    }
}

impl fmt::Display for GeometrySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.canonical_token() {
            None => write!(f, "calibrated"),
            Some(tok) => write!(f, "{tok}"),
        }
    }
}

/// Calibrated energy parameters of one accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    device: DeviceModel,
    c_sram_access: Farad,
    c_pe_op: Farad,
    p_leak_sram_bank_nom: Watt,
    p_leak_pe_nom: Watt,
    booster_leak_fraction: f64,
    sram_banks: usize,
    frequency: Hertz,
}

impl EnergyParams {
    /// The taped-out chip's calibration: 18 banks, 50 MHz (the frequency all
    /// of the paper's experiments run at).
    #[must_use]
    pub fn dante_chip() -> Self {
        Self {
            device: DeviceModel::default_14nm(),
            c_sram_access: C_SRAM_ACCESS,
            c_pe_op: C_PE_OP,
            p_leak_sram_bank_nom: P_LEAK_SRAM_BANK_NOM,
            p_leak_pe_nom: P_LEAK_PE_NOM,
            booster_leak_fraction: BOOSTER_LEAK_FRACTION,
            sram_banks: DANTE_BANKS,
            frequency: Hertz::const_new(50.0e6),
        }
    }

    /// Returns a copy with a different memory/compute energy ratio
    /// (`C_sram = ratio * C_pe`), used by the Fig. 12 design-space sweep.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive and finite. (`f64::INFINITY`
    /// previously passed the `> 0` check and turned `c_sram_access` into an
    /// infinite capacitance that silently poisoned every downstream energy
    /// number.)
    #[must_use]
    pub fn with_energy_ratio(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "energy ratio must be positive and finite"
        );
        self.c_sram_access = self.c_pe_op * ratio;
        self
    }

    /// Returns a copy whose SRAM access energy and bank leakage are derived
    /// from a structural macro geometry instead of the scalar calibration:
    ///
    /// * `c_sram_access` becomes the geometry's read-access switched
    ///   capacitance ([`SramMacroModel::access_capacitance`]);
    /// * per-bank leakage scales with the geometry's bitcell count relative
    ///   to the calibrated 64 Kbit bank.
    ///
    /// With [`GeometrySpec::Calibrated`] this is the identity, so default
    /// specs stay byte-identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if a structural geometry fails [`MacroGeometry::validate`].
    #[must_use]
    pub fn with_geometry(mut self, geometry: GeometrySpec) -> Self {
        match geometry {
            GeometrySpec::Calibrated => self,
            GeometrySpec::Structural(g) => {
                let model = SramMacroModel::new(self.device.clone(), g);
                self.c_sram_access = model.access_capacitance(AccessKind::Read).total();
                self.p_leak_sram_bank_nom =
                    P_LEAK_SRAM_BANK_NOM * (g.bits() as f64 / CALIBRATED_BANK_BITS as f64);
                self
            }
        }
    }

    /// The device model in use.
    #[must_use]
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Operating frequency (fixed 50 MHz in the paper's experiments).
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// One clock period.
    #[must_use]
    pub fn cycle(&self) -> Second {
        self.frequency.period()
    }

    /// Number of SRAM banks.
    #[must_use]
    pub fn sram_banks(&self) -> usize {
        self.sram_banks
    }

    /// Dynamic energy of one SRAM bank access at rail voltage `v`
    /// (`E(SRAM, V)` of Eqs. 2/3/6).
    #[must_use]
    pub fn e_sram(&self, v: Volt) -> Joule {
        self.c_sram_access.switching_energy(v)
    }

    /// Dynamic energy of one PE operation at `v` (`E(PE, V)`).
    #[must_use]
    pub fn e_pe(&self, v: Volt) -> Joule {
        self.c_pe_op.switching_energy(v)
    }

    /// The memory-to-compute energy ratio at equal voltage (the paper's
    /// `Energy_ratio`).
    #[must_use]
    pub fn energy_ratio(&self) -> f64 {
        self.c_sram_access / self.c_pe_op
    }

    /// Total SRAM leakage power with every bank at `v`.
    #[must_use]
    pub fn leak_sram(&self, v: Volt) -> Watt {
        self.device
            .leakage_power(v, self.p_leak_sram_bank_nom * self.sram_banks as f64)
    }

    /// PE/control leakage power at `v`.
    #[must_use]
    pub fn leak_pe(&self, v: Volt) -> Watt {
        self.device.leakage_power(v, self.p_leak_pe_nom)
    }

    /// Booster-circuit leakage at `v` (`LE(BC, Vdd)` of Eq. 4): a fixed
    /// fraction of the chip leakage at the same voltage.
    #[must_use]
    pub fn leak_booster(&self, v: Volt) -> Watt {
        (self.leak_sram(v) + self.leak_pe(v)) * self.booster_leak_fraction
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::dante_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energies_scale_as_v_squared() {
        let p = EnergyParams::dante_chip();
        let e1 = p.e_sram(Volt::new(0.4));
        let e2 = p.e_sram(Volt::new(0.8));
        assert!((e2.joules() / e1.joules() - 4.0).abs() < 1e-9);
        let p1 = p.e_pe(Volt::new(0.3));
        let p2 = p.e_pe(Volt::new(0.6));
        assert!((p2.joules() / p1.joules() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_ratio_is_about_three() {
        // Sec. 6.1: "for designs with small banks ... the energy of a memory
        // access is not significantly higher than that of a compute op."
        let p = EnergyParams::dante_chip();
        assert!((p.energy_ratio() - 3.0).abs() < 0.01);
    }

    #[test]
    fn with_energy_ratio_overrides_sram_cost() {
        let p = EnergyParams::dante_chip().with_energy_ratio(10.0);
        assert!((p.energy_ratio() - 10.0).abs() < 1e-9);
        let v = Volt::new(0.5);
        assert!((p.e_sram(v).joules() / p.e_pe(v).joules() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn booster_leakage_is_six_percent_of_chip() {
        let p = EnergyParams::dante_chip();
        let v = Volt::new(0.4);
        let chip = p.leak_sram(v) + p.leak_pe(v);
        let bc = p.leak_booster(v);
        assert!((bc.watts() / chip.watts() - 0.06).abs() < 1e-9);
    }

    #[test]
    fn leakage_decreases_with_voltage() {
        let p = EnergyParams::dante_chip();
        assert!(p.leak_sram(Volt::new(0.4)) < p.leak_sram(Volt::new(0.6)));
        assert!(p.leak_pe(Volt::new(0.34)) < p.leak_pe(Volt::new(0.5)));
    }

    #[test]
    fn cycle_is_20ns_at_50mhz() {
        let p = EnergyParams::dante_chip();
        assert!((p.cycle().nanoseconds() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn infinite_energy_ratio_rejected() {
        // Regression: INFINITY passed the old `> 0.0` check and poisoned
        // c_sram_access into an infinite capacitance.
        let _ = EnergyParams::dante_chip().with_energy_ratio(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn nan_energy_ratio_rejected() {
        let _ = EnergyParams::dante_chip().with_energy_ratio(f64::NAN);
    }

    #[test]
    fn calibrated_geometry_is_the_identity() {
        let base = EnergyParams::dante_chip();
        let geo = base.clone().with_geometry(GeometrySpec::Calibrated);
        assert_eq!(base, geo);
    }

    #[test]
    fn structural_bank_geometry_reproduces_the_calibration() {
        // The whole point of the structural model: at the paper's 64 Kbit
        // bank geometry the derived access energy lands on the 6 pF scalar
        // and the leakage scale is exactly the calibrated bank's.
        let geo = EnergyParams::dante_chip()
            .with_geometry(GeometrySpec::Structural(MacroGeometry::bank_64kbit()));
        assert!(
            (geo.energy_ratio() - 3.0).abs() < 0.05,
            "derived Energy_ratio {} should land on ~3",
            geo.energy_ratio()
        );
        let e = geo.e_sram(Volt::new(0.8));
        assert!(
            (e.picojoules() - 3.84).abs() < 0.05,
            "derived access energy {e} should land on 3.84 pJ"
        );
        assert_eq!(
            geo.leak_sram(Volt::new(0.8)).watts(),
            EnergyParams::dante_chip().leak_sram(Volt::new(0.8)).watts()
        );
    }

    #[test]
    fn smaller_geometry_cuts_access_energy_and_leakage() {
        let small = EnergyParams::dante_chip()
            .with_geometry(GeometrySpec::Structural(MacroGeometry::new(128, 64, 4, 1)));
        let base = EnergyParams::dante_chip();
        assert!(small.e_sram(Volt::new(0.5)) < base.e_sram(Volt::new(0.5)));
        assert!(small.leak_sram(Volt::new(0.5)) < base.leak_sram(Volt::new(0.5)));
    }

    #[test]
    fn geometry_tokens_are_injective_and_default_is_silent() {
        assert_eq!(GeometrySpec::Calibrated.canonical_token(), None);
        let a = GeometrySpec::Structural(MacroGeometry::bank_64kbit());
        let b = GeometrySpec::Structural(MacroGeometry::macro_32kbit());
        assert_eq!(a.canonical_token().unwrap(), "struct(r=256,c=128,m=4,b=2)");
        assert_ne!(a.canonical_token(), b.canonical_token());
        assert!(GeometrySpec::default().is_default());
        assert!(!a.is_default());
    }
}
