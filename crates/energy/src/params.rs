//! Absolute energy calibration of the taped-out chip (DESIGN.md Sec. 4).
//!
//! The paper measures SRAM access energy with Spectre and PE energy with
//! Cadence Joules post-route; this module is the analytic stand-in. Dynamic
//! energies follow `C_eff * V^2`; leakage follows the shared
//! [`DeviceModel`]. The two effective capacitances set the paper's
//! `Energy_ratio` (memory access vs. compute op) to ~3, the "small banks"
//! regime the paper argues accelerators live in (Sec. 6.1).

use dante_circuit::device::DeviceModel;
use dante_circuit::units::{Farad, Hertz, Joule, Second, Volt, Watt};

/// Effective switched capacitance of one 64 Kbit bank access including the
/// output multiplexer (E = 3.84 pJ at 0.8 V).
pub const C_SRAM_ACCESS: Farad = Farad::const_new(6.0e-12);

/// Effective switched capacitance of one PE operation (16-bit MAC +
/// activation + control; E = 1.28 pJ at 0.8 V).
pub const C_PE_OP: Farad = Farad::const_new(2.0e-12);

/// Nominal-voltage leakage of one 64 Kbit SRAM bank.
pub const P_LEAK_SRAM_BANK_NOM: Watt = Watt::const_new(40.0e-6);

/// Nominal-voltage leakage of the PE array plus control logic.
pub const P_LEAK_PE_NOM: Watt = Watt::const_new(200.0e-6);

/// Booster-circuit leakage as a fraction of chip leakage at the same
/// voltage (the paper reports ~6% overhead).
pub const BOOSTER_LEAK_FRACTION: f64 = 0.06;

/// Number of 64 Kbit banks on the chip (144 KB / 8 KB).
pub const DANTE_BANKS: usize = 18;

/// Calibrated energy parameters of one accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    device: DeviceModel,
    c_sram_access: Farad,
    c_pe_op: Farad,
    p_leak_sram_bank_nom: Watt,
    p_leak_pe_nom: Watt,
    booster_leak_fraction: f64,
    sram_banks: usize,
    frequency: Hertz,
}

impl EnergyParams {
    /// The taped-out chip's calibration: 18 banks, 50 MHz (the frequency all
    /// of the paper's experiments run at).
    #[must_use]
    pub fn dante_chip() -> Self {
        Self {
            device: DeviceModel::default_14nm(),
            c_sram_access: C_SRAM_ACCESS,
            c_pe_op: C_PE_OP,
            p_leak_sram_bank_nom: P_LEAK_SRAM_BANK_NOM,
            p_leak_pe_nom: P_LEAK_PE_NOM,
            booster_leak_fraction: BOOSTER_LEAK_FRACTION,
            sram_banks: DANTE_BANKS,
            frequency: Hertz::const_new(50.0e6),
        }
    }

    /// Returns a copy with a different memory/compute energy ratio
    /// (`C_sram = ratio * C_pe`), used by the Fig. 12 design-space sweep.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    #[must_use]
    pub fn with_energy_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "energy ratio must be positive");
        self.c_sram_access = self.c_pe_op * ratio;
        self
    }

    /// The device model in use.
    #[must_use]
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Operating frequency (fixed 50 MHz in the paper's experiments).
    #[must_use]
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// One clock period.
    #[must_use]
    pub fn cycle(&self) -> Second {
        self.frequency.period()
    }

    /// Number of SRAM banks.
    #[must_use]
    pub fn sram_banks(&self) -> usize {
        self.sram_banks
    }

    /// Dynamic energy of one SRAM bank access at rail voltage `v`
    /// (`E(SRAM, V)` of Eqs. 2/3/6).
    #[must_use]
    pub fn e_sram(&self, v: Volt) -> Joule {
        self.c_sram_access.switching_energy(v)
    }

    /// Dynamic energy of one PE operation at `v` (`E(PE, V)`).
    #[must_use]
    pub fn e_pe(&self, v: Volt) -> Joule {
        self.c_pe_op.switching_energy(v)
    }

    /// The memory-to-compute energy ratio at equal voltage (the paper's
    /// `Energy_ratio`).
    #[must_use]
    pub fn energy_ratio(&self) -> f64 {
        self.c_sram_access / self.c_pe_op
    }

    /// Total SRAM leakage power with every bank at `v`.
    #[must_use]
    pub fn leak_sram(&self, v: Volt) -> Watt {
        self.device
            .leakage_power(v, self.p_leak_sram_bank_nom * self.sram_banks as f64)
    }

    /// PE/control leakage power at `v`.
    #[must_use]
    pub fn leak_pe(&self, v: Volt) -> Watt {
        self.device.leakage_power(v, self.p_leak_pe_nom)
    }

    /// Booster-circuit leakage at `v` (`LE(BC, Vdd)` of Eq. 4): a fixed
    /// fraction of the chip leakage at the same voltage.
    #[must_use]
    pub fn leak_booster(&self, v: Volt) -> Watt {
        (self.leak_sram(v) + self.leak_pe(v)) * self.booster_leak_fraction
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::dante_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energies_scale_as_v_squared() {
        let p = EnergyParams::dante_chip();
        let e1 = p.e_sram(Volt::new(0.4));
        let e2 = p.e_sram(Volt::new(0.8));
        assert!((e2.joules() / e1.joules() - 4.0).abs() < 1e-9);
        let p1 = p.e_pe(Volt::new(0.3));
        let p2 = p.e_pe(Volt::new(0.6));
        assert!((p2.joules() / p1.joules() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_ratio_is_about_three() {
        // Sec. 6.1: "for designs with small banks ... the energy of a memory
        // access is not significantly higher than that of a compute op."
        let p = EnergyParams::dante_chip();
        assert!((p.energy_ratio() - 3.0).abs() < 0.01);
    }

    #[test]
    fn with_energy_ratio_overrides_sram_cost() {
        let p = EnergyParams::dante_chip().with_energy_ratio(10.0);
        assert!((p.energy_ratio() - 10.0).abs() < 1e-9);
        let v = Volt::new(0.5);
        assert!((p.e_sram(v).joules() / p.e_pe(v).joules() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn booster_leakage_is_six_percent_of_chip() {
        let p = EnergyParams::dante_chip();
        let v = Volt::new(0.4);
        let chip = p.leak_sram(v) + p.leak_pe(v);
        let bc = p.leak_booster(v);
        assert!((bc.watts() / chip.watts() - 0.06).abs() < 1e-9);
    }

    #[test]
    fn leakage_decreases_with_voltage() {
        let p = EnergyParams::dante_chip();
        assert!(p.leak_sram(Volt::new(0.4)) < p.leak_sram(Volt::new(0.6)));
        assert!(p.leak_pe(Volt::new(0.34)) < p.leak_pe(Volt::new(0.5)));
    }

    #[test]
    fn cycle_is_20ns_at_50mhz() {
        let p = EnergyParams::dante_chip();
        assert!((p.cycle().nanoseconds() - 20.0).abs() < 1e-9);
    }
}
