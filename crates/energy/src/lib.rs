//! # dante-energy
//!
//! Accelerator energy models for the *Dante* reproduction, implementing the
//! paper's equations (2)–(7):
//!
//! * [`params`] — absolute 14nm-like calibration (SRAM access, PE op,
//!   leakage) shared by every experiment.
//! * [`supply`] — the three power-supply configurations: single supply
//!   (Eq. 2), boosted (Eqs. 3–4), dual supply with an LDO (Eqs. 5–7).
//! * [`design_space`] — the Fig. 12 `Ops_ratio` x `Energy_ratio` sweep.
//! * [`breakdown`] — per-component (SRAM / logic / booster) energy splits.
//!
//! # Examples
//!
//! ```
//! use dante_energy::supply::{BoostedGroup, EnergyModel};
//! use dante_circuit::units::Volt;
//!
//! let m = EnergyModel::dante_chip();
//! let vdd = Volt::new(0.4);
//! // A conv-like workload: 1M MACs, 1.67% memory accesses, full boost.
//! let boost = m.dynamic_boosted(vdd, &[BoostedGroup { accesses: 16_700, level: 4 }], 1_000_000);
//! let dual = m.dynamic_dual(m.vddv(vdd, 4), vdd, 16_700, 1_000_000);
//! assert!(boost < dual); // boosting wins for reuse-friendly dataflows
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breakdown;
pub mod design_space;
pub mod params;
pub mod supply;

pub use breakdown::EnergyBreakdown;
pub use design_space::{sweep, DesignSpacePoint, DesignSpaceScenario};
pub use params::{EnergyParams, GeometrySpec};
pub use supply::{BoostedGroup, EnergyModel, SupplyKind};
