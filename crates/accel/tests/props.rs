//! Property tests for the accelerator simulator.

use dante_accel::chip::ChipConfig;
use dante_accel::executor::{BoostSchedule, Dante};
use dante_accel::isa::Instruction;
use dante_accel::memory::BoostedMemory;
use dante_accel::pe::{mac, quantize_multiplier, relu_q, requantize};
use dante_accel::program::Program;
use dante_circuit::bic::BoostConfig;
use dante_circuit::units::Volt;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every decodable instruction round-trips; FcTile over its full field
    /// ranges.
    #[test]
    fn fc_tile_roundtrip(
        w_word in 0u32..(1 << 20),
        in_word in 0u16..(1 << 12),
        in_len in 0u16..(1 << 12),
        out_len in 0u16..(1 << 12),
    ) {
        let i = Instruction::FcTile { w_word, in_word, in_len, out_len };
        prop_assert_eq!(Instruction::decode(i.encode()), Ok(i));
    }

    /// Requantization with a derived multiplier approximates the real ratio
    /// for arbitrary accumulators.
    #[test]
    fn requantize_tracks_ratio(acc in -1_000_000_000i64..1_000_000_000, log_ratio in -16.0f64..0.0) {
        let ratio = 2f64.powf(log_ratio);
        let (m, s) = quantize_multiplier(ratio);
        let expected = (acc as f64 * ratio).round();
        let got = f64::from(requantize(acc, m, s));
        if expected.abs() < f64::from(i16::MAX) {
            prop_assert!((expected - got).abs() <= 1.0, "acc {acc} ratio {ratio}: {expected} vs {got}");
        } else {
            prop_assert!(got == f64::from(i16::MAX) || got == f64::from(i16::MIN));
        }
    }

    /// MAC never loses precision over i16 operand ranges.
    #[test]
    fn mac_exact(acc in -1_000_000i64..1_000_000, w in any::<i16>(), x in any::<i16>()) {
        prop_assert_eq!(mac(acc, w, x), acc + i64::from(w) * i64::from(x));
        prop_assert!(relu_q(w) >= 0);
    }

    /// Fault-free memory round-trips arbitrary word patterns at any bank
    /// configuration.
    #[test]
    fn memory_roundtrip(pattern in any::<u64>(), level in 0usize..=4, addr_frac in 0.0f64..1.0) {
        let chip = ChipConfig::dante();
        let mut mem = BoostedMemory::fault_free(chip.input_memory, chip.booster(), Volt::new(0.4));
        mem.set_boost_level_all(level);
        let addr = ((mem.words() - 1) as f64 * addr_frac) as usize;
        mem.write(addr, pattern);
        prop_assert_eq!(mem.read(addr), pattern);
    }

    /// Bank voltages respond to configuration exactly as the booster ladder
    /// says.
    #[test]
    fn bank_voltage_matches_ladder(mask in 0u32..16, mv in 340u32..500) {
        let chip = ChipConfig::dante();
        let vdd = Volt::from_millivolts(f64::from(mv));
        let mut mem = BoostedMemory::fault_free(chip.weight_memory, chip.booster(), vdd);
        mem.set_boost_config(3, BoostConfig::from_mask(mask, 4));
        let expected = chip.booster().boosted_voltage(vdd, mask.count_ones() as usize);
        prop_assert!((mem.bank_access_voltage(3).volts() - expected.volts()).abs() < 1e-12);
    }

    /// A fault-free accelerator is deterministic and voltage-independent:
    /// the same program and sample give identical codes at any supply.
    #[test]
    fn fault_free_voltage_independence(seed in 0u64..50, mv in 340u32..790) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(8, 6, &mut rng)),
            Layer::Relu(Relu::new(6)),
            Layer::Dense(Dense::new(6, 3, &mut rng)),
        ]).expect("valid shapes");
        let calib: Vec<f32> = (0..8).map(|i| i as f32 / 8.0).collect();
        let program = Program::compile(&net, &calib).expect("dense net compiles");
        let schedule = BoostSchedule::uniform(2, 2, 1);

        let mut a = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
        let ra = a.run(&program, &schedule, &calib);
        let mut b = Dante::fault_free(ChipConfig::dante(), Volt::from_millivolts(f64::from(mv)));
        let rb = b.run(&program, &schedule, &calib);
        prop_assert_eq!(ra.codes, rb.codes);
    }

    /// set_boost_config instructions reach the right memory: weight-memory
    /// configs never change input-memory voltages.
    #[test]
    fn config_isolation(level in 1usize..=4) {
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.4));
        let mut rng = StdRng::seed_from_u64(1);
        let net = Network::new(vec![Layer::Dense(Dense::new(4, 2, &mut rng))]).expect("shapes");
        let calib = vec![0.5f32; 4];
        let program = Program::compile(&net, &calib).expect("compiles");
        // weight at `level`, input at 0: input accesses must all land in
        // level bucket 0 and weight accesses in bucket `level`.
        let schedule = BoostSchedule::uniform(level, 1, 0);
        let _ = dante.run(&program, &schedule, &calib);
        let w = dante.weight_stats().accesses_per_level();
        let i = dante.input_stats().accesses_per_level();
        for (l, &count) in w.iter().enumerate() {
            if l != level { prop_assert_eq!(count, 0, "weight bucket {}", l); }
        }
        for (l, &count) in i.iter().enumerate() {
            if l != 0 { prop_assert_eq!(count, 0, "input bucket {}", l); }
        }
        prop_assert!(w[level] > 0 && i[0] > 0);
    }
}
