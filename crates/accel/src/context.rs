//! Multi-context execution — the DANA heritage of the taped-out chip
//! (paper Sec. 4: "a dynamically allocated, multi-context neural network
//! accelerator architecture").
//!
//! Several networks (contexts) stay registered on one accelerator; requests
//! arrive tagged with a context id and the executor time-multiplexes them,
//! reprogramming each memory's boost configuration at every context switch
//! via `set_boost_config`. This is the architectural argument for
//! *programmable* boosting: with multiple resident applications, a fixed
//! boost level would have to be provisioned for the most sensitive context,
//! wasting energy on all the others.

use crate::executor::{BoostSchedule, Dante, InferenceResult};
use crate::program::Program;
use core::fmt;

/// Identifier of a registered context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextId(usize);

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// One registered context: a compiled program plus its boost schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Context {
    name: String,
    program: Program,
    schedule: BoostSchedule,
}

impl Context {
    /// Creates a context.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover the program's layers.
    #[must_use]
    pub fn new(name: impl Into<String>, program: Program, schedule: BoostSchedule) -> Self {
        assert_eq!(
            schedule.layers(),
            program.weight_layer_count(),
            "schedule must cover every weight-bearing program layer"
        );
        Self {
            name: name.into(),
            program,
            schedule,
        }
    }

    /// Context name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The boost schedule.
    #[must_use]
    pub fn schedule(&self) -> &BoostSchedule {
        &self.schedule
    }
}

/// An inference request: which context, and its input sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Target context.
    pub context: ContextId,
    /// Input sample (must match the context program's input length).
    pub sample: Vec<f32>,
}

/// Multi-context statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContextStats {
    /// Requests served.
    pub requests: u64,
    /// Context switches performed (a switch happens whenever consecutive
    /// requests target different contexts).
    pub switches: u64,
}

/// A Dante accelerator hosting multiple resident contexts.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiContextDante {
    dante: Dante,
    contexts: Vec<Context>,
    last: Option<ContextId>,
    stats: ContextStats,
}

impl MultiContextDante {
    /// Wraps an accelerator for multi-context service.
    #[must_use]
    pub fn new(dante: Dante) -> Self {
        Self {
            dante,
            contexts: Vec::new(),
            last: None,
            stats: ContextStats::default(),
        }
    }

    /// Registers a context, returning its id.
    pub fn register(&mut self, context: Context) -> ContextId {
        self.contexts.push(context);
        ContextId(self.contexts.len() - 1)
    }

    /// Number of resident contexts.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts.len()
    }

    /// The underlying accelerator (for stats and voltage control).
    #[must_use]
    pub fn dante(&self) -> &Dante {
        &self.dante
    }

    /// Mutable access to the underlying accelerator.
    #[must_use]
    pub fn dante_mut(&mut self) -> &mut Dante {
        &mut self.dante
    }

    /// Multi-context service statistics.
    #[must_use]
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    /// Serves one request.
    ///
    /// # Panics
    ///
    /// Panics if the context id is unknown or the sample length mismatches
    /// the context's program.
    pub fn serve(&mut self, request: &Request) -> InferenceResult {
        let ContextId(idx) = request.context;
        assert!(
            idx < self.contexts.len(),
            "unknown context {}",
            request.context
        );
        if self.last != Some(request.context) {
            if self.last.is_some() {
                self.stats.switches += 1;
            }
            self.last = Some(request.context);
        }
        self.stats.requests += 1;
        let ctx = &self.contexts[idx];
        self.dante
            .run(ctx.program(), ctx.schedule(), &request.sample)
    }

    /// Serves a whole request queue in order, returning one result per
    /// request.
    pub fn serve_all(&mut self, requests: &[Request]) -> Vec<InferenceResult> {
        requests.iter().map(|r| self.serve(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipConfig;
    use dante_circuit::units::Volt;
    use dante_nn::layers::{Dense, Layer, Relu};
    use dante_nn::network::Network;
    use dante_sram::fault::VminFaultModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn program(seed: u64, inputs: usize) -> Program {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(inputs, 10, &mut rng)),
            Layer::Relu(Relu::new(10)),
            Layer::Dense(Dense::new(10, 4, &mut rng)),
        ])
        .unwrap();
        let calib: Vec<f32> = (0..inputs).map(|i| i as f32 / inputs as f32).collect();
        Program::compile(&net, &calib).unwrap()
    }

    fn host(vdd: f64) -> MultiContextDante {
        let mut rng = StdRng::seed_from_u64(9);
        let dante = Dante::new(
            ChipConfig::dante(),
            &VminFaultModel::default_14nm(),
            Volt::new(vdd),
            &mut rng,
        );
        MultiContextDante::new(dante)
    }

    #[test]
    fn interleaving_does_not_change_results() {
        // A context's output on a given die must be identical whether it
        // runs alone or interleaved with another context — the isolation
        // guarantee that makes per-context boost schedules meaningful.
        let mut multi = host(0.40);
        let a = multi.register(Context::new(
            "sensitive",
            program(1, 12),
            BoostSchedule::uniform(4, 2, 3),
        ));
        let b = multi.register(Context::new(
            "tolerant",
            program(2, 8),
            BoostSchedule::uniform(1, 2, 1),
        ));
        let sample_a: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).cos().abs()).collect();
        let sample_b: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin().abs()).collect();

        let solo = multi.serve(&Request {
            context: a,
            sample: sample_a.clone(),
        });
        let _ = multi.serve(&Request {
            context: b,
            sample: sample_b.clone(),
        });
        let interleaved = multi.serve(&Request {
            context: a,
            sample: sample_a,
        });
        assert_eq!(solo, interleaved);
        assert_eq!(multi.contexts(), 2);
    }

    #[test]
    fn switches_are_counted_only_on_context_change() {
        let mut multi = host(0.45);
        let a = multi.register(Context::new(
            "a",
            program(3, 8),
            BoostSchedule::uniform(2, 2, 2),
        ));
        let b = multi.register(Context::new(
            "b",
            program(4, 8),
            BoostSchedule::uniform(0, 2, 0),
        ));
        let s = vec![0.5f32; 8];
        let requests = vec![
            Request {
                context: a,
                sample: s.clone(),
            },
            Request {
                context: a,
                sample: s.clone(),
            },
            Request {
                context: b,
                sample: s.clone(),
            },
            Request {
                context: a,
                sample: s.clone(),
            },
        ];
        let results = multi.serve_all(&requests);
        assert_eq!(results.len(), 4);
        assert_eq!(multi.stats().requests, 4);
        assert_eq!(multi.stats().switches, 2);
    }

    #[test]
    fn per_context_schedules_hit_different_boost_levels() {
        let mut multi = host(0.40);
        let a = multi.register(Context::new(
            "hi",
            program(5, 8),
            BoostSchedule::uniform(4, 2, 2),
        ));
        let b = multi.register(Context::new(
            "lo",
            program(6, 8),
            BoostSchedule::uniform(1, 2, 2),
        ));
        let s = vec![0.25f32; 8];
        let _ = multi.serve(&Request {
            context: a,
            sample: s.clone(),
        });
        let _ = multi.serve(&Request {
            context: b,
            sample: s,
        });
        let per_level = multi.dante().weight_stats().accesses_per_level();
        assert!(per_level[4] > 0, "context A's accesses at level 4");
        assert!(per_level[1] > 0, "context B's accesses at level 1");
    }

    #[test]
    #[should_panic(expected = "unknown context")]
    fn unknown_context_rejected() {
        let mut multi = host(0.45);
        let _ = multi.serve(&Request {
            context: ContextId(3),
            sample: vec![],
        });
    }
}
