//! The taped-out chip's configuration parameters (paper Table 1 and
//! Sec. 4), recorded as checked constants.

use dante_circuit::booster::BoosterBank;
use dante_circuit::units::{Hertz, SquareMicron, Volt};
use dante_sram::geometry::MemoryGeometry;

/// Chip configuration (paper Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Die width in millimetres.
    pub die_width_mm: f64,
    /// Die height in millimetres.
    pub die_height_mm: f64,
    /// Weight memory geometry (128 KB).
    pub weight_memory: MemoryGeometry,
    /// Input memory geometry (16 KB).
    pub input_memory: MemoryGeometry,
    /// Target frequency at nominal 0.8 V.
    pub f_nominal: Hertz,
    /// Target frequency for the low-voltage range (Vdd <= 0.5 V).
    pub f_low_voltage: Hertz,
    /// Lowest supported supply voltage.
    pub v_min: Volt,
    /// Highest supported supply voltage.
    pub v_max: Volt,
    /// Programmable boost levels.
    pub boost_levels: usize,
    /// Booster area per SRAM macro.
    pub booster_area_per_macro: SquareMicron,
    /// MIM capacitance per SRAM macro in picofarads.
    pub mim_capacitance_pf: f64,
    /// Number of processing elements.
    pub pe_count: usize,
}

impl ChipConfig {
    /// The *Dante* chip as taped out.
    #[must_use]
    pub fn dante() -> Self {
        Self {
            die_width_mm: 2.05,
            die_height_mm: 1.13,
            weight_memory: MemoryGeometry::dante_weight_memory(),
            input_memory: MemoryGeometry::dante_input_memory(),
            f_nominal: Hertz::const_new(330.0e6),
            f_low_voltage: Hertz::const_new(50.0e6),
            v_min: Volt::const_new(0.34),
            v_max: Volt::const_new(0.80),
            boost_levels: 4,
            booster_area_per_macro: SquareMicron::const_new(3900.0),
            mim_capacitance_pf: 40.0,
            pe_count: 8,
        }
    }

    /// Die area in square millimetres (Table 1: 2.3 mm^2).
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        self.die_width_mm * self.die_height_mm
    }

    /// Total on-chip SRAM in bytes (144 KB).
    #[must_use]
    pub fn total_sram_bytes(&self) -> usize {
        self.weight_memory.capacity_bytes() + self.input_memory.capacity_bytes()
    }

    /// Total SRAM macro count (36).
    #[must_use]
    pub fn total_macros(&self) -> usize {
        self.weight_memory.total_macros() + self.input_memory.total_macros()
    }

    /// Whether a supply voltage is within the chip's operating range.
    #[must_use]
    pub fn supports_voltage(&self, v: Volt) -> bool {
        v >= self.v_min && v <= self.v_max
    }

    /// A booster bank matching this chip's per-bank boost hardware.
    ///
    /// # Panics
    ///
    /// Panics if `boost_levels` does not divide the standard inverter
    /// budget (it always does for the taped-out 4).
    #[must_use]
    pub fn booster(&self) -> BoosterBank {
        BoosterBank::with_levels(self.boost_levels)
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::dante()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_invariants_hold() {
        let c = ChipConfig::dante();
        // 2.05 mm x 1.13 mm ~ 2.3 mm^2.
        assert!((c.die_area_mm2() - 2.3165).abs() < 1e-3);
        // 128 KB weights + 16 KB inputs = 144 KB over 36 macros.
        assert_eq!(c.total_sram_bytes(), 144 * 1024);
        assert_eq!(c.total_macros(), 36);
        // 4 programmable boost levels.
        assert_eq!(c.booster().levels(), 4);
        // 0.34 V to 0.8 V operating range.
        assert!(c.supports_voltage(Volt::new(0.34)));
        assert!(c.supports_voltage(Volt::new(0.8)));
        assert!(!c.supports_voltage(Volt::new(0.33)));
        assert!(!c.supports_voltage(Volt::new(0.9)));
    }

    #[test]
    fn booster_matches_table1_mim_budget() {
        let c = ChipConfig::dante();
        let bank = c.booster();
        let total_mim_pf: f64 = bank
            .cells()
            .iter()
            .filter_map(|cell| cell.mim().map(|m| m.capacitance().picofarads()))
            .sum();
        assert!((total_mim_pf - c.mim_capacitance_pf).abs() < 1e-9);
    }

    #[test]
    fn frequencies_match_table1() {
        let c = ChipConfig::dante();
        assert!((c.f_nominal.megahertz() - 330.0).abs() < 1e-9);
        assert!((c.f_low_voltage.megahertz() - 50.0).abs() < 1e-9);
    }
}
