//! The accelerator's control instruction set, including the paper's
//! `set_boost_config` instruction (Sec. 3.2.1).
//!
//! Instructions encode to single 64-bit control words. The encoding is
//! deliberately simple: an 8-bit opcode in the top byte, operands packed
//! little-endian below it.

use dante_circuit::bic::BoostConfig;

/// Which on-chip memory an instruction targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryId {
    /// The 128 KB weight memory.
    Weight,
    /// The 16 KB input/activation memory.
    Input,
}

impl MemoryId {
    fn code(self) -> u8 {
        match self {
            Self::Weight => 0,
            Self::Input => 1,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(Self::Weight),
            1 => Some(Self::Input),
            _ => None,
        }
    }
}

/// One control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// `set_boost_config`: program the boost configuration register of one
    /// bank. Applies to all subsequent accesses to that bank until
    /// re-written.
    SetBoostConfig {
        /// Target memory.
        mem: MemoryId,
        /// Bank index within the memory.
        bank: u8,
        /// Configuration bits (one per booster cell, 4 on the chip).
        config: u8,
    },
    /// Load a tile of weights from host memory into the weight memory.
    LoadWeights {
        /// Destination word address in the weight memory.
        dst_word: u32,
        /// Number of 64-bit words.
        words: u32,
    },
    /// Load an input vector into the input memory.
    LoadInputs {
        /// Destination word address in the input memory.
        dst_word: u32,
        /// Number of 64-bit words.
        words: u32,
    },
    /// Execute one fully-connected layer tile.
    ///
    /// Field widths in the encoding: `w_word` 20 bits, `in_word` 12 bits,
    /// `in_len` and `out_len` 12 bits each.
    FcTile {
        /// Word address of the first weight word of the tile.
        w_word: u32,
        /// Word address of the input activations.
        in_word: u16,
        /// Input activation count.
        in_len: u16,
        /// Output neurons in this tile.
        out_len: u16,
    },
    /// Stop execution.
    Halt,
}

/// Error decoding an instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// Operand field out of range.
    BadOperand(&'static str),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            Self::BadOperand(what) => write!(f, "bad operand: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_SET_BOOST: u8 = 0x01;
const OP_LOAD_W: u8 = 0x02;
const OP_LOAD_I: u8 = 0x03;
const OP_FC_TILE: u8 = 0x04;
const OP_HALT: u8 = 0xFF;

impl Instruction {
    /// Encodes to a 64-bit control word.
    #[must_use]
    pub fn encode(&self) -> u64 {
        match *self {
            Self::SetBoostConfig { mem, bank, config } => {
                (u64::from(OP_SET_BOOST) << 56)
                    | (u64::from(mem.code()) << 48)
                    | (u64::from(bank) << 40)
                    | u64::from(config)
            }
            Self::LoadWeights { dst_word, words } => {
                (u64::from(OP_LOAD_W) << 56) | (u64::from(dst_word) << 24) | u64::from(words)
            }
            Self::LoadInputs { dst_word, words } => {
                (u64::from(OP_LOAD_I) << 56) | (u64::from(dst_word) << 24) | u64::from(words)
            }
            Self::FcTile {
                w_word,
                in_word,
                in_len,
                out_len,
            } => {
                assert!(w_word < (1 << 20), "w_word exceeds 20-bit field");
                assert!(in_word < (1 << 12), "in_word exceeds 12-bit field");
                assert!(in_len < (1 << 12), "in_len exceeds 12-bit field");
                assert!(out_len < (1 << 12), "out_len exceeds 12-bit field");
                (u64::from(OP_FC_TILE) << 56)
                    | (u64::from(w_word) << 36)
                    | (u64::from(in_word) << 24)
                    | (u64::from(in_len) << 12)
                    | u64::from(out_len)
            }
            Self::Halt => u64::from(OP_HALT) << 56,
        }
    }

    /// Decodes a 64-bit control word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes or invalid operand
    /// fields.
    pub fn decode(word: u64) -> Result<Self, DecodeError> {
        let op = (word >> 56) as u8;
        match op {
            OP_SET_BOOST => {
                let mem = MemoryId::from_code((word >> 48) as u8)
                    .ok_or(DecodeError::BadOperand("memory id"))?;
                let bank = (word >> 40) as u8;
                let config = word as u8;
                Ok(Self::SetBoostConfig { mem, bank, config })
            }
            OP_LOAD_W => Ok(Self::LoadWeights {
                dst_word: ((word >> 24) & 0xFFFF_FFFF) as u32,
                words: (word & 0xFF_FFFF) as u32,
            }),
            OP_LOAD_I => Ok(Self::LoadInputs {
                dst_word: ((word >> 24) & 0xFFFF_FFFF) as u32,
                words: (word & 0xFF_FFFF) as u32,
            }),
            OP_FC_TILE => Ok(Self::FcTile {
                w_word: ((word >> 36) & 0xF_FFFF) as u32,
                in_word: ((word >> 24) & 0xFFF) as u16,
                in_len: ((word >> 12) & 0xFFF) as u16,
                out_len: (word & 0xFFF) as u16,
            }),
            OP_HALT => Ok(Self::Halt),
            other => Err(DecodeError::UnknownOpcode(other)),
        }
    }

    /// Convenience constructor for `set_boost_config` from a
    /// [`BoostConfig`].
    #[must_use]
    pub fn set_boost_config(mem: MemoryId, bank: u8, config: BoostConfig) -> Self {
        Self::SetBoostConfig {
            mem,
            bank,
            config: config.mask() as u8,
        }
    }

    /// Disassembles a slice of control words into listing lines; undecodable
    /// words render as `.word` directives rather than aborting the listing.
    #[must_use]
    pub fn disassemble(words: &[u64]) -> Vec<String> {
        words
            .iter()
            .enumerate()
            .map(|(pc, &w)| match Self::decode(w) {
                Ok(i) => format!("{pc:04}: {i}"),
                Err(e) => format!("{pc:04}: .word {w:#018x} ; {e}"),
            })
            .collect()
    }
}

impl core::fmt::Display for Instruction {
    /// Assembly-style rendering, e.g.
    /// `set_boost_config weight[3], 0b0111`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Self::SetBoostConfig { mem, bank, config } => {
                let m = match mem {
                    MemoryId::Weight => "weight",
                    MemoryId::Input => "input",
                };
                write!(f, "set_boost_config {m}[{bank}], {config:#06b}")
            }
            Self::LoadWeights { dst_word, words } => {
                write!(f, "load_weights @{dst_word}, {words} words")
            }
            Self::LoadInputs { dst_word, words } => {
                write!(f, "load_inputs @{dst_word}, {words} words")
            }
            Self::FcTile {
                w_word,
                in_word,
                in_len,
                out_len,
            } => {
                write!(
                    f,
                    "fc_tile w@{w_word}, x@{in_word}, in={in_len}, out={out_len}"
                )
            }
            Self::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_boost_config_round_trips() {
        for mem in [MemoryId::Weight, MemoryId::Input] {
            for bank in [0u8, 3, 17] {
                for config in [0u8, 0b1111, 0b0101] {
                    let i = Instruction::SetBoostConfig { mem, bank, config };
                    assert_eq!(Instruction::decode(i.encode()), Ok(i));
                }
            }
        }
    }

    #[test]
    fn load_instructions_round_trip() {
        let i = Instruction::LoadWeights {
            dst_word: 12_345,
            words: 678,
        };
        assert_eq!(Instruction::decode(i.encode()), Ok(i));
        let i = Instruction::LoadInputs {
            dst_word: 99,
            words: 1,
        };
        assert_eq!(Instruction::decode(i.encode()), Ok(i));
    }

    #[test]
    fn fc_tile_round_trips() {
        let i = Instruction::FcTile {
            w_word: 16_383,
            in_word: 98,
            in_len: 784,
            out_len: 256,
        };
        assert_eq!(Instruction::decode(i.encode()), Ok(i));
        let max = Instruction::FcTile {
            w_word: (1 << 20) - 1,
            in_word: (1 << 12) - 1,
            in_len: (1 << 12) - 1,
            out_len: (1 << 12) - 1,
        };
        assert_eq!(Instruction::decode(max.encode()), Ok(max));
    }

    #[test]
    #[should_panic(expected = "exceeds 20-bit field")]
    fn oversized_fc_tile_rejected() {
        let _ = Instruction::FcTile {
            w_word: 1 << 20,
            in_word: 0,
            in_len: 1,
            out_len: 1,
        }
        .encode();
    }

    #[test]
    fn halt_round_trips() {
        assert_eq!(
            Instruction::decode(Instruction::Halt.encode()),
            Ok(Instruction::Halt)
        );
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        assert_eq!(
            Instruction::decode(0xAB << 56),
            Err(DecodeError::UnknownOpcode(0xAB))
        );
    }

    #[test]
    fn bad_memory_id_is_rejected() {
        // opcode SET_BOOST with memory code 7.
        let word = (u64::from(0x01u8) << 56) | (7u64 << 48);
        assert_eq!(
            Instruction::decode(word),
            Err(DecodeError::BadOperand("memory id"))
        );
    }

    #[test]
    fn from_boost_config_uses_the_mask() {
        let cfg = BoostConfig::from_level(3, 4);
        let i = Instruction::set_boost_config(MemoryId::Weight, 2, cfg);
        assert_eq!(
            i,
            Instruction::SetBoostConfig {
                mem: MemoryId::Weight,
                bank: 2,
                config: 0b0111
            }
        );
    }

    #[test]
    fn display_reads_like_assembly() {
        let i = Instruction::SetBoostConfig {
            mem: MemoryId::Weight,
            bank: 3,
            config: 0b0111,
        };
        assert_eq!(format!("{i}"), "set_boost_config weight[3], 0b0111");
        let t = Instruction::FcTile {
            w_word: 5,
            in_word: 2,
            in_len: 784,
            out_len: 83,
        };
        assert_eq!(format!("{t}"), "fc_tile w@5, x@2, in=784, out=83");
        assert_eq!(format!("{}", Instruction::Halt), "halt");
    }

    #[test]
    fn disassemble_survives_bad_words() {
        let good = Instruction::LoadInputs {
            dst_word: 1,
            words: 2,
        }
        .encode();
        let listing = Instruction::disassemble(&[good, 0xAB00_0000_0000_0000]);
        assert_eq!(listing.len(), 2);
        assert!(listing[0].contains("load_inputs"));
        assert!(listing[1].contains(".word") && listing[1].contains("unknown opcode"));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(format!("{}", DecodeError::UnknownOpcode(0xAB)).contains("0xab"));
        assert!(format!("{}", DecodeError::BadOperand("x")).contains('x'));
    }
}
