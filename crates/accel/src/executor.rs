//! The accelerator executor: runs compiled programs on the boosted
//! memories, cycle-approximately and bit-accurately.
//!
//! Execution follows the taped-out chip's flow (paper Sec. 4): weights are
//! DMA'd layer by layer (in tiles, since a full layer exceeds the 128 KB
//! weight memory) into the boosted weight memory, activations ping-pong
//! through the input memory, and every access happens at the rail voltage
//! selected by that bank's `set_boost_config` state — so low-voltage fault
//! injection, boosting, and the ISA all compose exactly as in hardware.

use crate::chip::ChipConfig;
use crate::isa::{Instruction, MemoryId};
use crate::memory::{BoostedMemory, MemoryStats};
use crate::pe::{relu_q, requantize};
use crate::program::Program;
use dante_circuit::bic::BoostConfig;
use dante_circuit::units::Volt;
use dante_nn::gemm::dot_i16;
use dante_sram::fault::VminFaultModel;
use rand::Rng;

/// Boost levels to apply while executing a program: one level per compiled
/// layer's weight accesses, plus one for the input/activation memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoostSchedule {
    weight_levels: Vec<usize>,
    input_level: usize,
}

impl BoostSchedule {
    /// Same boost level for every weight layer.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is zero.
    #[must_use]
    pub fn uniform(level: usize, layers: usize, input_level: usize) -> Self {
        assert!(layers > 0, "schedule needs at least one layer");
        Self {
            weight_levels: vec![level; layers],
            input_level,
        }
    }

    /// Explicit per-layer weight levels (the paper's `Boost_diff`
    /// configurations).
    ///
    /// # Panics
    ///
    /// Panics if `weight_levels` is empty.
    #[must_use]
    pub fn per_layer(weight_levels: Vec<usize>, input_level: usize) -> Self {
        assert!(
            !weight_levels.is_empty(),
            "schedule needs at least one layer"
        );
        Self {
            weight_levels,
            input_level,
        }
    }

    /// Weight boost level of layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[must_use]
    pub fn weight_level(&self, l: usize) -> usize {
        self.weight_levels[l]
    }

    /// Weight levels for all layers.
    #[must_use]
    pub fn weight_levels(&self) -> &[usize] {
        &self.weight_levels
    }

    /// Input-memory boost level.
    #[must_use]
    pub fn input_level(&self) -> usize {
        self.input_level
    }

    /// Number of layers covered.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.weight_levels.len()
    }
}

/// Result of one inference on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Raw output activation codes.
    pub codes: Vec<i16>,
    /// Dequantized logits.
    pub logits: Vec<f32>,
    /// Predicted class (argmax of the logits).
    pub prediction: usize,
}

/// An inference plus the output activation codes of every compiled stage —
/// the observable a differential checker compares layer by layer against
/// the reference math.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceTrace {
    /// Output codes of each stage, in execution order.
    pub layer_codes: Vec<Vec<i16>>,
    /// The final inference result.
    pub result: InferenceResult,
}

/// Cumulative execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// Control instructions issued.
    pub instructions: u64,
    /// `set_boost_config` instructions issued (the paper argues these must
    /// stay rare).
    pub boost_config_writes: u64,
    /// Approximate cycles: memory accesses plus MACs over the PE count.
    pub cycles: u64,
}

/// The Dante accelerator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Dante {
    chip: ChipConfig,
    weight_mem: BoostedMemory,
    input_mem: BoostedMemory,
    stats: ExecStats,
}

impl Dante {
    /// Creates an accelerator with fresh fault dies in both memories.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        chip: ChipConfig,
        model: &VminFaultModel,
        vdd: Volt,
        rng: &mut R,
    ) -> Self {
        let booster = chip.booster();
        let weight_mem = BoostedMemory::new(chip.weight_memory, booster.clone(), model, vdd, rng);
        let input_mem = BoostedMemory::new(chip.input_memory, booster, model, vdd, rng);
        Self {
            chip,
            weight_mem,
            input_mem,
            stats: ExecStats::default(),
        }
    }

    /// Creates an ideal fault-free accelerator (reference runs).
    #[must_use]
    pub fn fault_free(chip: ChipConfig, vdd: Volt) -> Self {
        let booster = chip.booster();
        let weight_mem = BoostedMemory::fault_free(chip.weight_memory, booster.clone(), vdd);
        let input_mem = BoostedMemory::fault_free(chip.input_memory, booster, vdd);
        Self {
            chip,
            weight_mem,
            input_mem,
            stats: ExecStats::default(),
        }
    }

    /// The chip configuration.
    #[must_use]
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Changes the shared supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if the voltage is outside the chip's operating range.
    pub fn set_vdd(&mut self, vdd: Volt) {
        assert!(
            self.chip.supports_voltage(vdd),
            "{vdd} outside the chip operating range"
        );
        self.weight_mem.set_vdd(vdd);
        self.input_mem.set_vdd(vdd);
    }

    /// Current supply voltage.
    #[must_use]
    pub fn vdd(&self) -> Volt {
        self.weight_mem.vdd()
    }

    /// Execution statistics.
    #[must_use]
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Weight-memory access statistics.
    #[must_use]
    pub fn weight_stats(&self) -> &MemoryStats {
        self.weight_mem.stats()
    }

    /// Input-memory access statistics.
    #[must_use]
    pub fn input_stats(&self) -> &MemoryStats {
        self.input_mem.stats()
    }

    /// Resets all statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
        self.weight_mem.reset_stats();
        self.input_mem.reset_stats();
    }

    fn issue(&mut self, instr: Instruction) {
        self.stats.instructions += 1;
        if let Instruction::SetBoostConfig { mem, bank, config } = instr {
            self.stats.boost_config_writes += 1;
            let width = u8::try_from(self.chip.booster().levels()).expect("levels fit u8");
            let cfg = BoostConfig::from_mask(u32::from(config), width);
            match mem {
                MemoryId::Weight => self.weight_mem.set_boost_config(usize::from(bank), cfg),
                MemoryId::Input => self.input_mem.set_boost_config(usize::from(bank), cfg),
            }
        }
    }

    fn set_memory_level(&mut self, mem: MemoryId, level: usize) {
        let banks = match mem {
            MemoryId::Weight => self.weight_mem.geometry().banks(),
            MemoryId::Input => self.input_mem.geometry().banks(),
        };
        let width = u8::try_from(self.chip.booster().levels()).expect("levels fit u8");
        for bank in 0..banks {
            let cfg = BoostConfig::from_level(level, width);
            self.issue(Instruction::set_boost_config(
                mem,
                u8::try_from(bank).expect("bank index fits u8"),
                cfg,
            ));
        }
    }

    fn write_codes(&mut self, mem: MemoryId, base_word: usize, codes: &[i16]) {
        for (w, chunk) in codes.chunks(4).enumerate() {
            let mut word = 0u64;
            for (lane, &c) in chunk.iter().enumerate() {
                word |= u64::from(c as u16) << (16 * lane);
            }
            match mem {
                MemoryId::Weight => self.weight_mem.write(base_word + w, word),
                MemoryId::Input => self.input_mem.write(base_word + w, word),
            }
        }
    }

    fn read_codes(&mut self, mem: MemoryId, base_word: usize, len: usize) -> Vec<i16> {
        let mut out = Vec::with_capacity(len);
        for w in 0..len.div_ceil(4) {
            let word = match mem {
                MemoryId::Weight => self.weight_mem.read(base_word + w),
                MemoryId::Input => self.input_mem.read(base_word + w),
            };
            for lane in 0..4 {
                if out.len() < len {
                    out.push(((word >> (16 * lane)) & 0xFFFF) as u16 as i16);
                }
            }
        }
        out
    }

    /// Executes one FC stage (tiled over the weight memory).
    fn run_fc(
        &mut self,
        layer: &crate::program::QuantizedFcLayer,
        x: &[i16],
        act_base: usize,
    ) -> Vec<i16> {
        let words_per_row = layer.words_per_row();
        let rows_per_tile = (self.weight_mem.words() / words_per_row).min(layer.out_len());
        assert!(
            rows_per_tile > 0,
            "layer row exceeds weight memory capacity"
        );
        let (m, s) = layer.requant();
        let codes = layer.weights().codes();

        let mut out_codes = Vec::with_capacity(layer.out_len());
        let mut row = 0usize;
        while row < layer.out_len() {
            let tile_rows = rows_per_tile.min(layer.out_len() - row);
            // DMA the tile into the weight memory, row-aligned to words.
            self.issue(Instruction::LoadWeights {
                dst_word: 0,
                words: u32::try_from(tile_rows * words_per_row).expect("fits u32"),
            });
            for r in 0..tile_rows {
                let base = (row + r) * layer.in_len();
                let word_codes: Vec<i16> = codes[base..base + layer.in_len()]
                    .iter()
                    .map(|&c| c as i16)
                    .collect();
                self.write_codes(MemoryId::Weight, r * words_per_row, &word_codes);
            }
            // Compute the tile.
            self.issue(Instruction::FcTile {
                w_word: 0,
                in_word: u16::try_from(act_base).unwrap_or(0),
                in_len: u16::try_from(layer.in_len().min(4095)).expect("fits field"),
                out_len: u16::try_from(tile_rows.min(4095)).expect("fits field"),
            });
            for r in 0..tile_rows {
                let w_row = self.read_codes(MemoryId::Weight, r * words_per_row, layer.in_len());
                // Shared integer kernel: `dot_i16` only reorders exact `i64`
                // additions, so the tile result is bit-identical to the
                // sequential MAC chain.
                let acc = dot_i16(layer.bias_acc()[row + r], &w_row, &x[..layer.in_len()]);
                self.stats.macs += layer.in_len() as u64;
                let mut code = requantize(acc, m, s);
                if layer.relu() {
                    code = relu_q(code);
                }
                out_codes.push(code);
            }
            row += tile_rows;
        }
        out_codes
    }

    /// Executes one convolution stage: each output channel's filter row is
    /// DMA'd into the weight memory, read back once (filter-resident
    /// reuse), and swept across the feature map.
    fn run_conv(&mut self, conv: &crate::program::QuantizedConvLayer, x: &[i16]) -> Vec<i16> {
        let words_per_row = conv.words_per_row();
        let row_len = conv.row_len();
        let channels = conv.out_channels();
        let rows_per_tile = (self.weight_mem.words() / words_per_row).min(channels);
        assert!(
            rows_per_tile > 0,
            "filter row exceeds weight memory capacity"
        );
        let (m, s) = conv.requant();
        let codes = conv.weights().codes();
        let (c_in, h, w) = conv.in_shape();
        let (k, p) = (conv.kernel(), conv.padding());
        let (oh, ow) = (conv.out_h(), conv.out_w());

        let mut out_codes = vec![0i16; conv.out_len()];
        let mut ch = 0usize;
        while ch < channels {
            let tile_rows = rows_per_tile.min(channels - ch);
            self.issue(Instruction::LoadWeights {
                dst_word: 0,
                words: u32::try_from(tile_rows * words_per_row).expect("fits u32"),
            });
            for r in 0..tile_rows {
                let base = (ch + r) * row_len;
                let word_codes: Vec<i16> = codes[base..base + row_len]
                    .iter()
                    .map(|&c| c as i16)
                    .collect();
                self.write_codes(MemoryId::Weight, r * words_per_row, &word_codes);
            }
            self.issue(Instruction::FcTile {
                w_word: 0,
                in_word: 0,
                in_len: u16::try_from(row_len.min(4095)).expect("fits field"),
                out_len: u16::try_from(tile_rows.min(4095)).expect("fits field"),
            });
            for r in 0..tile_rows {
                let w_row = self.read_codes(MemoryId::Weight, r * words_per_row, row_len);
                let bias = conv.bias_acc()[ch + r];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        // Each unclipped filter row is a contiguous span of
                        // both the weight row and the input plane, so the
                        // inner loop collapses to one `dot_i16` per (ic, ky).
                        let kx_lo = p.saturating_sub(ox);
                        let kx_hi = k.min((p + w).saturating_sub(ox));
                        for ic in 0..c_in {
                            for ky in 0..k {
                                let iy = oy + ky;
                                if iy < p || iy - p >= h {
                                    continue;
                                }
                                let iy = iy - p;
                                if kx_lo >= kx_hi {
                                    continue;
                                }
                                let wb = (ic * k + ky) * k;
                                let xb = (ic * h + iy) * w + (ox + kx_lo - p);
                                acc = dot_i16(
                                    acc,
                                    &w_row[wb + kx_lo..wb + kx_hi],
                                    &x[xb..xb + (kx_hi - kx_lo)],
                                );
                            }
                        }
                        self.stats.macs += row_len as u64;
                        let mut code = requantize(acc, m, s);
                        if conv.relu() {
                            code = relu_q(code);
                        }
                        out_codes[((ch + r) * oh + oy) * ow + ox] = code;
                    }
                }
            }
            ch += tile_rows;
        }
        out_codes
    }

    /// Executes one PE-local 2x2 max-pool stage on activation codes (max of
    /// same-scale fixed-point codes equals max of values).
    fn run_pool(pool: &crate::program::PoolStage, x: &[i16]) -> Vec<i16> {
        let (c, h, w) = (pool.channels, pool.in_h, pool.in_w);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Vec::with_capacity(pool.out_len());
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = i16::MIN;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            best = best.max(x[(ch * h + oy * 2 + dy) * w + ox * 2 + dx]);
                        }
                    }
                    out.push(best);
                }
            }
        }
        out
    }

    /// Runs one inference.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover the program's weight-bearing
    /// layers, a boost level exceeds the chip's, the sample length
    /// mismatches the program, or an activation volume exceeds an
    /// input-memory region.
    pub fn run(
        &mut self,
        program: &Program,
        schedule: &BoostSchedule,
        sample: &[f32],
    ) -> InferenceResult {
        self.run_traced(program, schedule, sample).result
    }

    /// Runs one inference and records the output codes of every stage.
    ///
    /// Semantically identical to [`Self::run`] — the trace is taken from the
    /// same activation values the next layer consumes, so comparing it
    /// against a reference pins down the *first* diverging stage.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Self::run`].
    pub fn run_traced(
        &mut self,
        program: &Program,
        schedule: &BoostSchedule,
        sample: &[f32],
    ) -> InferenceTrace {
        assert_eq!(
            schedule.layers(),
            program.weight_layer_count(),
            "schedule must cover every weight-bearing program layer"
        );
        let max_level = self.chip.booster().levels();
        assert!(
            schedule.input_level() <= max_level
                && schedule.weight_levels().iter().all(|&l| l <= max_level),
            "boost level exceeds the chip's {max_level}"
        );
        let region_codes = self.input_mem.words() / 2 * 4;
        for layer in program.layers() {
            assert!(
                layer.in_len() <= region_codes && layer.out_len() <= region_codes,
                "activation volume exceeds an input-memory region ({region_codes} codes)"
            );
        }

        // Load the quantized input into the input memory.
        self.set_memory_level(MemoryId::Input, schedule.input_level());
        let input_codes = program.quantize_input(sample);
        let words = u32::try_from(input_codes.len().div_ceil(4)).expect("fits u32");
        self.issue(Instruction::LoadInputs { dst_word: 0, words });
        self.write_codes(MemoryId::Input, 0, &input_codes);

        let ping = 0usize;
        let pong = self.input_mem.words() / 2;
        let mut act_base = ping;
        let mut act_len = input_codes.len();
        let mut out_codes: Vec<i16> = Vec::new();
        let mut layer_codes: Vec<Vec<i16>> = Vec::with_capacity(program.layers().len());
        let mut weight_stage = 0usize;

        for layer in program.layers() {
            if layer.has_weights() {
                self.set_memory_level(MemoryId::Weight, schedule.weight_level(weight_stage));
                weight_stage += 1;
            }

            // Activations for this layer (read at the input-memory rail).
            let x = self.read_codes(MemoryId::Input, act_base, act_len);

            out_codes = match layer {
                crate::program::CompiledLayer::Fc(fc) => self.run_fc(fc, &x, act_base),
                crate::program::CompiledLayer::Conv(conv) => self.run_conv(conv, &x),
                crate::program::CompiledLayer::Pool(pool) => Self::run_pool(pool, &x),
            };

            // Write activations for the next layer (final layer included —
            // the chip stores its outputs before the host drains them).
            let out_base = if act_base == ping { pong } else { ping };
            self.write_codes(MemoryId::Input, out_base, &out_codes);
            act_base = out_base;
            act_len = out_codes.len();
            layer_codes.push(out_codes.clone());
        }
        self.issue(Instruction::Halt);

        let out_scale = program.logit_scale();
        let logits: Vec<f32> = out_codes
            .iter()
            .map(|&c| f32::from(c) * out_scale)
            .collect();
        let prediction = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty logits");

        let mem_accesses = self.weight_mem.stats().total() + self.input_mem.stats().total();
        self.stats.cycles = mem_accesses + self.stats.macs.div_ceil(self.chip.pe_count as u64);

        InferenceTrace {
            layer_codes,
            result: InferenceResult {
                codes: out_codes,
                logits,
                prediction,
            },
        }
    }

    /// Runs a batch of samples, returning one result per sample.
    ///
    /// Semantically identical to calling [`Self::run`] per sample (same die,
    /// same schedule, deterministic corruption), provided as the natural
    /// entry point for throughput-style experiments.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` is not a multiple of the program's input
    /// length, or on any condition [`Self::run`] panics on.
    pub fn run_batch(
        &mut self,
        program: &Program,
        schedule: &BoostSchedule,
        samples: &[f32],
    ) -> Vec<InferenceResult> {
        let in_len = program.in_len();
        assert_eq!(samples.len() % in_len, 0, "sample buffer length mismatch");
        samples
            .chunks_exact(in_len)
            .map(|s| self.run(program, schedule, s))
            .collect()
    }

    /// Runs a labelled batch and returns the classification accuracy.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths are inconsistent.
    pub fn accuracy(
        &mut self,
        program: &Program,
        schedule: &BoostSchedule,
        images: &[f32],
        labels: &[u8],
    ) -> f64 {
        let in_len = program.in_len();
        assert_eq!(
            images.len(),
            labels.len() * in_len,
            "image buffer length mismatch"
        );
        if labels.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for (i, &label) in labels.iter().enumerate() {
            let r = self.run(program, schedule, &images[i * in_len..(i + 1) * in_len]);
            if r.prediction == usize::from(label) {
                correct += 1;
            }
        }
        correct as f64 / labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_nn::layers::{Dense, Layer, Relu};
    use dante_nn::network::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_setup() -> (Network, Program) {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(vec![
            Layer::Dense(Dense::new(16, 12, &mut rng)),
            Layer::Relu(Relu::new(12)),
            Layer::Dense(Dense::new(12, 4, &mut rng)),
        ])
        .unwrap();
        let calib: Vec<f32> = (0..16 * 8).map(|i| ((i * 13) % 17) as f32 / 17.0).collect();
        let program = Program::compile(&net, &calib).unwrap();
        (net, program)
    }

    #[test]
    fn fault_free_run_matches_float_reference_prediction() {
        let (net, program) = toy_setup();
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
        let schedule = BoostSchedule::uniform(0, 2, 0);
        for k in 0..8 {
            let sample: Vec<f32> = (0..16)
                .map(|i| ((i * 7 + k * 3) % 11) as f32 / 11.0)
                .collect();
            let r = dante.run(&program, &schedule, &sample);
            let float_logits = net.forward(&sample, 1);
            // Quantized and float logits agree closely.
            for (q, f) in r.logits.iter().zip(&float_logits) {
                assert!((q - f).abs() < 0.05, "logit mismatch: {q} vs {f}");
            }
        }
    }

    #[test]
    fn run_is_deterministic() {
        let (_, program) = toy_setup();
        let mut rng = StdRng::seed_from_u64(9);
        let mut dante = Dante::new(
            ChipConfig::dante(),
            &VminFaultModel::default_14nm(),
            Volt::new(0.4),
            &mut rng,
        );
        let schedule = BoostSchedule::uniform(2, 2, 4);
        let sample: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
        let a = dante.run(&program, &schedule, &sample);
        let b = dante.run(&program, &schedule, &sample);
        assert_eq!(a, b);
    }

    #[test]
    fn boosting_recovers_low_voltage_corruption() {
        // The paper's central claim, end to end on the simulator: at VLV an
        // unboosted run corrupts logits, a fully boosted run matches the
        // clean reference.
        let (_, program) = toy_setup();
        let sample: Vec<f32> = (0..16).map(|i| ((i % 5) as f32) / 5.0).collect();

        let mut clean = Dante::fault_free(ChipConfig::dante(), Volt::new(0.4));
        let reference = clean.run(&program, &BoostSchedule::uniform(0, 2, 0), &sample);

        let mut rng = StdRng::seed_from_u64(42);
        let mut faulty = Dante::new(
            ChipConfig::dante(),
            &VminFaultModel::default_14nm(),
            Volt::new(0.38),
            &mut rng,
        );
        let boosted = faulty.run(&program, &BoostSchedule::uniform(4, 2, 4), &sample);
        assert_eq!(
            boosted.codes, reference.codes,
            "full boost at 0.38 V must be error-free"
        );

        let unboosted = faulty.run(&program, &BoostSchedule::uniform(0, 2, 0), &sample);
        assert_ne!(
            unboosted.codes, reference.codes,
            "unboosted 0.38 V should corrupt the outputs of this die"
        );
    }

    fn conv_setup() -> (Network, Program) {
        use dante_nn::layers::{Conv2d, MaxPool2d, Shape3};
        let mut rng = StdRng::seed_from_u64(23);
        let net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(Shape3::new(1, 8, 8), 4, 3, 1, &mut rng)),
            Layer::Relu(Relu::new(4 * 64)),
            Layer::MaxPool2d(MaxPool2d::new(Shape3::new(4, 8, 8))),
            Layer::Dense(Dense::new(64, 5, &mut rng)),
        ])
        .unwrap();
        let calib: Vec<f32> = (0..64 * 4).map(|i| ((i * 11) % 17) as f32 / 17.0).collect();
        let program = Program::compile(&net, &calib).unwrap();
        (net, program)
    }

    #[test]
    fn conv_program_matches_float_reference_on_clean_silicon() {
        let (net, program) = conv_setup();
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
        let schedule = BoostSchedule::uniform(0, 2, 0); // conv + dense
        for k in 0..6 {
            let sample: Vec<f32> = (0..64)
                .map(|i| ((i * 3 + k * 7) % 13) as f32 / 13.0)
                .collect();
            let r = dante.run(&program, &schedule, &sample);
            let float_logits = net.forward(&sample, 1);
            for (q, f) in r.logits.iter().zip(&float_logits) {
                assert!(
                    (q - f).abs() < 0.08 * (1.0 + f.abs()),
                    "conv logit mismatch: {q} vs {f}"
                );
            }
            assert_eq!(
                r.prediction,
                net.predict(&sample, 1)[0],
                "prediction mismatch on sample {k}"
            );
        }
    }

    #[test]
    fn boosting_recovers_conv_corruption_at_vlv() {
        let (_, program) = conv_setup();
        let sample: Vec<f32> = (0..64).map(|i| ((i % 7) as f32) / 7.0).collect();

        let mut clean = Dante::fault_free(ChipConfig::dante(), Volt::new(0.38));
        let reference = clean.run(&program, &BoostSchedule::uniform(0, 2, 0), &sample);

        let mut rng = StdRng::seed_from_u64(99);
        let mut faulty = Dante::new(
            ChipConfig::dante(),
            &VminFaultModel::default_14nm(),
            Volt::new(0.38),
            &mut rng,
        );
        let boosted = faulty.run(&program, &BoostSchedule::uniform(4, 2, 4), &sample);
        assert_eq!(
            boosted.codes, reference.codes,
            "full boost must be clean for conv too"
        );
        let unboosted = faulty.run(&program, &BoostSchedule::uniform(0, 2, 0), &sample);
        assert_ne!(
            unboosted.codes, reference.codes,
            "unboosted conv run should corrupt"
        );
    }

    #[test]
    #[should_panic(expected = "activation volume exceeds")]
    fn oversized_conv_activations_rejected() {
        use dante_nn::layers::{Conv2d, Shape3};
        let mut rng = StdRng::seed_from_u64(5);
        // 16 channels of 32x32 = 16384 codes > the 4096-code region.
        let net = Network::new(vec![Layer::Conv2d(Conv2d::new(
            Shape3::new(3, 32, 32),
            16,
            3,
            1,
            &mut rng,
        ))])
        .unwrap();
        let calib = vec![0.1f32; net.in_len()];
        let program = Program::compile(&net, &calib).unwrap();
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
        let _ = dante.run(&program, &BoostSchedule::uniform(0, 1, 0), &calib);
    }

    #[test]
    fn run_batch_matches_per_sample_runs() {
        let (_, program) = toy_setup();
        let mut rng = StdRng::seed_from_u64(15);
        let mut dante = Dante::new(
            ChipConfig::dante(),
            &VminFaultModel::default_14nm(),
            Volt::new(0.40),
            &mut rng,
        );
        let schedule = BoostSchedule::uniform(3, 2, 2);
        let samples: Vec<f32> = (0..16 * 3).map(|i| ((i * 5) % 9) as f32 / 9.0).collect();
        let batched = dante.run_batch(&program, &schedule, &samples);
        assert_eq!(batched.len(), 3);
        for (i, expected) in batched.iter().enumerate() {
            let single = dante.run(&program, &schedule, &samples[i * 16..(i + 1) * 16]);
            assert_eq!(&single, expected);
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let (_, program) = toy_setup();
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
        let schedule = BoostSchedule::uniform(1, 2, 0);
        let sample = vec![0.25f32; 16];
        let _ = dante.run(&program, &schedule, &sample);
        let stats = dante.stats();
        assert_eq!(stats.macs, (16 * 12 + 12 * 4) as u64);
        assert!(stats.instructions > 0);
        assert!(stats.boost_config_writes > 0);
        assert!(stats.cycles > stats.macs / 8);
        // Weight accesses happened at level 1, input accesses at level 0.
        assert!(dante.weight_stats().accesses_per_level()[1] > 0);
        assert!(dante.input_stats().accesses_per_level()[0] > 0);
        dante.reset_stats();
        assert_eq!(dante.stats(), ExecStats::default());
        assert_eq!(dante.weight_stats().total(), 0);
    }

    #[test]
    fn accuracy_on_separable_toy_task_is_high_when_boosted() {
        let mut rng = StdRng::seed_from_u64(11);
        // Two separable classes in 8-D.
        let mut net = Network::new(vec![
            Layer::Dense(Dense::new(8, 8, &mut rng)),
            Layer::Relu(Relu::new(8)),
            Layer::Dense(Dense::new(8, 2, &mut rng)),
        ])
        .unwrap();
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = (i % 2) as u8;
            let base = if c == 0 { 0.8 } else { 0.1 };
            for j in 0..8 {
                images.push(base + ((i * 7 + j) % 5) as f32 * 0.02);
            }
            labels.push(c);
        }
        let cfg = dante_nn::train::SgdConfig {
            epochs: 25,
            batch_size: 10,
            ..Default::default()
        };
        dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
        let program = Program::compile(&net, &images).unwrap();

        let mut dante = Dante::new(
            ChipConfig::dante(),
            &VminFaultModel::default_14nm(),
            Volt::new(0.40),
            &mut rng,
        );
        let boosted = dante.accuracy(&program, &BoostSchedule::uniform(4, 2, 4), &images, &labels);
        assert!(boosted > 0.95, "boosted accuracy {boosted}");
    }

    #[test]
    #[should_panic(expected = "outside the chip operating range")]
    fn out_of_range_voltage_rejected() {
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
        dante.set_vdd(Volt::new(0.2));
    }

    #[test]
    #[should_panic(expected = "schedule must cover")]
    fn schedule_length_validated() {
        let (_, program) = toy_setup();
        let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
        let _ = dante.run(&program, &BoostSchedule::uniform(0, 1, 0), &[0.0; 16]);
    }
}
