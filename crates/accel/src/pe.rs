//! Fixed-point processing-element arithmetic: 16-bit MAC datapath with a
//! 64-bit accumulator, rounding requantization, and ReLU.
//!
//! The taped-out chip's PEs perform multiply-and-accumulate and activation
//! computation (paper Sec. 4). Arithmetic here is bit-exact and fully
//! deterministic, so an accelerator run can be compared word-for-word
//! against a host-side reference.

/// Multiply-accumulate: `acc + w * x` in a wide accumulator.
#[must_use]
pub fn mac(acc: i64, w: i16, x: i16) -> i64 {
    acc + i64::from(w) * i64::from(x)
}

/// Requantizes a wide accumulator to a 16-bit activation code:
/// `round(acc * multiplier / 2^shift)`, saturating.
///
/// `multiplier/2^shift` approximates `s_w * s_x / s_out`, the scale change
/// from the product domain to the output activation domain.
///
/// # Panics
///
/// Panics if `shift >= 63` (the rounding bias would overflow).
#[must_use]
pub fn requantize(acc: i64, multiplier: i32, shift: u32) -> i16 {
    assert!(shift < 63, "requantization shift too large");
    let prod = i128::from(acc) * i128::from(multiplier);
    let bias = 1i128 << shift >> 1; // 2^(shift-1), 0 when shift == 0
    let rounded = if prod >= 0 {
        (prod + bias) >> shift
    } else {
        -((-prod + bias) >> shift)
    };
    rounded.clamp(i128::from(i16::MIN), i128::from(i16::MAX)) as i16
}

/// Fixed-point ReLU.
#[must_use]
pub fn relu_q(x: i16) -> i16 {
    x.max(0)
}

/// Derives a `(multiplier, shift)` pair approximating `ratio` with a
/// 31-bit multiplier (standard quantized-inference scheme).
///
/// # Panics
///
/// Panics unless `ratio` is positive and finite.
#[must_use]
pub fn quantize_multiplier(ratio: f64) -> (i32, u32) {
    assert!(
        ratio > 0.0 && ratio.is_finite(),
        "requant ratio must be positive and finite"
    );
    let mut shift = 0u32;
    let mut scaled = ratio;
    // Normalize into [2^30, 2^31) so the multiplier keeps full precision.
    while scaled < (1u64 << 30) as f64 && shift < 62 {
        scaled *= 2.0;
        shift += 1;
    }
    while scaled >= (1u64 << 31) as f64 && shift > 0 {
        scaled /= 2.0;
        shift -= 1;
    }
    let m = scaled.round();
    assert!(
        m <= f64::from(i32::MAX),
        "requant ratio {ratio} too large to encode"
    );
    (m as i32, shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_accumulates_products() {
        assert_eq!(mac(10, 3, 4), 22);
        assert_eq!(mac(0, -5, 7), -35);
        assert_eq!(
            mac(i64::from(i32::MAX), i16::MAX, i16::MAX),
            i64::from(i32::MAX) + 1_073_676_289
        );
    }

    #[test]
    fn requantize_rounds_to_nearest() {
        // ratio = 1/4 via multiplier 1, shift 2.
        assert_eq!(requantize(8, 1, 2), 2);
        assert_eq!(requantize(9, 1, 2), 2); // 2.25 -> 2
        assert_eq!(requantize(10, 1, 2), 3); // 2.5 -> 3 (round half away)
        assert_eq!(requantize(-10, 1, 2), -3);
        assert_eq!(requantize(7, 1, 0), 7);
    }

    #[test]
    fn requantize_saturates_to_i16() {
        assert_eq!(requantize(1 << 40, 1, 0), i16::MAX);
        assert_eq!(requantize(-(1 << 40), 1, 0), i16::MIN);
    }

    #[test]
    fn relu_clamps_negative_codes() {
        assert_eq!(relu_q(-5), 0);
        assert_eq!(relu_q(0), 0);
        assert_eq!(relu_q(123), 123);
    }

    #[test]
    fn quantize_multiplier_approximates_ratio() {
        for &ratio in &[3e-5f64, 0.25, 0.999, 1.0, 7.3] {
            let (m, s) = quantize_multiplier(ratio);
            let approx = f64::from(m) / (1u64 << s) as f64;
            assert!(
                (approx - ratio).abs() / ratio < 1e-8,
                "ratio {ratio} -> {approx} (m={m}, s={s})"
            );
        }
    }

    #[test]
    fn requantize_with_derived_multiplier_matches_float() {
        let ratio = 3.1e-5f64;
        let (m, s) = quantize_multiplier(ratio);
        for &acc in &[0i64, 1_000_000, -2_345_678, 987_654_321] {
            let expected = (acc as f64 * ratio).round() as i64;
            let got = i64::from(requantize(acc, m, s));
            assert!(
                (expected - got).abs() <= 1,
                "acc {acc}: expected ~{expected}, got {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_ratio_rejected() {
        let _ = quantize_multiplier(0.0);
    }

    /// The PE's requantizer and the host-side GEMM epilogue
    /// (`dante_nn::gemm::round_shift_saturate`) must be the same function,
    /// including at accumulator/multiplier extremes — the executor relies on
    /// this when cross-checking accelerator runs against the host reference.
    #[test]
    fn requantize_matches_gemm_epilogue_at_extremes() {
        let accs = [
            i64::MIN,
            i64::MIN + 1,
            -(1i64 << 40) - 1,
            -3,
            -1,
            0,
            1,
            3,
            (1i64 << 40) + 1,
            i64::MAX - 1,
            i64::MAX,
        ];
        let mults = [1i32, 2, 3, (1 << 30) - 1, 1 << 30, i32::MAX];
        let shifts = [0u32, 1, 2, 15, 31, 47, 62];
        for &acc in &accs {
            for &m in &mults {
                for &s in &shifts {
                    assert_eq!(
                        requantize(acc, m, s),
                        dante_nn::gemm::round_shift_saturate(acc, m, s),
                        "acc={acc} m={m} s={s}"
                    );
                }
            }
        }
    }
}
