//! Boosted banked memories: `dante-sram` macros behind per-bank booster
//! columns and BIC blocks (paper Sec. 4).
//!
//! Every read or write resolves the target bank, asks its BIC how many
//! booster cells fire under the current configuration, and performs the
//! access at the resulting boosted rail voltage — so data stored in a bank
//! programmed to a low boost level really does corrupt more at low `Vdd`.
//! Per-level access counters feed the paper's Eq. 3 energy accounting.

use crate::chip::ChipConfig;
use dante_circuit::bic::{BoostConfig, BoostInputControl, ChipEnable, ClockPhase};
use dante_circuit::booster::BoosterBank;
use dante_circuit::units::Volt;
use dante_sram::fault::VminFaultModel;
use dante_sram::geometry::MemoryGeometry;
use dante_sram::storage::FaultyMacro;
use rand::Rng;

/// Per-memory access statistics, bucketed by boost level.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Reads per boost level (index = level).
    pub reads_per_level: Vec<u64>,
    /// Writes per boost level (index = level).
    pub writes_per_level: Vec<u64>,
}

impl MemoryStats {
    fn new(levels: usize) -> Self {
        Self {
            reads_per_level: vec![0; levels + 1],
            writes_per_level: vec![0; levels + 1],
        }
    }

    /// Total reads.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads_per_level.iter().sum()
    }

    /// Total writes.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes_per_level.iter().sum()
    }

    /// Total accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Accesses per level (reads + writes), the `SRAMAcc_i` groups of Eq. 3.
    #[must_use]
    pub fn accesses_per_level(&self) -> Vec<u64> {
        self.reads_per_level
            .iter()
            .zip(&self.writes_per_level)
            .map(|(r, w)| r + w)
            .collect()
    }
}

/// A banked memory with per-bank programmable boosting.
#[derive(Debug, Clone, PartialEq)]
pub struct BoostedMemory {
    geometry: MemoryGeometry,
    macros: Vec<FaultyMacro>,
    bics: Vec<BoostInputControl>,
    booster: BoosterBank,
    vdd: Volt,
    stats: MemoryStats,
}

impl BoostedMemory {
    /// Creates a memory whose macros draw fresh fault dies from `model`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        geometry: MemoryGeometry,
        booster: BoosterBank,
        model: &VminFaultModel,
        vdd: Volt,
        rng: &mut R,
    ) -> Self {
        let macros = (0..geometry.total_macros())
            .map(|_| FaultyMacro::new(geometry.bank_geometry().macro_geometry(), model, rng))
            .collect();
        Self::assemble(geometry, booster, macros, vdd)
    }

    /// Creates an ideal fault-free memory (reference runs).
    #[must_use]
    pub fn fault_free(geometry: MemoryGeometry, booster: BoosterBank, vdd: Volt) -> Self {
        let macros = (0..geometry.total_macros())
            .map(|_| FaultyMacro::fault_free(geometry.bank_geometry().macro_geometry()))
            .collect();
        Self::assemble(geometry, booster, macros, vdd)
    }

    fn assemble(
        geometry: MemoryGeometry,
        booster: BoosterBank,
        macros: Vec<FaultyMacro>,
        vdd: Volt,
    ) -> Self {
        let levels = booster.levels();
        let width = u8::try_from(levels).expect("booster level count fits in u8");
        let bics = (0..geometry.banks())
            .map(|_| BoostInputControl::new(width))
            .collect();
        Self {
            geometry,
            macros,
            bics,
            booster,
            vdd,
            stats: MemoryStats::new(levels),
        }
    }

    /// The chip's weight memory at `vdd` with a fresh fault die.
    #[must_use]
    pub fn dante_weight<R: Rng + ?Sized>(model: &VminFaultModel, vdd: Volt, rng: &mut R) -> Self {
        let chip = ChipConfig::dante();
        Self::new(chip.weight_memory, chip.booster(), model, vdd, rng)
    }

    /// The chip's input memory at `vdd` with a fresh fault die.
    #[must_use]
    pub fn dante_input<R: Rng + ?Sized>(model: &VminFaultModel, vdd: Volt, rng: &mut R) -> Self {
        let chip = ChipConfig::dante();
        Self::new(chip.input_memory, chip.booster(), model, vdd, rng)
    }

    /// The memory geometry.
    #[must_use]
    pub fn geometry(&self) -> MemoryGeometry {
        self.geometry
    }

    /// Addressable 64-bit words.
    #[must_use]
    pub fn words(&self) -> usize {
        self.geometry.words()
    }

    /// Current supply voltage.
    #[must_use]
    pub fn vdd(&self) -> Volt {
        self.vdd
    }

    /// Changes the shared supply voltage.
    pub fn set_vdd(&mut self, vdd: Volt) {
        self.vdd = vdd;
    }

    /// Programs one bank's boost configuration — the hardware effect of the
    /// `set_boost_config` instruction.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or the config width mismatches.
    pub fn set_boost_config(&mut self, bank: usize, config: BoostConfig) {
        assert!(bank < self.geometry.banks(), "bank {bank} out of range");
        self.bics[bank].set_config(config);
    }

    /// Programs every bank to the same boost level.
    pub fn set_boost_level_all(&mut self, level: usize) {
        let width = u8::try_from(self.booster.levels()).expect("level count fits u8");
        for bank in 0..self.geometry.banks() {
            self.set_boost_config(bank, BoostConfig::from_level(level, width));
        }
    }

    /// The boost configuration of a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn boost_config(&self, bank: usize) -> BoostConfig {
        assert!(bank < self.geometry.banks(), "bank {bank} out of range");
        self.bics[bank].config()
    }

    /// The effective rail voltage a bank's accesses see right now.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank_access_voltage(&self, bank: usize) -> Volt {
        let level = self.bank_level(bank);
        self.booster.boosted_voltage(self.vdd, level)
    }

    fn bank_level(&self, bank: usize) -> usize {
        assert!(bank < self.geometry.banks(), "bank {bank} out of range");
        self.bics[bank].boosting_count(ChipEnable::Active, ClockPhase::High)
    }

    fn locate(&self, addr: usize) -> (usize, usize, usize) {
        let (bank, word_in_bank) = self.geometry.decode(addr);
        let words_per_macro = self.geometry.bank_geometry().macro_geometry().words();
        let macro_in_bank = word_in_bank / words_per_macro;
        let word_in_macro = word_in_bank % words_per_macro;
        let macro_idx = bank * self.geometry.bank_geometry().macros_per_bank() + macro_in_bank;
        (bank, macro_idx, word_in_macro)
    }

    /// Reads the 64-bit word at `addr` at the bank's boosted voltage.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize) -> u64 {
        let (bank, macro_idx, word) = self.locate(addr);
        let level = self.bank_level(bank);
        let v = self.booster.boosted_voltage(self.vdd, level);
        self.stats.reads_per_level[level] += 1;
        self.macros[macro_idx].read(word, v)
    }

    /// Writes the 64-bit word at `addr` (counted at the bank's boost level).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: u64) {
        let (bank, macro_idx, word) = self.locate(addr);
        let level = self.bank_level(bank);
        self.stats.writes_per_level[level] += 1;
        self.macros[macro_idx].write(word, value);
    }

    /// Access statistics.
    #[must_use]
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Resets the access statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::new(self.booster.levels());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weight_mem(vdd: f64, seed: u64) -> BoostedMemory {
        let mut rng = StdRng::seed_from_u64(seed);
        BoostedMemory::dante_weight(&VminFaultModel::default_14nm(), Volt::new(vdd), &mut rng)
    }

    #[test]
    fn geometry_matches_chip() {
        let m = weight_mem(0.5, 1);
        assert_eq!(m.words(), 16 * 1024);
        assert_eq!(m.geometry().banks(), 16);
    }

    #[test]
    fn unboosted_low_voltage_reads_corrupt_boosted_reads_do_not() {
        let mut m = weight_mem(0.40, 2);
        for addr in 0..m.words() {
            m.write(addr, 0);
        }
        // Unboosted at 0.40 V: expect corruption.
        m.set_boost_level_all(0);
        let mut flips_unboosted = 0u32;
        for addr in 0..m.words() {
            flips_unboosted += m.read(addr).count_ones();
        }
        // Fully boosted: rail at ~0.60 V, expect (near-)zero corruption.
        m.set_boost_level_all(4);
        let mut flips_boosted = 0u32;
        for addr in 0..m.words() {
            flips_boosted += m.read(addr).count_ones();
        }
        assert!(
            flips_unboosted > 1000,
            "expected heavy corruption at 0.40 V, got {flips_unboosted}"
        );
        assert_eq!(
            flips_boosted, 0,
            "full boost must eliminate errors at 0.40 V"
        );
    }

    #[test]
    fn per_bank_configuration_is_independent() {
        let mut m = weight_mem(0.40, 3);
        m.set_boost_config(0, BoostConfig::from_level(4, 4));
        m.set_boost_config(1, BoostConfig::from_level(1, 4));
        assert!(m.bank_access_voltage(0) > m.bank_access_voltage(1));
        assert!(m.bank_access_voltage(1) > m.bank_access_voltage(2)); // bank 2 unboosted
    }

    #[test]
    fn stats_bucket_accesses_by_level() {
        let mut m = weight_mem(0.45, 4);
        m.set_boost_level_all(2);
        m.write(0, 7);
        let _ = m.read(0);
        let _ = m.read(1);
        m.set_boost_level_all(4);
        let _ = m.read(2);
        let s = m.stats();
        assert_eq!(s.reads_per_level[2], 2);
        assert_eq!(s.reads_per_level[4], 1);
        assert_eq!(s.writes_per_level[2], 1);
        assert_eq!(s.total(), 4);
        assert_eq!(s.accesses_per_level()[2], 3);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut m = weight_mem(0.5, 5);
        m.write(0, 1);
        m.reset_stats();
        assert_eq!(m.stats().total(), 0);
    }

    #[test]
    fn fault_free_memory_is_always_clean() {
        let chip = ChipConfig::dante();
        let mut m = BoostedMemory::fault_free(chip.input_memory, chip.booster(), Volt::new(0.34));
        for addr in 0..m.words() {
            m.write(addr, 0xA5A5_5A5A_0F0F_F0F0);
        }
        for addr in 0..m.words() {
            assert_eq!(m.read(addr), 0xA5A5_5A5A_0F0F_F0F0);
        }
    }

    #[test]
    fn addresses_span_banks_contiguously() {
        let mut m = weight_mem(0.5, 6);
        // Write distinct values at the bank boundary and read them back.
        let per_bank = m.geometry().bank_geometry().words();
        m.write(per_bank - 1, 11);
        m.write(per_bank, 22);
        assert_eq!(m.read(per_bank - 1), 11);
        assert_eq!(m.read(per_bank), 22);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_bounds_checked() {
        let mut m = weight_mem(0.5, 7);
        m.set_boost_config(16, BoostConfig::from_level(1, 4));
    }
}
