//! Compilation of a trained [`dante_nn::Network`] into a quantized
//! accelerator program.
//!
//! Compilation quantizes each weight layer with the chip's scaled 16-bit
//! format (2 guard bits), runs a float calibration batch to size the
//! activation scales, and derives the per-layer requantization multipliers.
//! Dense layers map directly; convolutions are lowered im2col-style (each
//! output channel's filter becomes one weight row the PEs sweep across the
//! feature map — the filter-resident reuse pattern of real conv
//! accelerators); max-pool becomes a PE-local stage on activation codes.
//! The result is everything the executor needs: packed weight words, scale
//! metadata, and layer geometry.

use crate::pe::quantize_multiplier;
use dante_nn::layers::Layer;
use dante_nn::network::Network;
use dante_nn::quant::{ScaledQuantizer, ScaledTensor};

/// Guard factor applied to activation scales (2 guard bits, matching the
/// weight format).
const ACT_GUARD: f32 = 4.0;

/// One compiled fully-connected layer.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedFcLayer {
    weights: ScaledTensor,
    /// Per-neuron bias in accumulator units (`s_w * s_x`), added before
    /// requantization.
    bias_acc: Vec<i64>,
    in_len: usize,
    out_len: usize,
    relu: bool,
    requant_multiplier: i32,
    requant_shift: u32,
    out_scale: f32,
}

impl QuantizedFcLayer {
    /// Output-major quantized weights (`[out][in]`, row-contiguous).
    #[must_use]
    pub fn weights(&self) -> &ScaledTensor {
        &self.weights
    }

    /// Per-neuron bias in accumulator units.
    #[must_use]
    pub fn bias_acc(&self) -> &[i64] {
        &self.bias_acc
    }

    /// Input activation count.
    #[must_use]
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Output neuron count.
    #[must_use]
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// Whether a ReLU follows this layer.
    #[must_use]
    pub fn relu(&self) -> bool {
        self.relu
    }

    /// Requantization multiplier/shift pair.
    #[must_use]
    pub fn requant(&self) -> (i32, u32) {
        (self.requant_multiplier, self.requant_shift)
    }

    /// Scale of the output activation codes.
    #[must_use]
    pub fn out_scale(&self) -> f32 {
        self.out_scale
    }

    /// 64-bit words one output neuron's weight row occupies (word-aligned).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.in_len.div_ceil(4)
    }
}

/// One compiled convolution layer (im2col-lowered: one weight row per
/// output channel, swept over the feature map by the executor).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedConvLayer {
    weights: ScaledTensor,
    bias_acc: Vec<i64>,
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    relu: bool,
    requant_multiplier: i32,
    requant_shift: u32,
    out_scale: f32,
}

impl QuantizedConvLayer {
    /// Quantized filters, one row of `in_c * k * k` codes per output
    /// channel.
    #[must_use]
    pub fn weights(&self) -> &ScaledTensor {
        &self.weights
    }

    /// Per-channel bias in accumulator units.
    #[must_use]
    pub fn bias_acc(&self) -> &[i64] {
        &self.bias_acc
    }

    /// Input shape `(c, h, w)`.
    #[must_use]
    pub fn in_shape(&self) -> (usize, usize, usize) {
        (self.in_c, self.in_h, self.in_w)
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Symmetric zero padding.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Whether a ReLU is fused onto the output.
    #[must_use]
    pub fn relu(&self) -> bool {
        self.relu
    }

    /// Requantization multiplier/shift pair.
    #[must_use]
    pub fn requant(&self) -> (i32, u32) {
        (self.requant_multiplier, self.requant_shift)
    }

    /// Scale of the output activation codes.
    #[must_use]
    pub fn out_scale(&self) -> f32 {
        self.out_scale
    }

    /// Input activation count.
    #[must_use]
    pub fn in_len(&self) -> usize {
        self.in_c * self.in_h * self.in_w
    }

    /// Output spatial height (stride 1).
    #[must_use]
    pub fn out_h(&self) -> usize {
        self.in_h + 2 * self.padding - self.kernel + 1
    }

    /// Output spatial width (stride 1).
    #[must_use]
    pub fn out_w(&self) -> usize {
        self.in_w + 2 * self.padding - self.kernel + 1
    }

    /// Output activation count.
    #[must_use]
    pub fn out_len(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Codes per filter row (`in_c * k * k`).
    #[must_use]
    pub fn row_len(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }

    /// 64-bit words one filter row occupies (word-aligned).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.row_len().div_ceil(4)
    }
}

/// A 2x2/stride-2 max-pool stage executed on activation codes inside the
/// PEs (max of fixed-point codes equals max of values at a shared scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStage {
    /// Input channels.
    pub channels: usize,
    /// Input height (even).
    pub in_h: usize,
    /// Input width (even).
    pub in_w: usize,
}

impl PoolStage {
    /// Input activation count.
    #[must_use]
    pub fn in_len(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    /// Output activation count.
    #[must_use]
    pub fn out_len(&self) -> usize {
        self.channels * (self.in_h / 2) * (self.in_w / 2)
    }
}

/// One stage of a compiled program.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledLayer {
    /// Fully-connected stage.
    Fc(QuantizedFcLayer),
    /// Convolution stage.
    Conv(QuantizedConvLayer),
    /// Max-pool stage (no weights).
    Pool(PoolStage),
}

impl CompiledLayer {
    /// Input activation count.
    #[must_use]
    pub fn in_len(&self) -> usize {
        match self {
            Self::Fc(l) => l.in_len(),
            Self::Conv(l) => l.in_len(),
            Self::Pool(p) => p.in_len(),
        }
    }

    /// Output activation count.
    #[must_use]
    pub fn out_len(&self) -> usize {
        match self {
            Self::Fc(l) => l.out_len(),
            Self::Conv(l) => l.out_len(),
            Self::Pool(p) => p.out_len(),
        }
    }

    /// Whether the stage holds weights in the weight memory (and therefore
    /// consumes a boost-schedule entry).
    #[must_use]
    pub fn has_weights(&self) -> bool {
        matches!(self, Self::Fc(_) | Self::Conv(_))
    }

    /// The FC stage, if this is one.
    #[must_use]
    pub fn as_fc(&self) -> Option<&QuantizedFcLayer> {
        match self {
            Self::Fc(l) => Some(l),
            _ => None,
        }
    }

    /// Scale of the stage's output codes (`None` for pool, which preserves
    /// its input scale).
    #[must_use]
    pub fn out_scale(&self) -> Option<f32> {
        match self {
            Self::Fc(l) => Some(l.out_scale()),
            Self::Conv(l) => Some(l.out_scale()),
            Self::Pool(_) => None,
        }
    }
}

/// A compiled accelerator program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    layers: Vec<CompiledLayer>,
    input_scale: f32,
}

/// Error compiling a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The network contains a layer kind the FC accelerator cannot map.
    UnsupportedLayer {
        /// Index of the offending layer.
        index: usize,
        /// Human-readable layer kind.
        kind: &'static str,
    },
    /// The calibration set was empty.
    EmptyCalibration,
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnsupportedLayer { index, kind } => {
                write!(
                    f,
                    "layer {index} ({kind}) cannot be mapped onto the FC accelerator"
                )
            }
            Self::EmptyCalibration => write!(f, "calibration set is empty"),
        }
    }
}

impl std::error::Error for CompileError {}

impl Program {
    /// Compiles a dense/ReLU network.
    ///
    /// `calibration` is a batch of representative input samples
    /// (`net.in_len()` floats each) used to size activation scales.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnsupportedLayer`] for conv/pool layers and
    /// [`CompileError::EmptyCalibration`] for an empty calibration batch.
    ///
    /// # Panics
    ///
    /// Panics if `calibration.len()` is not a multiple of `net.in_len()`.
    pub fn compile(net: &Network, calibration: &[f32]) -> Result<Self, CompileError> {
        if calibration.is_empty() {
            return Err(CompileError::EmptyCalibration);
        }
        let in_len = net.in_len();
        assert_eq!(
            calibration.len() % in_len,
            0,
            "calibration batch length mismatch"
        );
        let batch = calibration.len() / in_len;

        let max_abs = |xs: &[f32]| xs.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-9);
        let quantizer = ScaledQuantizer::weight_default();
        let input_scale = max_abs(calibration) * ACT_GUARD / 32767.0;

        let mut layers: Vec<CompiledLayer> = Vec::new();
        let mut act = calibration.to_vec();
        let mut act_scale = input_scale;
        // A weight stage awaiting possible ReLU fusion, with its float
        // calibration output and output scale.
        let mut pending: Option<(CompiledLayer, Vec<f32>, f32)> = None;

        // Shared requantization derivation for FC and conv stages.
        let derive = |weights: &ScaledTensor,
                      act_scale: f32,
                      out: &[f32],
                      bias: &[f32]|
         -> (f32, i32, u32, Vec<i64>) {
            let max_abs = |xs: &[f32]| xs.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-9);
            let out_scale = max_abs(out) * ACT_GUARD / 32767.0;
            let ratio = f64::from(weights.scale()) * f64::from(act_scale) / f64::from(out_scale);
            let (m, s) = quantize_multiplier(ratio);
            let acc_scale = f64::from(weights.scale()) * f64::from(act_scale);
            let bias_acc = bias
                .iter()
                .map(|&b| (f64::from(b) / acc_scale).round() as i64)
                .collect();
            (out_scale, m, s, bias_acc)
        };

        for (index, layer) in net.layers().iter().enumerate() {
            if let Layer::Relu(_) = layer {
                let Some((mut stage, out, scale)) = pending.take() else {
                    return Err(CompileError::UnsupportedLayer {
                        index,
                        kind: "relu without preceding weight layer",
                    });
                };
                match &mut stage {
                    CompiledLayer::Fc(l) => l.relu = true,
                    CompiledLayer::Conv(l) => l.relu = true,
                    CompiledLayer::Pool(_) => unreachable!("pool is never pending"),
                }
                layers.push(stage);
                act = out.iter().map(|&v| v.max(0.0)).collect();
                act_scale = scale;
                continue;
            }
            // Any non-ReLU layer flushes a pending weight stage unfused.
            if let Some((stage, out, scale)) = pending.take() {
                layers.push(stage);
                act = out;
                act_scale = scale;
            }
            match layer {
                Layer::Dense(d) => {
                    // Transpose [in x out] -> out-major rows.
                    let (inf, outf) = (d.in_features(), d.out_features());
                    let mut w_t = vec![0.0f32; inf * outf];
                    let w = d.weights().as_slice();
                    for i in 0..inf {
                        for o in 0..outf {
                            w_t[o * inf + i] = w[i * outf + o];
                        }
                    }
                    let weights = quantizer.quantize(&w_t);
                    let out = d.forward(&act, batch);
                    let (out_scale, m, s, bias_acc) = derive(&weights, act_scale, &out, d.bias());
                    let compiled = CompiledLayer::Fc(QuantizedFcLayer {
                        weights,
                        bias_acc,
                        in_len: inf,
                        out_len: outf,
                        relu: false,
                        requant_multiplier: m,
                        requant_shift: s,
                        out_scale,
                    });
                    pending = Some((compiled, out, out_scale));
                }
                Layer::Conv2d(c) => {
                    // Conv weights are already stored out-channel-major
                    // ([oc][ic][kh][kw]) — one im2col row per channel.
                    let weights = quantizer.quantize(c.weights());
                    let out = c.forward(&act, batch);
                    let (out_scale, m, s, bias_acc) = derive(&weights, act_scale, &out, c.bias());
                    let shape = c.in_shape();
                    let compiled = CompiledLayer::Conv(QuantizedConvLayer {
                        weights,
                        bias_acc,
                        in_c: shape.c,
                        in_h: shape.h,
                        in_w: shape.w,
                        out_channels: c.out_channels(),
                        kernel: c.kernel(),
                        padding: c.padding(),
                        relu: false,
                        requant_multiplier: m,
                        requant_shift: s,
                        out_scale,
                    });
                    pending = Some((compiled, out, out_scale));
                }
                Layer::MaxPool2d(p) => {
                    let shape = p.in_shape();
                    layers.push(CompiledLayer::Pool(PoolStage {
                        channels: shape.c,
                        in_h: shape.h,
                        in_w: shape.w,
                    }));
                    act = p.forward(&act, batch);
                    // Max pooling preserves the activation scale.
                }
                Layer::Relu(_) => unreachable!("handled above"),
            }
        }
        if let Some((stage, _, _)) = pending.take() {
            layers.push(stage);
        }
        Ok(Self {
            layers,
            input_scale,
        })
    }

    /// The compiled stages in execution order.
    #[must_use]
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// Number of weight-bearing stages — the count a
    /// [`BoostSchedule`](crate::executor::BoostSchedule) must cover.
    #[must_use]
    pub fn weight_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.has_weights()).count()
    }

    /// Scale of quantized input codes.
    #[must_use]
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Input feature count.
    #[must_use]
    pub fn in_len(&self) -> usize {
        self.layers.first().map_or(0, CompiledLayer::in_len)
    }

    /// Output (logit) count.
    #[must_use]
    pub fn out_len(&self) -> usize {
        self.layers.last().map_or(0, CompiledLayer::out_len)
    }

    /// Scale of the final logit codes.
    ///
    /// # Panics
    ///
    /// Panics on an empty program.
    #[must_use]
    pub fn logit_scale(&self) -> f32 {
        self.layers
            .iter()
            .rev()
            .find_map(CompiledLayer::out_scale)
            .unwrap_or(self.input_scale)
    }

    /// Returns a copy of this program whose weight tensors have been passed
    /// through `f`, called as `f(weight_stage_position, tensor)` in
    /// execution order. This is the hook external fault-injection harnesses
    /// (e.g. `dante-verify`'s differential tester) use to corrupt the
    /// compiled bit image without touching scales, biases, or requantizers
    /// — exactly what a weight-memory fault does on the chip.
    #[must_use]
    pub fn map_weight_tensors(&self, mut f: impl FnMut(usize, &mut ScaledTensor)) -> Self {
        let mut out = self.clone();
        let mut pos = 0usize;
        for layer in &mut out.layers {
            match layer {
                CompiledLayer::Fc(l) => {
                    f(pos, &mut l.weights);
                    pos += 1;
                }
                CompiledLayer::Conv(l) => {
                    f(pos, &mut l.weights);
                    pos += 1;
                }
                CompiledLayer::Pool(_) => {}
            }
        }
        out
    }

    /// Quantizes an input sample to activation codes.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() != in_len()`.
    #[must_use]
    pub fn quantize_input(&self, sample: &[f32]) -> Vec<i16> {
        assert_eq!(sample.len(), self.in_len(), "input length mismatch");
        sample
            .iter()
            .map(|&v| {
                let code = (f64::from(v) / f64::from(self.input_scale)).round();
                code.clamp(-32768.0, 32767.0) as i16
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dante_nn::layers::{Dense, Relu};
    use dante_nn::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net() -> Network {
        let mut rng = StdRng::seed_from_u64(1);
        Network::new(vec![
            Layer::Dense(Dense::new(8, 6, &mut rng)),
            Layer::Relu(Relu::new(6)),
            Layer::Dense(Dense::new(6, 3, &mut rng)),
        ])
        .unwrap()
    }

    #[test]
    fn compile_produces_one_quantized_layer_per_dense() {
        let net = small_net();
        let calib = vec![0.5f32; 8 * 4];
        let p = Program::compile(&net, &calib).unwrap();
        assert_eq!(p.layers().len(), 2);
        assert_eq!(p.weight_layer_count(), 2);
        assert!(p.layers()[0].as_fc().unwrap().relu());
        assert!(!p.layers()[1].as_fc().unwrap().relu());
        assert_eq!(p.in_len(), 8);
        assert_eq!(p.out_len(), 3);
    }

    #[test]
    fn weights_are_transposed_to_output_major() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let net =
            Network::new(vec![Layer::Dense(Dense::from_parameters(w, vec![0.0; 3]))]).unwrap();
        let p = Program::compile(&net, &[1.0, 1.0]).unwrap();
        let vals = p.layers()[0].as_fc().unwrap().weights().to_f32();
        // Row 0 = weights of output neuron 0: [w(0,0), w(1,0)] = [1, 4].
        assert!((vals[0] - 1.0).abs() < 0.01 && (vals[1] - 4.0).abs() < 0.01);
        assert!((vals[2] - 2.0).abs() < 0.01 && (vals[3] - 5.0).abs() < 0.01);
    }

    #[test]
    fn quantize_input_round_trips_through_scale() {
        let net = small_net();
        let calib: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let p = Program::compile(&net, &calib).unwrap();
        let codes = p.quantize_input(&calib);
        for (&c, &v) in codes.iter().zip(&calib) {
            let back = f32::from(c) * p.input_scale();
            assert!((back - v).abs() <= p.input_scale() * 0.5 + 1e-6);
        }
    }

    #[test]
    fn conv_networks_compile_with_lowered_stages() {
        use dante_nn::layers::{Conv2d, MaxPool2d, Shape3};
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(Shape3::new(1, 8, 8), 4, 3, 1, &mut rng)),
            Layer::Relu(Relu::new(4 * 64)),
            Layer::MaxPool2d(MaxPool2d::new(Shape3::new(4, 8, 8))),
            Layer::Dense(Dense::new(64, 3, &mut rng)),
        ])
        .unwrap();
        let calib = vec![0.1f32; net.in_len() * 2];
        let p = Program::compile(&net, &calib).unwrap();
        assert_eq!(p.layers().len(), 3); // conv(+relu), pool, dense
        assert_eq!(p.weight_layer_count(), 2);
        let CompiledLayer::Conv(conv) = &p.layers()[0] else {
            panic!("first stage must be conv")
        };
        assert!(conv.relu());
        assert_eq!(conv.row_len(), 9);
        assert_eq!(conv.out_len(), 4 * 64);
        assert!(matches!(p.layers()[1], CompiledLayer::Pool(_)));
        assert_eq!(p.out_len(), 3);
        assert!(p.logit_scale() > 0.0);
    }

    #[test]
    fn relu_without_weight_layer_rejected() {
        // A ReLU cannot lead the program.
        let net = Network::new(vec![Layer::Relu(Relu::new(4))]).unwrap();
        assert!(matches!(
            Program::compile(&net, &[0.0; 4]),
            Err(CompileError::UnsupportedLayer { index: 0, .. })
        ));
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let net = small_net();
        assert_eq!(
            Program::compile(&net, &[]),
            Err(CompileError::EmptyCalibration)
        );
    }

    #[test]
    fn words_per_row_rounds_up() {
        let net = small_net();
        let p = Program::compile(&net, &[0.0; 8]).unwrap();
        assert_eq!(p.layers()[0].as_fc().unwrap().words_per_row(), 2); // 8 inputs / 4 per word
        assert_eq!(p.layers()[1].as_fc().unwrap().words_per_row(), 2); // 6 inputs -> ceil(6/4)
    }
}
