//! # dante-accel
//!
//! A cycle-approximate, bit-accurate simulator of *Dante*, the paper's
//! taped-out DNN accelerator with programmable voltage-boosted SRAM:
//!
//! * [`chip`] — the Table 1 chip configuration as checked constants.
//! * [`context`] — DANA-style multi-context service with per-context boost
//!   schedules.
//! * [`isa`] — the control ISA including the `set_boost_config` instruction
//!   (64-bit encode/decode).
//! * [`memory`] — banked memories built from `dante-sram` fault-injected
//!   macros behind per-bank booster columns and BIC blocks.
//! * [`pe`] — fixed-point MAC/requantize/ReLU datapath primitives.
//! * [`program`] — compilation of a trained `dante-nn` network (dense and
//!   convolutional) into a quantized accelerator program (scales,
//!   multipliers, packed weights).
//! * [`executor`] — the accelerator itself: tiled FC, im2col-lowered conv,
//!   and PE-local pooling over the boosted memories with full
//!   fault/boost/ISA semantics.
//!
//! # Examples
//!
//! ```
//! use dante_accel::chip::ChipConfig;
//! use dante_accel::executor::{BoostSchedule, Dante};
//! use dante_accel::program::Program;
//! use dante_circuit::units::Volt;
//! use dante_nn::layers::{Dense, Layer, Relu};
//! use dante_nn::network::Network;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = Network::new(vec![
//!     Layer::Dense(Dense::new(8, 4, &mut rng)),
//!     Layer::Relu(Relu::new(4)),
//!     Layer::Dense(Dense::new(4, 2, &mut rng)),
//! ])?;
//! let calib = vec![0.5f32; 8];
//! let program = Program::compile(&net, &calib)?;
//! let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
//! let result = dante.run(&program, &BoostSchedule::uniform(0, 2, 0), &calib);
//! assert_eq!(result.logits.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chip;
pub mod context;
pub mod executor;
pub mod isa;
pub mod memory;
pub mod pe;
pub mod program;

pub use chip::ChipConfig;
pub use context::{Context, ContextId, ContextStats, MultiContextDante, Request};
pub use executor::{BoostSchedule, Dante, ExecStats, InferenceResult};
pub use isa::{DecodeError, Instruction, MemoryId};
pub use memory::{BoostedMemory, MemoryStats};
pub use program::{CompileError, Program, QuantizedFcLayer};
