#!/usr/bin/env bash
# Regenerates every paper artifact (tables, figures, ablations, validation)
# into results/, at the scale selected by DANTE_FULL / DANTE_TRIALS / etc.
#
# Usage:
#   scripts/reproduce_all.sh                # fast profile (~10 min)
#   DANTE_FULL=1 scripts/reproduce_all.sh   # paper-fidelity Monte-Carlo
set -euo pipefail
cd "$(dirname "$0")/.."

export DANTE_RESULTS="${DANTE_RESULTS:-$PWD/results}"
mkdir -p "$DANTE_RESULTS"

cargo build --release -p dante-bench --bins

artifacts=(
  table1 table2 table3
  fig04 fig06 fig07 fig08 fig09 fig12
  fig01 fig02 fig13 fig14 fig15
  headlines
  ablation_ecc ablation_levels ablation_dataflow validation
)
for a in "${artifacts[@]}"; do
  echo "=== $a ==="
  "target/release/$a" | tee "$DANTE_RESULTS/$a.txt"
done
echo "All artifacts written to $DANTE_RESULTS"
