//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships this minimal, dependency-free implementation of the
//! `rand` 0.8 API surface it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid and fully
//! deterministic per seed, but **not** bit-compatible with the crates.io
//! `rand` streams (all in-repo tests are statistical or
//! determinism-relative, so this does not matter).

#![warn(missing_docs)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type samplable from the uniform "standard" distribution (the
/// `rand::distributions::Standard` equivalent): integers uniform over their
/// full range, floats uniform in `[0, 1)`, `bool` fair.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable by [`Rng::gen_range`] (the `SampleRange` equivalent).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing generator methods (the `rand::Rng` equivalent), implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution (uniform ints, `[0, 1)`
    /// floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A value uniform over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the `rand::SeedableRng` equivalent).
pub trait SeedableRng: Sized {
    /// The full seed type.
    type Seed;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: advances `state` and returns the mixed output word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (not the crates.io
    /// `StdRng` stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut seed);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15; 4];
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15; 4];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (the `rand::seq` equivalent).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }
}
