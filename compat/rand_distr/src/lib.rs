//! Offline stand-in for the `rand_distr` crate (see the in-workspace `rand`
//! stand-in for the rationale). Implements the one distribution the
//! workspace samples: [`Normal`], via the Box–Muller transform.

#![warn(missing_docs)]

use rand::{Rng, RngCore};

/// A distribution samplable through any [`Rng`] (the
/// `rand_distr::Distribution` equivalent).
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev^2)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one standard normal (the sine twin is
        // discarded so sampling stays stateless).
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn moments_match() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn tail_mass_is_gaussian() {
        // P(Z > 2 sigma) ~ 2.275%.
        let normal = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000;
        let tail = (0..n).filter(|_| normal.sample(&mut rng) > 2.0).count();
        let frac = tail as f64 / f64::from(n);
        assert!((frac - 0.02275).abs() < 0.003, "tail fraction {frac}");
    }
}
