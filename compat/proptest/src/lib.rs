//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the [`proptest!`] macro, range/`any`/`collection::vec` strategies, the
//! `prop_assert*` macros, and [`ProptestConfig::with_cases`]. Inputs are
//! drawn from a generator seeded deterministically from the test name, so
//! failures reproduce run-to-run. There is **no shrinking**: a failing case
//! reports the panic from the raw drawn inputs.

#![warn(missing_docs)]

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic input generator behind the runner.
pub mod test_runner {
    /// SplitMix64-based generator used to draw test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the FNV-1a hash of `name`, so every test
        /// gets its own reproducible stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A float uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn index(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            self.next_u64() % bound
        }
    }
}

/// Strategies: how test inputs are drawn.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for drawing values of one type.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.index(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.index(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    /// Strategy returned by [`crate::arbitrary::any`]: the full value range
    /// of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Finite floats only: uniform sign/magnitude over a wide range.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }
}

/// `any::<T>()` strategies.
pub mod arbitrary {
    use crate::strategy::Any;

    /// A strategy over `T`'s full value range.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec<S::Value>` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.index((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the precondition does not hold. Inside
/// [`proptest!`] the body sits directly in the case loop, so this is a
/// plain `continue` (the skipped case still counts toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Integer range strategies stay in bounds.
        #[test]
        fn int_ranges_in_bounds(a in 3u32..9, b in -5i16..=5, c in 0usize..4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!(c < 4);
        }

        /// Float strategies stay in bounds.
        #[test]
        fn float_ranges_in_bounds(x in -2.5f32..2.5, y in 0.0f64..1.0) {
            prop_assert!((-2.5..2.5).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        /// Vec strategies honor the size range.
        #[test]
        fn vec_sizes_in_bounds(v in prop::collection::vec(0u8..=255, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        /// `any` draws the full range without panicking.
        #[test]
        fn any_is_total(x in any::<u64>(), y in any::<i16>()) {
            prop_assert_eq!(x, x);
            let _ = y;
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    // Trailing comma + default config (no `#![proptest_config]` header).
    proptest! {
        #[test]
        fn trailing_comma_and_default_config_accepted(v in 0u8..10,) {
            prop_assert!(v < 10);
        }
    }
}
