//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the [`proptest!`] macro, range/`any`/`collection::vec` strategies, the
//! `prop_assert*` macros, and [`ProptestConfig::with_cases`]. Inputs are
//! drawn from a generator seeded deterministically from the test name, so
//! failures reproduce run-to-run.
//!
//! Failing cases are **shrunk**: every [`strategy::Strategy`] proposes
//! smaller candidate inputs for a failing value, and the runner greedily
//! re-runs the property on them (panics silenced) until no candidate still
//! fails, then reports the minimal counterexample alongside the original
//! panic message.

#![warn(missing_docs)]

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic input generator behind the runner.
pub mod test_runner {
    /// SplitMix64-based generator used to draw test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the FNV-1a hash of `name`, so every test
        /// gets its own reproducible stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A float uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn index(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            self.next_u64() % bound
        }
    }
}

/// Strategies: how test inputs are drawn and shrunk.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for drawing values of one type.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of a failing value, most aggressive
        /// first. Each candidate must itself be producible by this strategy
        /// and strictly "smaller" than `value` by some well-founded measure,
        /// so the runner's greedy descent terminates. The default proposes
        /// nothing (no shrinking).
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }
    }

    /// Pushes `cand` unless it duplicates an earlier candidate or the
    /// failing value itself.
    fn push_unique<T: PartialEq>(out: &mut Vec<T>, value: &T, cand: T) {
        if cand != *value && !out.contains(&cand) {
            out.push(cand);
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.index(span) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_toward(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.index(span) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_toward(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Integer shrink candidates toward `lo`: the bottom of the range, the
    /// midpoint, and the predecessor — halving gives log-time descent for
    /// large values, the predecessor guarantees the boundary is reachable.
    fn shrink_toward(lo: i128, value: i128) -> Vec<i128> {
        let mut out = Vec::new();
        if value <= lo {
            return out;
        }
        push_unique(&mut out, &value, lo);
        push_unique(&mut out, &value, lo + (value - lo) / 2);
        push_unique(&mut out, &value, value - 1);
        out
    }

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    float_shrink_toward(self.start, *value)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    float_shrink_toward(*self.start(), *value)
                }
            }

            impl Strategy for crate::strategy::Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    // Finite floats only: uniform sign/magnitude over a
                    // wide range.
                    ((rng.unit_f64() - 0.5) * 2e6) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *value != 0.0 {
                        push_unique(&mut out, value, 0.0);
                        push_unique(&mut out, value, *value / 2.0);
                    }
                    out
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    /// Float shrink candidates toward `lo`: the bottom of the range and the
    /// midpoint. Floats converge rather than terminate exactly, so the
    /// runner's step cap bounds the descent.
    fn float_shrink_toward<T>(lo: T, value: T) -> Vec<T>
    where
        T: Copy
            + PartialEq
            + PartialOrd
            + core::ops::Add<Output = T>
            + core::ops::Sub<Output = T>
            + core::ops::Div<Output = T>
            + From<u8>,
    {
        let mut out = Vec::new();
        // `partial_cmp` keeps NaN inert: anything incomparable shrinks to
        // nothing rather than propagating through the midpoint arithmetic.
        if lo.partial_cmp(&value) != Some(core::cmp::Ordering::Less) {
            return out;
        }
        push_unique(&mut out, &value, lo);
        push_unique(&mut out, &value, lo + (value - lo) / T::from(2u8));
        out
    }

    /// Strategy returned by [`crate::arbitrary::any`]: the full value range
    /// of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let v = *value as i128;
                    let mut out = Vec::new();
                    if v != 0 {
                        push_unique(&mut out, value, 0);
                        push_unique(&mut out, value, (v / 2) as $t);
                        push_unique(&mut out, value, (v - v.signum()) as $t);
                    }
                    out
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }

                /// Shrinks one position at a time, holding the others fixed
                /// — the form the [`proptest!`] runner needs, since each
                /// argument strategy only knows its own value space.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }
    impl_tuple_strategy!(S0 / 0);
    impl_tuple_strategy!(S0 / 0, S1 / 1);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
    impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
    impl_tuple_strategy!(
        S0 / 0,
        S1 / 1,
        S2 / 2,
        S3 / 3,
        S4 / 4,
        S5 / 5,
        S6 / 6,
        S7 / 7
    );
}

/// `any::<T>()` strategies.
pub mod arbitrary {
    use crate::strategy::Any;

    /// A strategy over `T`'s full value range.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec<S::Value>` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + PartialEq,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.index((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }

        /// Shrinks the length first (halving toward the minimum, then
        /// dropping the last element), then each element in place via its
        /// own strategy's first candidate.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out: Vec<Self::Value> = Vec::new();
            if value.len() > self.size.lo {
                let half = self.size.lo.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                let dropped = value[..value.len() - 1].to_vec();
                if !out.contains(&dropped) {
                    out.push(dropped);
                }
            }
            for (i, elem) in value.iter().enumerate() {
                if let Some(cand) = self.element.shrink(elem).into_iter().next() {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// The case runner: panic capture, `prop_assume!` rejection, and greedy
/// shrinking of failing inputs.
pub mod runner {
    use std::cell::Cell;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Once;

    /// Panic payload thrown by [`crate::prop_assume!`] to reject a case
    /// without failing the property.
    #[derive(Debug, Clone, Copy)]
    pub struct AssumeRejected;

    thread_local! {
        static QUIET: Cell<bool> = const { Cell::new(false) };
    }

    static HOOK: Once = Once::new();

    /// Installs (once, process-wide) a panic hook that stays silent while
    /// this thread is replaying property cases — otherwise every candidate
    /// probed during shrinking would print a backtrace.
    pub fn install_quiet_hook() {
        HOOK.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if !QUIET.with(Cell::get) {
                    prev(info);
                }
            }));
        });
    }

    /// Outcome of one property-case execution.
    #[derive(Debug)]
    pub enum CaseResult {
        /// The body returned normally.
        Pass,
        /// The body hit a failing `prop_assume!`; the case does not count
        /// as a failure.
        Reject,
        /// The body panicked with the contained message.
        Fail(String),
    }

    impl CaseResult {
        /// Whether this outcome is a failure.
        #[must_use]
        pub fn is_fail(&self) -> bool {
            matches!(self, Self::Fail(_))
        }
    }

    /// Runs one case body, translating panics into a [`CaseResult`].
    pub fn run_case(body: impl FnOnce()) -> CaseResult {
        QUIET.with(|q| q.set(true));
        let outcome = panic::catch_unwind(AssertUnwindSafe(body));
        QUIET.with(|q| q.set(false));
        match outcome {
            Ok(()) => CaseResult::Pass,
            Err(payload) => {
                if payload.downcast_ref::<AssumeRejected>().is_some() {
                    CaseResult::Reject
                } else {
                    CaseResult::Fail(payload_message(payload.as_ref()))
                }
            }
        }
    }

    fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        }
    }

    /// Identity helper that pins a case closure's argument type to the
    /// strategy's `Value` — the [`crate::proptest!`] expansion uses it so
    /// method calls inside the property body resolve during type checking.
    pub fn case_fn<S, F>(strategy: &S, f: F) -> F
    where
        S: crate::strategy::Strategy,
        F: Fn(&S::Value) -> CaseResult,
    {
        let _ = strategy;
        f
    }

    /// Greedily shrinks a failing input: repeatedly adopts the first shrink
    /// candidate that still fails, until no candidate does (a local
    /// minimum) or a step cap is hit. Returns the minimal failing value,
    /// its panic message, and the number of shrink steps taken.
    pub fn shrink_failure<S: crate::strategy::Strategy>(
        strategy: &S,
        mut failing: S::Value,
        mut message: String,
        run: impl Fn(&S::Value) -> CaseResult,
    ) -> (S::Value, String, usize) {
        const MAX_STEPS: usize = 4096;
        let mut steps = 0usize;
        'descent: while steps < MAX_STEPS {
            for cand in strategy.shrink(&failing) {
                if let CaseResult::Fail(msg) = run(&cand) {
                    failing = cand;
                    message = msg;
                    steps += 1;
                    continue 'descent;
                }
            }
            break;
        }
        (failing, message, steps)
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Asserts a condition inside a property (panics on failure; the runner
/// catches the panic and shrinks the inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the precondition does not hold: throws the
/// [`runner::AssumeRejected`] marker, which the case runner catches and
/// classifies as a rejection rather than a failure (the skipped case still
/// counts toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            ::std::panic::panic_any($crate::runner::AssumeRejected);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing `cases` random inputs. A failing case is
/// shrunk to a minimal counterexample before the test panics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::runner::install_quiet_hook();
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            // All argument strategies combine into one tuple strategy so
            // the shrinker can simplify any argument while holding the
            // others fixed.
            let __strategy = ($(($strat),)+);
            let __run = $crate::runner::case_fn(&__strategy, |__vals| {
                let ($($arg,)+) = ::core::clone::Clone::clone(__vals);
                $crate::runner::run_case(move || { $body })
            });
            for __case in 0..__cfg.cases {
                let __vals = $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                if let $crate::runner::CaseResult::Fail(__msg) = __run(&__vals) {
                    let (__min, __msg, __steps) =
                        $crate::runner::shrink_failure(&__strategy, __vals, __msg, &__run);
                    let ($($arg,)+) = __min;
                    let mut __inputs = ::std::string::String::new();
                    $(
                        if !__inputs.is_empty() {
                            __inputs.push_str(", ");
                        }
                        __inputs.push_str(concat!(stringify!($arg), " = "));
                        __inputs.push_str(&::std::format!("{:?}", $arg));
                    )+
                    ::std::panic!(
                        "property failed at case {} of {}; minimal counterexample \
                         after {} shrink step(s): {}\ncaused by: {}",
                        __case + 1,
                        __cfg.cases,
                        __steps,
                        __inputs,
                        __msg,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::runner::{run_case, shrink_failure, CaseResult};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Integer range strategies stay in bounds.
        #[test]
        fn int_ranges_in_bounds(a in 3u32..9, b in -5i16..=5, c in 0usize..4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!(c < 4);
        }

        /// Float strategies stay in bounds.
        #[test]
        fn float_ranges_in_bounds(x in -2.5f32..2.5, y in 0.0f64..1.0) {
            prop_assert!((-2.5..2.5).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        /// Vec strategies honor the size range.
        #[test]
        fn vec_sizes_in_bounds(v in prop::collection::vec(0u8..=255, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        /// `any` draws the full range without panicking.
        #[test]
        fn any_is_total(x in any::<u64>(), y in any::<i16>()) {
            prop_assert_eq!(x, x);
            let _ = y;
        }

        /// `prop_assume!` rejects cases without failing the property.
        #[test]
        fn assume_skips_odd_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        /// End-to-end shrinking: the greedy descent must land exactly on
        /// the smallest failing input, 10.
        #[test]
        #[should_panic(expected = "minimal counterexample")]
        fn failing_property_shrinks(x in 0u32..1000) {
            prop_assert!(x < 10, "x too large");
        }

        /// And the reported counterexample is the boundary value itself.
        #[test]
        #[should_panic(expected = "x = 10")]
        fn shrink_reaches_the_boundary(x in 0u32..1000) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    // Trailing comma + default config (no `#![proptest_config]` header).
    proptest! {
        #[test]
        fn trailing_comma_and_default_config_accepted(v in 0u8..10,) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn int_range_shrink_proposes_smaller_in_range_values() {
        let strat = 5u32..100;
        for cand in strat.shrink(&73) {
            assert!((5..73).contains(&cand), "candidate {cand} not smaller");
        }
        assert!(strat.shrink(&5).is_empty(), "minimum has no candidates");
        // The predecessor is always proposed, so descent can reach any
        // boundary exactly.
        assert!(strat.shrink(&73).contains(&72));
        assert!(strat.shrink(&73).contains(&5));
    }

    #[test]
    fn any_int_shrinks_toward_zero() {
        let strat = any::<i64>();
        assert!(strat.shrink(&-40).contains(&0));
        assert!(strat.shrink(&-40).contains(&-20));
        assert!(strat.shrink(&-40).contains(&-39));
        assert!(strat.shrink(&0).is_empty());
        assert!(any::<bool>().shrink(&true) == vec![false]);
        assert!(any::<bool>().shrink(&false).is_empty());
    }

    #[test]
    fn float_range_shrink_proposes_smaller_values() {
        let strat = -1.0f64..1.0;
        let cands = strat.shrink(&0.5);
        assert!(!cands.is_empty());
        for c in cands {
            assert!((-1.0..0.5).contains(&c), "candidate {c}");
        }
        assert!(strat.shrink(&-1.0).is_empty());
    }

    #[test]
    fn vec_shrink_reduces_length_then_elements() {
        let strat = prop::collection::vec(0u8..10, 1..=8);
        let cands = strat.shrink(&vec![5, 6, 7, 8]);
        // Length reductions come first.
        assert_eq!(cands[0], vec![5, 6]);
        assert_eq!(cands[1], vec![5, 6, 7]);
        // Then element-wise simplifications.
        assert!(cands.iter().any(|c| c.len() == 4 && c[0] == 0));
        // A minimal-length vector of minimal elements has no candidates.
        assert!(strat.shrink(&vec![0]).is_empty());
    }

    #[test]
    fn tuple_strategy_shrinks_one_position_at_a_time() {
        let strat = (0u32..100, 0u32..100);
        let cands = crate::strategy::Strategy::shrink(&strat, &(50, 60));
        assert!(!cands.is_empty());
        for (a, b) in cands {
            let first_changed = a != 50;
            let second_changed = b != 60;
            assert!(
                first_changed != second_changed,
                "exactly one position must change: ({a}, {b})"
            );
        }
    }

    #[test]
    fn run_case_classifies_outcomes() {
        crate::runner::install_quiet_hook();
        assert!(matches!(run_case(|| {}), CaseResult::Pass));
        assert!(matches!(
            run_case(|| std::panic::panic_any(crate::runner::AssumeRejected)),
            CaseResult::Reject
        ));
        match run_case(|| panic!("boom {}", 7)) {
            CaseResult::Fail(msg) => assert!(msg.contains("boom 7")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn shrink_failure_descends_to_the_boundary() {
        crate::runner::install_quiet_hook();
        let strat = 0u64..1_000_000;
        // Property: fails iff value >= 777. Greedy descent from any failing
        // start must terminate exactly at 777.
        let check = |v: &u64| {
            let v = *v;
            run_case(move || assert!(v < 777, "too big: {v}"))
        };
        let (min, msg, steps) = shrink_failure(&strat, 923_417, "seed".into(), check);
        assert_eq!(min, 777);
        assert!(msg.contains("too big: 777"));
        assert!(steps > 0);
    }

    #[test]
    fn shrink_failure_ignores_rejected_candidates() {
        crate::runner::install_quiet_hook();
        let strat = 0u32..100;
        // Candidates below 50 are "rejected" (as if by prop_assume!), so
        // the descent may only move through values >= 50 and must stop at
        // the smallest non-rejected failing value.
        let check = |v: &u32| {
            let v = *v;
            run_case(move || {
                if v < 50 {
                    std::panic::panic_any(crate::runner::AssumeRejected);
                }
                assert!(v < 60);
            })
        };
        let (min, _, _) = shrink_failure(&strat, 90, "seed".into(), check);
        assert_eq!(min, 60);
    }
}
