//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate provides the
//! minimal API the workspace's `harness = false` benches use: [`Criterion`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is plain wall clock: each bench runs one warm-up
//! iteration plus `sample_size` measured iterations and prints
//! mean/min/max. There are no statistical comparisons, plots, or saved
//! baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing callback target.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` measured times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per bench.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let summary = summarize(&b.samples);
        println!("bench {}/{id}: {summary}", self.name);
        self
    }

    /// Ends the group (formatting parity with criterion; no-op here).
    pub fn finish(self) {}
}

fn summarize(samples: &[Duration]) -> String {
    if samples.is_empty() {
        return "no samples (iter was never called)".into();
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    format!(
        "mean {} min {} max {} ({} samples)",
        format_duration(mean),
        format_duration(*min),
        format_duration(*max),
        samples.len()
    )
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The bench context handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group (default 10 samples per bench).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundles bench functions into one runner (`criterion_group!(name, f, g)`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups (`criterion_main!(name)`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("compat");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count_runs", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_warmup_plus_samples() {
        benches();
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(format_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
        assert!(summarize(&[]).contains("no samples"));
    }
}
