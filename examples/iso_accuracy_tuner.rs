//! Application-aware boost tuning: the policy optimizer automatically
//! derives the cheapest per-layer boost plan meeting an accuracy target —
//! the automated version of the paper's `Boost_diff` configurations and the
//! Fig. 15 iso-accuracy operating points.
//!
//! Run with: `cargo run --release --example iso_accuracy_tuner`

use dante::artifacts::trained_mnist_fc;
use dante::policy::PolicyOptimizer;
use dante_circuit::units::Volt;
use dante_dataflow::activity::Dataflow;
use dante_dataflow::fc_dana::DanaFcDataflow;
use dante_dataflow::workloads::mnist_fc;

fn main() {
    let test_n = std::env::var("DANTE_TEST_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    eprintln!("loading/training the FC-DNN (cached under target/dante-cache) ...");
    let (net, test) = trained_mnist_fc(5000, test_n, 5);
    let clean = net.accuracy(test.images(), test.labels());
    let target = clean - 0.02; // the paper's "within 2% of peak" criterion
    println!("clean accuracy {clean:.3}; target {target:.3} (within 2% of peak)\n");

    let activity = DanaFcDataflow::new().activity(&mnist_fc());
    let optimizer = PolicyOptimizer::new(3, target);

    println!(
        "{:>6} {:>16} {:>6} {:>10} {:>12}",
        "Vdd", "weight levels", "input", "accuracy", "E_dyn [uJ]"
    );
    for mv in [34u32, 38, 42, 46, 50] {
        let vdd = Volt::new(f64::from(mv) / 100.0);
        match optimizer.optimize(&net, &activity, vdd, test.images(), test.labels(), 7) {
            Some(r) => println!(
                "{:>6.2} {:>16} {:>6} {:>10.3} {:>12.3}",
                vdd.volts(),
                format!("{:?}", r.plan.weight_levels()),
                r.plan.input_level(),
                r.accuracy,
                r.dynamic_energy * 1e6
            ),
            None => println!(
                "{:>6.2} {:>16} {:>6} {:>10} {:>12}",
                vdd.volts(),
                "-",
                "-",
                "unreachable",
                "-"
            ),
        }
    }
    println!("\nexpected shape: lower supplies demand higher levels; at >=0.48 V no");
    println!("boost is needed; later layers can often run one level below earlier ones.");
}
