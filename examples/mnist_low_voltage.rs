//! The MNIST FC-DNN at very low voltage (a compact Fig. 13).
//!
//! Trains (or loads from cache) the paper's 784-256-256-256-10 network on
//! the procedural digit set, then sweeps supply voltage and the Table 2
//! boost configurations, printing accuracy and normalized dynamic energy
//! for boost vs. single vs. dual supply.
//!
//! Run with: `cargo run --release --example mnist_low_voltage`
//! (set `DANTE_TRIALS` / `DANTE_TEST_N` to rescale the Monte-Carlo, and
//! `DANTE_THREADS` to pin the trial engine's worker count)

use dante::accuracy::{AccuracyEvaluator, VoltageAssignment};
use dante::artifacts::trained_mnist_fc;
use dante::experiments::FcExperiment;
use dante::schedule::NamedBoostConfig;
use dante_circuit::units::Volt;
use dante_nn::metrics::ConfusionMatrix;
use dante_sim::{StderrProgress, TrialEngine};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let trials = env_usize("DANTE_TRIALS", 5);
    let test_n = env_usize("DANTE_TEST_N", 300);

    eprintln!(
        "Monte-Carlo runs on {} worker thread(s); set DANTE_THREADS to override",
        TrialEngine::from_env().threads()
    );
    eprintln!("loading/training the FC-DNN (cached under target/dante-cache) ...");
    let (net, test) = trained_mnist_fc(5000, test_n, 5);
    let clean = net.accuracy(test.images(), test.labels());
    println!("clean accuracy: {clean:.3} on {test_n} held-out digits\n");

    let exp = FcExperiment::new(&net, test.images(), test.labels(), trials);
    let voltages = [
        Volt::new(0.36),
        Volt::new(0.40),
        Volt::new(0.44),
        Volt::new(0.48),
    ];

    println!(
        "{:>6} {:>13} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "Vdd", "config", "Vddv", "accuracy", "E_boost", "E_single", "E_dual"
    );
    for &vdd in &voltages {
        for config in NamedBoostConfig::all() {
            let p = exp.point(vdd, config, 99);
            println!(
                "{:>6.2} {:>13} {:>7.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                p.vdd.volts(),
                config.name(),
                p.vddv.volts(),
                p.accuracy_mean,
                p.boost_dynamic,
                p.single_dynamic,
                p.dual_dynamic
            );
        }
        println!();
    }
    // A live progress line on stderr while a uniform sweep runs: the
    // trial engine reports every completed die and its injected fault bits
    // through the observer hooks.
    let evaluator = AccuracyEvaluator::new(trials);
    let progress = StderrProgress::new("uniform sweep");
    println!("{:>6} {:>9} {:>9} {:>9}", "Vdd", "mean", "std", "worst");
    for &vdd in &voltages {
        let stats = evaluator.evaluate_observed(
            &net,
            &VoltageAssignment::uniform(vdd, 4),
            test.images(),
            test.labels(),
            99,
            &progress,
        );
        println!(
            "{:>6.2} {:>9.3} {:>9.3} {:>9.3}",
            vdd.volts(),
            stats.mean(),
            stats.std_dev(),
            stats.min()
        );
    }
    eprintln!(
        "sweep complete: {} dies, {} fault bits injected in total\n",
        progress.completed(),
        progress.fault_bits()
    );

    // Which digits does a corrupted network lose first? One die at 0.44 V,
    // weights exposed, inputs safe.
    let corrupted = evaluator.corrupt_network(
        &net,
        &VoltageAssignment::weights_only(Volt::new(0.44), 4, Volt::new(0.60)),
        7,
    );
    let cm = ConfusionMatrix::from_network(&corrupted, test.images(), test.labels());
    println!(
        "one die at 0.44 V (weights exposed): accuracy {:.3}; per-digit recall:",
        cm.accuracy()
    );
    for (digit, recall) in cm.per_class_recall().iter().enumerate() {
        if let Some(r) = recall {
            println!("  digit {digit}: {r:.2}");
        }
    }
    if let Some((truth, pred, n)) = cm.worst_confusion() {
        println!("worst confusion: {n} x digit {truth} misread as {pred}\n");
    }

    println!("energies are normalized to the chip at a single 0.5 V supply.");
    println!("observations to look for (paper Sec. 6.2):");
    println!("  - higher boost levels recover accuracy at lower Vdd;");
    println!("  - boost beats the single supply at the same SRAM voltage;");
    println!("  - dual supply is only competitive at low boost levels (memory-bound FC).");
}
