//! AlexNet convolution layers under the Eyeriss row-stationary dataflow
//! (the energy side of Figs. 14/15).
//!
//! No network is trained here: the experiment is pure activity/energy
//! modeling, exactly like the paper's Sec. 6.3 energy analysis. Per-layer
//! activity comes from the RS reuse model; the boosted, dual-supply, and
//! single-supply energies come from Eqs. 3, 6, and 2.
//!
//! Run with: `cargo run --release --example alexnet_eyeriss`

use dante_circuit::units::Volt;
use dante_dataflow::activity::Dataflow;
use dante_dataflow::row_stationary::RowStationaryDataflow;
use dante_dataflow::workloads::alexnet_conv;
use dante_energy::supply::{BoostedGroup, EnergyModel};

fn main() {
    let workload = alexnet_conv();
    let activity = RowStationaryDataflow::new().activity(&workload);
    let energy = EnergyModel::dante_chip();

    println!("AlexNet conv layers under the row-stationary dataflow:");
    println!(
        "{:>6} {:>34} {:>12} {:>12} {:>10}",
        "layer", "shape", "MACs", "GLB acc", "acc/MAC"
    );
    for (shape, act) in workload.layers().iter().zip(activity.layers()) {
        println!(
            "{:>6} {:>34} {:>12} {:>12} {:>9.2}%",
            act.layer + 1,
            format!("{shape}"),
            act.macs,
            act.sram_accesses(),
            act.sram_accesses() as f64 / act.macs as f64 * 100.0
        );
    }
    println!(
        "total: {} MACs, {} accesses ({:.2}% — paper Table 3: 1.67%)\n",
        activity.total_macs(),
        activity.total_sram_accesses(),
        activity.access_mac_ratio() * 100.0
    );

    let macs = activity.total_macs();
    let accesses = activity.total_sram_accesses();
    println!(
        "{:>6} {:>6} {:>8} {:>12} {:>12} {:>10}",
        "Vdd", "level", "Vddv", "E_boost[uJ]", "E_dual[uJ]", "savings"
    );
    for mv in (34..=46).step_by(2) {
        let vdd = Volt::new(f64::from(mv) / 100.0);
        for level in 1..=4 {
            let vddv = energy.vddv(vdd, level);
            let boost = energy
                .dynamic_boosted(vdd, &[BoostedGroup { accesses, level }], macs)
                .joules();
            let dual = energy.dynamic_dual(vddv, vdd, accesses, macs).joules();
            println!(
                "{:>6.2} {:>6} {:>8.3} {:>12.3} {:>12.3} {:>9.1}%",
                vdd.volts(),
                level,
                vddv.volts(),
                boost * 1e6,
                dual * 1e6,
                (1.0 - boost / dual) * 100.0
            );
        }
    }
    let single_048 = energy
        .dynamic_single(Volt::new(0.48), accesses, macs)
        .joules();
    println!(
        "\nno-boost alternative (single supply @ 0.48 V): {:.3} uJ",
        single_048 * 1e6
    );
    println!("paper headline: boosting saves up to 26% vs dual and 30% vs single@0.48.");
}
