//! Quickstart: the paper's story in sixty lines.
//!
//! Builds a small dense network, compiles it for the Dante accelerator
//! simulator, and runs it at a very low supply voltage — first unboosted
//! (SRAM bit errors corrupt the output), then with the programmable booster
//! at full level (errors vanish), printing the boosted-voltage ladder and
//! the energy trade-off along the way.
//!
//! Run with: `cargo run --release --example quickstart`

use dante_accel::chip::ChipConfig;
use dante_accel::executor::{BoostSchedule, Dante};
use dante_accel::program::Program;
use dante_circuit::units::Volt;
use dante_energy::supply::{BoostedGroup, EnergyModel};
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_sram::fault::VminFaultModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vdd = Volt::new(0.38);
    let mut rng = StdRng::seed_from_u64(7);

    // A small network and a probe input.
    let net = Network::new(vec![
        Layer::Dense(Dense::new(32, 24, &mut rng)),
        Layer::Relu(Relu::new(24)),
        Layer::Dense(Dense::new(24, 8, &mut rng)),
    ])?;
    let sample: Vec<f32> = (0..32).map(|i| (i as f32 / 32.0).sin().abs()).collect();
    let program = Program::compile(&net, &sample)?;

    // The programmable booster's voltage ladder at this supply.
    let energy = EnergyModel::dante_chip();
    println!("supply Vdd = {vdd:.2}; boosted rail per level:");
    for (level, v) in energy.booster().voltage_ladder(vdd).iter().enumerate() {
        println!("  level {level}: {v:.3}");
    }

    // Reference: a fault-free chip.
    let mut ideal = Dante::fault_free(ChipConfig::dante(), vdd);
    let reference = ideal.run(&program, &BoostSchedule::uniform(0, 2, 0), &sample);

    // A real (faulty) die at the same voltage.
    let model = VminFaultModel::default_14nm();
    println!(
        "\nbit error rate at {vdd:.2}: {:.2e} (and {:.2e} at the boosted 0.57 V rail)",
        model.bit_error_rate(vdd),
        model.bit_error_rate(energy.booster().boosted_voltage(vdd, 4)),
    );
    let mut dante = Dante::new(ChipConfig::dante(), &model, vdd, &mut rng);

    let unboosted = dante.run(&program, &BoostSchedule::uniform(0, 2, 0), &sample);
    let boosted = dante.run(&program, &BoostSchedule::uniform(4, 2, 4), &sample);

    println!("\nreference logits: {:?}", &reference.logits[..4]);
    println!("unboosted logits: {:?}", &unboosted.logits[..4]);
    println!("boosted logits:   {:?}", &boosted.logits[..4]);
    println!(
        "unboosted output {} the reference; boosted output {} the reference",
        if unboosted.codes == reference.codes {
            "matches"
        } else {
            "DIVERGES from"
        },
        if boosted.codes == reference.codes {
            "matches"
        } else {
            "DIVERGES from"
        },
    );

    // What the boost costs and what it saves (Eq. 3 vs Eq. 6).
    let accesses = dante.weight_stats().total() + dante.input_stats().total();
    let macs = dante.stats().macs;
    let boost_e = energy.dynamic_boosted(vdd, &[BoostedGroup { accesses, level: 4 }], macs);
    let dual_e = energy.dynamic_dual(energy.vddv(vdd, 4), vdd, accesses, macs);
    println!(
        "\ndynamic energy for this run: boosted {:.2} pJ vs dual-supply {:.2} pJ ({:.0}% savings)",
        boost_e.picojoules(),
        dual_e.picojoules(),
        (1.0 - boost_e.joules() / dual_e.joules()) * 100.0
    );
    Ok(())
}
