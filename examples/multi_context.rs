//! Multi-context service: two networks resident on one accelerator, each
//! with its own boost schedule — the DANA-heritage scenario that motivates
//! *programmable* (rather than fixed) boosting.
//!
//! A "sensitive" context (weights need a high rail) and a "tolerant"
//! context (level 1 suffices) share the chip at 0.40 V. A fixed booster
//! would have to run everything at the sensitive context's level; the
//! programmable architecture reprograms per context switch and pockets the
//! difference.
//!
//! Run with: `cargo run --release --example multi_context`

use dante::report::InferenceEnergyReport;
use dante_accel::chip::ChipConfig;
use dante_accel::executor::{BoostSchedule, Dante};
use dante_accel::isa::{Instruction, MemoryId};
use dante_accel::program::Program;
use dante_accel::{Context, MultiContextDante, Request};
use dante_circuit::bic::BoostConfig;
use dante_circuit::units::Volt;
use dante_energy::supply::EnergyModel;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_sram::fault::VminFaultModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_program(seed: u64, inputs: usize, hidden: usize) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(inputs, hidden, &mut rng)),
        Layer::Relu(Relu::new(hidden)),
        Layer::Dense(Dense::new(hidden, 4, &mut rng)),
    ])
    .expect("static shapes");
    let calib: Vec<f32> = (0..inputs).map(|i| i as f32 / inputs as f32).collect();
    Program::compile(&net, &calib).expect("dense network compiles")
}

fn main() {
    let vdd = Volt::new(0.40);
    let mut rng = StdRng::seed_from_u64(1);
    let dante = Dante::new(
        ChipConfig::dante(),
        &VminFaultModel::default_14nm(),
        vdd,
        &mut rng,
    );
    let mut host = MultiContextDante::new(dante);

    let sensitive = host.register(Context::new(
        "keyword-spotting (sensitive)",
        build_program(10, 24, 20),
        BoostSchedule::uniform(4, 2, 2),
    ));
    let tolerant = host.register(Context::new(
        "wake-word filter (tolerant)",
        build_program(11, 16, 12),
        BoostSchedule::uniform(1, 2, 1),
    ));

    // An interleaved request stream, as an always-on edge device would see.
    let mut requests = Vec::new();
    for k in 0..12 {
        let (ctx, len) = if k % 3 == 0 {
            (sensitive, 24)
        } else {
            (tolerant, 16)
        };
        let sample: Vec<f32> = (0..len)
            .map(|i| ((i + k) as f32 * 0.37).sin().abs())
            .collect();
        requests.push(Request {
            context: ctx,
            sample,
        });
    }
    let results = host.serve_all(&requests);
    println!(
        "served {} requests across {} contexts with {} context switches",
        results.len(),
        host.contexts(),
        host.stats().switches
    );

    // What the boost hardware actually did, bucketed by level.
    let w = host.dante().weight_stats().accesses_per_level();
    println!("\nweight-memory accesses per boost level: {w:?}");
    println!("(level 4 = sensitive context, level 1 = tolerant context)");

    // Energy: as executed vs "provision everything at level 4".
    let model = EnergyModel::dante_chip();
    let report = InferenceEnergyReport::from_run(host.dante(), &model);
    let fixed_level4 = model.dynamic_boosted(
        vdd,
        &[dante_energy::supply::BoostedGroup {
            accesses: report.sram_accesses,
            level: 4,
        }],
        report.macs,
    );
    println!(
        "\ndynamic energy as executed: {:.2} pJ; with a fixed level-4 booster: {:.2} pJ ({:.1}% wasted)",
        report.boosted_dynamic.picojoules(),
        fixed_level4.picojoules(),
        (fixed_level4.joules() / report.boosted_dynamic.joules() - 1.0) * 100.0
    );

    // The instruction the hardware sees at each switch:
    let example = Instruction::set_boost_config(MemoryId::Weight, 0, BoostConfig::from_level(1, 4));
    println!("\nper-switch reconfiguration instruction: `{example}`");
}
