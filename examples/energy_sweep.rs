//! Joint accuracy + energy sweeps under each power-supply configuration,
//! followed by an iso-accuracy solve: the programmatic version of the
//! service's `/v1/sweep` (with a `supply` field) and `/v1/iso-accuracy`
//! endpoints, and of the paper's Fig. 12 / Table 3 energy comparison.
//!
//! Run with: `cargo run --release --example energy_sweep`

use dante::iso::IsoAccuracySpec;
use dante::sweep::{SupplySpec, SweepSpec};

fn main() {
    // One grid, three supplies. The spec carries the supply, so every sweep
    // point comes back as a joint (voltage, accuracy, energy) record and the
    // canonical string (= cache key) distinguishes the three runs.
    let base = SweepSpec::toy_default();
    let supplies = [
        SupplySpec::Single,
        SupplySpec::Boosted { level: 4 },
        SupplySpec::Dual { v_h_mv: 600 },
    ];

    for supply in supplies {
        let spec = SweepSpec {
            supply,
            ..base.clone()
        };
        let prep = spec.prepare();
        println!(
            "supply={} (cache key {})",
            spec.supply.canonical_token(),
            spec.canonical_string()
        );
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>12}",
            "Vdd[V]", "Vsram[V]", "accuracy", "E_dyn[nJ]", "E/E(0.5V)"
        );
        for point in prep.run() {
            println!(
                "{:>8.2} {:>10.3} {:>10.3} {:>12.3} {:>12.3}",
                point.vdd.volts(),
                point.v_sram.volts(),
                point.stats.mean(),
                point.energy.dynamic.total().joules() * 1e9,
                point.energy.normalized_total()
            );
        }
        println!();
    }

    // Iso-accuracy: walk each supply down its own cliff and compare the
    // energy at the lowest voltage that still clears the accuracy floor.
    let iso = IsoAccuracySpec::toy_default();
    let result = iso.solve();
    println!(
        "iso-accuracy floor {:.2} (clean {:.3}):",
        iso.floor, result.clean_accuracy
    );
    let rows = [
        ("single", result.single.as_ref()),
        ("boosted", result.boosted.as_ref()),
        ("dual", result.dual.as_ref()),
    ];
    for (name, point) in rows {
        match point {
            Some(p) => println!(
                "  {name:>8}: V_min {:.2} V, sram {:.3} V, accuracy {:.3}, E_dyn {:.3} nJ",
                p.v_logic.volts(),
                p.v_sram.volts(),
                p.accuracy_mean,
                p.energy.dynamic.total().joules() * 1e9
            ),
            None => println!("  {name:>8}: floor unreachable on this grid"),
        }
    }
    if let (Some(ratio), Some(vs_dual)) = (result.boosted_over_single, result.boosted_over_dual) {
        println!("  boosted/single energy at iso-accuracy: {ratio:.3}");
        println!("  boosted/dual   energy at iso-accuracy: {vs_dual:.3}");
    }
}
