//! Circuit-level boost explorer: the booster's transient waveform, voltage
//! ladder, MIM-vs-no-MIM comparison, and access-latency effects
//! (Figs. 4, 6, 8, 9 in one interactive tour).
//!
//! Run with: `cargo run --release --example boost_explorer`

use dante_circuit::booster::{reference, BoostScope, BoosterBank};
use dante_circuit::latency::SramTiming;
use dante_circuit::transient::TransientSim;
use dante_circuit::units::{Second, Volt};

fn main() {
    let vdd = Volt::new(0.4);
    let bank = BoosterBank::standard();

    println!("== voltage ladder (Eq. 1) at Vdd = {vdd:.2} ==");
    for (level, v) in bank.voltage_ladder(vdd).iter().enumerate() {
        let bar = "#".repeat((v.volts() * 80.0) as usize);
        println!("level {level}: {v:.3}  {bar}");
    }

    println!("\n== transient staircase (Fig. 4): ASCII Vddv(t) ==");
    let sim = TransientSim::new(bank.clone(), vdd, Second::from_nanoseconds(20.0), 16);
    let wave = sim.level_staircase(3);
    for (i, &(_, v)) in wave.samples().iter().enumerate() {
        if i % 8 == 0 {
            let cols = ((v.volts() - 0.38) * 250.0).max(0.0) as usize;
            println!("{:>6.1} ns |{}*", i as f64 * 20.0 / 16.0, " ".repeat(cols));
        }
    }

    println!("\n== MIM vs no-MIM (Fig. 6) at Vdd = {vdd:.2} ==");
    let configs = [
        ("MIMBoost-A   ", reference::mim_boost_a()),
        ("noMIMBoost-A ", reference::no_mim_boost_a()),
        ("MIMBoost-B   ", reference::mim_boost_b()),
        ("noMIMBoost-B ", reference::no_mim_boost_b()),
    ];
    println!(
        "{:>14} {:>10} {:>12} {:>12}",
        "config", "Vb [mV]", "E [pJ]", "area [um^2]"
    );
    for (name, cfg) in &configs {
        println!(
            "{:>14} {:>10.1} {:>12.3} {:>12.0}",
            name.trim(),
            cfg.boost_amount(vdd, 1).millivolts(),
            cfg.boost_event_energy(vdd, 1).picojoules(),
            cfg.area().square_microns()
        );
    }

    println!("\n== access latency under boosting (Figs. 7/9) ==");
    let timing = SramTiming::macro_32kbit();
    println!(
        "{:>6} {:>12} {:>16} {:>16}",
        "Vdd", "unboosted", "array boost L4", "macro boost L4"
    );
    for mv in (50..=80).step_by(5) {
        let v = Volt::new(f64::from(mv) / 100.0);
        println!(
            "{:>6.2} {:>12.3} {:>16.3} {:>16.3}",
            v.volts(),
            timing.normalized_access(v),
            timing.normalized_access(v)
                * timing.boosted_access_fraction(v, &bank, 4, BoostScope::Array),
            timing.normalized_access(v)
                * timing.boosted_access_fraction(v, &bank, 4, BoostScope::Macro),
        );
    }
    println!("\n(latencies normalized to the nominal-voltage access time)");

    println!("\n== finer granularity (Sec. 6.3: '>4 boost levels') ==");
    for p in [4usize, 8, 16] {
        let fine = BoosterBank::with_levels(p);
        let step = (fine.boosted_voltage(vdd, p) - fine.boosted_voltage(vdd, p - 1)).millivolts();
        println!(
            "{p:>3} levels: peak {:.3}, finest step {step:.1} mV",
            fine.boosted_voltage(vdd, p)
        );
    }
}
