//! Integration checks for the extension studies (DESIGN.md Sec. 6):
//! ECC-vs-boost, yield analysis, boost granularity, dataflow sensitivity,
//! and multi-context programmability.

use dante_circuit::booster::BoosterBank;
use dante_circuit::units::Volt;
use dante_dataflow::activity::Dataflow;
use dante_dataflow::baselines::{NoLocalReuseDataflow, WeightStationaryDataflow};
use dante_dataflow::row_stationary::RowStationaryDataflow;
use dante_dataflow::workloads::alexnet_conv;
use dante_energy::supply::{BoostedGroup, EnergyModel};
use dante_sram::fault::VminFaultModel;
use dante_sram::yield_model::{vmin_for_yield, vmin_for_yield_secded};

#[test]
fn ecc_buys_tens_of_millivolts_boosting_buys_hundreds() {
    let model = VminFaultModel::default_14nm();
    const MBIT_4: u64 = 4 << 20;
    let plain_vmin = vmin_for_yield(&model, 0.99, MBIT_4);
    let ecc_vmin = vmin_for_yield_secded(&model, 0.99, MBIT_4 / 64);
    let ecc_gain = (plain_vmin - ecc_vmin).millivolts();

    // Boosting keeps the array at `plain_vmin` while the chip supply drops
    // to the voltage whose full-boost rail still reaches it.
    let booster = BoosterBank::standard();
    let mut boosted_supply = plain_vmin;
    for mv in (300..=600).rev().map(f64::from) {
        let v = Volt::from_millivolts(mv);
        if booster.boosted_voltage(v, 4) >= plain_vmin {
            boosted_supply = v;
        }
    }
    let boost_gain = (plain_vmin - boosted_supply).millivolts();

    assert!(
        (10.0..=80.0).contains(&ecc_gain),
        "ECC gain {ecc_gain:.0} mV"
    );
    assert!(boost_gain > 120.0, "boost gain {boost_gain:.0} mV");
    assert!(boost_gain > 3.0 * ecc_gain, "boosting must dominate ECC");
}

#[test]
fn finer_boost_levels_monotonically_reduce_iso_accuracy_energy() {
    let target = Volt::new(0.48);
    let activity = RowStationaryDataflow::new().activity(&alexnet_conv());
    let accesses = activity.total_sram_accesses();
    let macs = activity.total_macs();

    let mean_energy = |p: usize| -> f64 {
        let bank = BoosterBank::with_levels(p);
        let model = EnergyModel::new(
            dante_energy::params::EnergyParams::dante_chip(),
            bank.clone(),
            dante_circuit::ldo::Ldo::new(),
        );
        let mut total = 0.0;
        let mut n = 0;
        for mv in (340..=460).step_by(20) {
            let vdd = Volt::from_millivolts(f64::from(mv));
            if let Some(level) = bank.min_level_reaching(vdd, target) {
                total += model
                    .dynamic_boosted(vdd, &[BoostedGroup { accesses, level }], macs)
                    .joules();
                n += 1;
            }
        }
        total / f64::from(n)
    };

    let e2 = mean_energy(2);
    let e4 = mean_energy(4);
    let e16 = mean_energy(16);
    assert!(e4 <= e2 + 1e-18, "4 levels {e4} vs 2 levels {e2}");
    assert!(e16 <= e4 + 1e-18, "16 levels {e16} vs 4 levels {e4}");
    assert!(
        1.0 - e16 / e2 > 0.01,
        "granularity must save >1% ({e2} -> {e16})"
    );
}

#[test]
fn boost_advantage_collapses_without_dataflow_reuse() {
    let m = EnergyModel::dante_chip();
    let wl = alexnet_conv();
    let vdd = Volt::new(0.40);
    let vddv = m.vddv(vdd, 4);
    let savings = |activity: &dante_dataflow::activity::WorkloadActivity| -> f64 {
        let acc = activity.total_sram_accesses();
        let macs = activity.total_macs();
        let boost = m.dynamic_boosted(
            vdd,
            &[BoostedGroup {
                accesses: acc,
                level: 4,
            }],
            macs,
        );
        let dual = m.dynamic_dual(vddv, vdd, acc, macs);
        1.0 - boost.joules() / dual.joules()
    };
    let rs = savings(&RowStationaryDataflow::new().activity(&wl));
    let ws = savings(&WeightStationaryDataflow::new().activity(&wl));
    let nlr = savings(&NoLocalReuseDataflow::new().activity(&wl));
    assert!(rs > 0.25, "RS savings {rs}");
    assert!(ws > 0.2 && ws < rs, "WS savings {ws}");
    assert!(
        nlr < 0.05,
        "NLR savings {nlr} — boosting should not win without reuse"
    );
}

#[test]
fn secded_codec_protects_a_real_memory_image() {
    // End-to-end ECC: encode a block, flip one bit per word via a fault
    // overlay at a moderate voltage, decode, and verify full recovery.
    use dante_sram::ecc::{decode, encode, Correction};
    let data: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut corrected = 0;
    for (i, &d) in data.iter().enumerate() {
        let cw = encode(d);
        let corrupted = cw.with_flip((i % 72) as u32);
        let (back, what) = decode(corrupted);
        assert_eq!(back, d, "word {i} not recovered");
        assert!(matches!(what, Correction::Corrected { .. }));
        corrected += 1;
    }
    assert_eq!(corrected, 64);
}

#[test]
fn energy_breakdown_explains_where_boosting_wins() {
    // Cross-check the breakdown module against the paper's narrative:
    // boosting's extra SRAM+booster cost is far smaller than the logic
    // energy the dual-supply baseline wastes in the LDO.
    let m = EnergyModel::dante_chip();
    let vdd = Volt::new(0.40);
    let vddv = m.vddv(vdd, 4);
    let activity = RowStationaryDataflow::new().activity(&alexnet_conv());
    let acc = activity.total_sram_accesses();
    let macs = activity.total_macs();

    let boosted = m.breakdown_boosted(
        vdd,
        &[BoostedGroup {
            accesses: acc,
            level: 4,
        }],
        macs,
    );
    let dual = m.breakdown_dual(vddv, vdd, acc, macs);

    let boost_overhead = boosted.booster.joules();
    let ldo_waste = dual.logic.joules() - m.params().e_pe(vdd).joules() * macs as f64;
    assert!(
        ldo_waste > 10.0 * boost_overhead,
        "LDO waste {ldo_waste:.3e} J should dwarf booster overhead {boost_overhead:.3e} J"
    );
    // Logic dominates the boosted conv budget (the reuse makes memory cheap).
    assert!(boosted.logic_fraction() > 0.8);
}
