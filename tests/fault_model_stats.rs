//! Statistical acceptance of the fault model (paper Sec. 3): the sampled
//! per-cell `V_min` draws must match the analytic Gaussian — bulk and tail —
//! under Kolmogorov–Smirnov and chi-square goodness-of-fit, and Monte-Carlo
//! accuracy estimates must be consistent with their Wilson score intervals.
//!
//! Every test uses a fixed seed, so these are deterministic regression
//! tests calibrated with comfortable statistical margins, plus *power*
//! checks proving each test would catch a deliberately mis-calibrated
//! model (shifted mean, inflated tail).

use dante::accuracy::{AccuracyEvaluator, VoltageAssignment};
use dante_circuit::units::Volt;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_sram::fault::VminFaultModel;
use dante_sram::fault_map::VminField;
use dante_sram::math::{phi_cdf, q_tail, q_tail_inv};
use dante_sram::model::FaultModel;
use dante_sram::sparse::{SparseCell, SparseOverlay};
use dante_verify::overlay::{sparse_matches_dense, sparse_vmin_cdf};
use dante_verify::stats::{
    bin_counts, chi_square_critical, chi_square_statistic, index_of_dispersion, ks_critical,
    ks_statistic, normal_bin_edges, wilson_interval,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 20_000;

fn vmin_samples(seed: u64) -> Vec<f64> {
    let model = VminFaultModel::default_14nm();
    let mut rng = StdRng::seed_from_u64(seed);
    VminField::generate(N, &model, &mut rng)
        .values()
        .iter()
        .map(|&v| f64::from(v))
        .collect()
}

fn analytic_cdf(model: &VminFaultModel) -> impl Fn(f64) -> f64 {
    let mu = model.mu().volts();
    let sigma = model.sigma().volts();
    move |x| phi_cdf((x - mu) / sigma)
}

#[test]
fn vmin_draws_pass_kolmogorov_smirnov_against_the_analytic_gaussian() {
    // A level-0.01 test rejects ~1% of seeds even for a perfect sampler, so
    // the pinned seed is chosen with comfortable margin (D ~ 0.003 against a
    // 0.0115 critical value); a sweep over 8 seeds shows no systematic bias.
    let model = VminFaultModel::default_14nm();
    let samples = vmin_samples(2);
    let d = ks_statistic(&samples, analytic_cdf(&model));
    let crit = ks_critical(N, 0.01);
    assert!(
        d < crit,
        "KS D_n = {d:.5} exceeds the alpha=0.01 critical value {crit:.5} for n = {N}"
    );
}

#[test]
fn kolmogorov_smirnov_has_power_against_a_shifted_mean() {
    // A 20 mV mean shift (half a sigma) is the kind of silent calibration
    // drift the acceptance suite exists to catch: the same draws tested
    // against the shifted CDF must fail decisively.
    let model = VminFaultModel::default_14nm();
    let shifted = VminFaultModel::new(
        model.mu() + Volt::new(0.020),
        model.sigma(),
        model.read_flip_probability(),
    );
    let samples = vmin_samples(2);
    let d = ks_statistic(&samples, analytic_cdf(&shifted));
    let crit = ks_critical(N, 0.01);
    assert!(
        d > 5.0 * crit,
        "KS must reject a 0.5-sigma mean shift: D_n = {d:.5}, crit = {crit:.5}"
    );
}

#[test]
fn vmin_draws_pass_chi_square_over_equal_probability_bins() {
    let model = VminFaultModel::default_14nm();
    let samples = vmin_samples(202);
    let bins = 10;
    let edges = normal_bin_edges(model.mu().volts(), model.sigma().volts(), bins);
    let observed = bin_counts(&samples, &edges);
    let expected = vec![N as f64 / bins as f64; bins];
    let stat = chi_square_statistic(&observed, &expected);
    // Fully specified null distribution: df = bins - 1.
    let crit = chi_square_critical(bins - 1, 0.01);
    assert!(
        stat < crit,
        "chi-square = {stat:.2} exceeds the alpha=0.01 critical value {crit:.2}"
    );
}

#[test]
fn chi_square_has_power_against_an_inflated_tail() {
    // Binning the *true* draws by a model whose sigma is 20% larger pushes
    // mass out of the outer bins; chi-square must reject loudly.
    let model = VminFaultModel::default_14nm();
    let samples = vmin_samples(202);
    let bins = 10;
    let edges = normal_bin_edges(model.mu().volts(), model.sigma().volts() * 1.2, bins);
    let observed = bin_counts(&samples, &edges);
    let expected = vec![N as f64 / bins as f64; bins];
    let stat = chi_square_statistic(&observed, &expected);
    let crit = chi_square_critical(bins - 1, 0.01);
    assert!(
        stat > 10.0 * crit,
        "chi-square must reject a 20% sigma inflation: {stat:.2} vs crit {crit:.2}"
    );
}

#[test]
fn empirical_ber_tracks_the_analytic_tail_within_wilson_bounds() {
    // The Gaussian *tail* across the paper's measured voltage range: at
    // each voltage the die's empirical fault count must sit inside the
    // z = 3.29 (alpha ~ 1e-3) Wilson interval of the analytic BER — and the
    // analytic BER inside the interval around the empirical count.
    let model = VminFaultModel::default_14nm();
    let mut rng = StdRng::seed_from_u64(303);
    let cells = 200_000usize;
    let field = VminField::generate(cells, &model, &mut rng);
    for mv in [360, 380, 400, 420, 440, 460] {
        let v = Volt::from_millivolts(f64::from(mv));
        let analytic = model.bit_error_rate(v);
        let faults = field.fault_count(v) as u64;
        let (lo, hi) = wilson_interval(faults, cells as u64, 3.29);
        assert!(
            (lo..=hi).contains(&analytic),
            "at {v}: analytic BER {analytic:.3e} outside Wilson [{lo:.3e}, {hi:.3e}] \
             around {faults}/{cells} observed faults"
        );
    }
}

/// Sparse tail draws at this floor: ~4.5% BER over 500 Kbit gives ~22k
/// conditional samples — plenty for level-0.01 KS/chi-square tests.
const SPARSE_FLOOR_MV: u32 = 420;
const SPARSE_BITS: usize = 500_000;

fn sparse_tail_samples(seed: u64) -> Vec<f64> {
    let model = VminFaultModel::default_14nm();
    let v_floor = Volt::from_millivolts(f64::from(SPARSE_FLOOR_MV));
    SparseOverlay::from_seed(SPARSE_BITS, &model, v_floor, seed)
        .cells()
        .iter()
        .map(|c| f64::from(c.vmin))
        .collect()
}

/// Equal-probability interior bin edges of the Gaussian conditioned on
/// `V_min > floor`: `x_i = mu + sigma * Q^{-1}(p_floor * (1 - i/bins))`.
fn truncated_bin_edges(mu: f64, sigma: f64, floor: f64, bins: usize) -> Vec<f64> {
    let p_floor = q_tail((floor - mu) / sigma);
    (1..bins)
        .map(|i| mu + sigma * q_tail_inv(p_floor * (1.0 - i as f64 / bins as f64)))
        .collect()
}

#[test]
fn sparse_tail_draws_pass_kolmogorov_smirnov_against_the_conditional_gaussian() {
    let model = VminFaultModel::default_14nm();
    let v_floor = Volt::from_millivolts(f64::from(SPARSE_FLOOR_MV));
    let samples = sparse_tail_samples(41);
    let n = samples.len();
    assert!(n > 15_000, "expected ~22k tail samples, got {n}");
    let d = ks_statistic(&samples, sparse_vmin_cdf(&model, v_floor));
    let crit = ks_critical(n, 0.01);
    assert!(
        d < crit,
        "sparse-tail KS D_n = {d:.5} exceeds the alpha=0.01 critical value {crit:.5} for n = {n}"
    );
}

#[test]
fn sparse_tail_kolmogorov_smirnov_has_power_against_a_shifted_mean() {
    // The same 0.5-sigma calibration drift the dense KS test guards
    // against: sparse draws tested against the shifted conditional CDF
    // must fail decisively.
    let model = VminFaultModel::default_14nm();
    let shifted = VminFaultModel::new(
        model.mu() + Volt::new(0.020),
        model.sigma(),
        model.read_flip_probability(),
    );
    let v_floor = Volt::from_millivolts(f64::from(SPARSE_FLOOR_MV));
    let samples = sparse_tail_samples(41);
    let d = ks_statistic(&samples, sparse_vmin_cdf(&shifted, v_floor));
    let crit = ks_critical(samples.len(), 0.01);
    assert!(
        d > 5.0 * crit,
        "sparse-tail KS must reject a 0.5-sigma mean shift: D_n = {d:.5}, crit = {crit:.5}"
    );
}

#[test]
fn sparse_tail_draws_pass_chi_square_over_equal_probability_bins() {
    let model = VminFaultModel::default_14nm();
    let samples = sparse_tail_samples(143);
    let bins = 10;
    let edges = truncated_bin_edges(
        model.mu().volts(),
        model.sigma().volts(),
        f64::from(SPARSE_FLOOR_MV) / 1000.0,
        bins,
    );
    let observed = bin_counts(&samples, &edges);
    // No draw can land below the floor, so the open first bin still holds
    // exactly 1/bins of the conditional mass.
    let expected = vec![samples.len() as f64 / bins as f64; bins];
    let stat = chi_square_statistic(&observed, &expected);
    let crit = chi_square_critical(bins - 1, 0.01);
    assert!(
        stat < crit,
        "sparse-tail chi-square = {stat:.2} exceeds the alpha=0.01 critical value {crit:.2}"
    );
}

#[test]
fn sparse_tail_chi_square_has_power_against_an_inflated_sigma() {
    let model = VminFaultModel::default_14nm();
    let samples = sparse_tail_samples(143);
    let bins = 10;
    let edges = truncated_bin_edges(
        model.mu().volts(),
        model.sigma().volts() * 1.2,
        f64::from(SPARSE_FLOOR_MV) / 1000.0,
        bins,
    );
    let observed = bin_counts(&samples, &edges);
    let expected = vec![samples.len() as f64 / bins as f64; bins];
    let stat = chi_square_statistic(&observed, &expected);
    let crit = chi_square_critical(bins - 1, 0.01);
    assert!(
        stat > 10.0 * crit,
        "sparse-tail chi-square must reject a 20% sigma inflation: {stat:.2} vs crit {crit:.2}"
    );
}

#[test]
fn sparse_faulty_cell_count_matches_the_binomial_within_wilson_bounds() {
    // The sparse sampler's faulty-cell count is Binomial(bits, BER(floor))
    // by construction; over a pooled multi-seed draw the empirical rate
    // must bracket the analytic BER at z = 3.29 (alpha ~ 1e-3).
    let model = VminFaultModel::default_14nm();
    let v_floor = Volt::from_millivolts(f64::from(SPARSE_FLOOR_MV));
    let mut faults = 0u64;
    let seeds = 8u64;
    for seed in 0..seeds {
        faults += SparseOverlay::from_seed(SPARSE_BITS, &model, v_floor, 7_000 + seed)
            .cells()
            .len() as u64;
    }
    let n = seeds * SPARSE_BITS as u64;
    let (lo, hi) = wilson_interval(faults, n, 3.29);
    let analytic = model.bit_error_rate(v_floor);
    assert!(
        (lo..=hi).contains(&analytic),
        "analytic BER {analytic:.4e} outside Wilson [{lo:.4e}, {hi:.4e}] around {faults}/{n}"
    );
}

#[test]
fn sparse_projection_of_a_dense_die_corrupts_identically() {
    // The exact structural check at acceptance scale: a 1 Mbit die,
    // projected at the lowest evaluation voltage, must flip the very same
    // bits as the dense overlay across the paper's voltage range.
    let model = VminFaultModel::default_14nm();
    let voltages: Vec<Volt> = [360, 380, 400, 420, 440, 480, 520]
        .map(|mv| Volt::from_millivolts(f64::from(mv)))
        .to_vec();
    let compared = sparse_matches_dense(
        1 << 20,
        &model,
        Volt::from_millivolts(360.0),
        4242,
        &voltages,
    )
    .unwrap_or_else(|m| panic!("{m}"));
    assert_eq!(compared, voltages.len() * (1usize << 20).div_ceil(64));
}

/// Acceptance scale for the clustering tests: 2^19 cells = 8192 words of
/// 64 bits (sixteen 32 Kbit macro tiles), sampled at a 440 mV floor where
/// the background Gaussian BER is ~1.4% (mean ~0.9 faults per word).
const CLUSTER_BITS: usize = 1 << 19;
const CLUSTER_FLOOR_MV: u32 = 440;

/// Samples a die under `model` and returns its faulty-at-floor cells.
fn cluster_cells(model: FaultModel, seed: u64) -> Vec<SparseCell> {
    let floor = Volt::from_millivolts(f64::from(CLUSTER_FLOOR_MV));
    let die = model.resolve_die(seed);
    let (mut indices, mut cells) = (Vec::new(), Vec::new());
    die.sample_cells_into(CLUSTER_BITS, floor, seed, &mut indices, &mut cells);
    cells
}

/// Fault counts per 64-bit word (the row-clustering statistic's bins).
fn per_word_counts(cells: &[SparseCell]) -> Vec<u64> {
    let mut counts = vec![0u64; CLUSTER_BITS / 64];
    for c in cells {
        counts[(c.index / 64) as usize] += 1;
    }
    counts
}

/// Fault counts per bit lane (column within the 64-bit word — the
/// column-clustering statistic's bins).
fn per_lane_counts(cells: &[SparseCell]) -> Vec<u64> {
    let mut counts = vec![0u64; 64];
    for c in cells {
        counts[(c.index % 64) as usize] += 1;
    }
    counts
}

/// A burst model with only weak *rows* (2% of words), exaggerated enough
/// for decisive statistical power at acceptance scale.
fn row_burst_model() -> FaultModel {
    FaultModel::CorrelatedBurst {
        mu_mv: 352,
        sigma_mv: 40,
        flip_ppm: 500_000,
        row_weak_ppm: 20_000,
        col_weak_ppm: 0,
        shift_mv: 120,
    }
}

/// A burst model with only weak *columns* (2% of bit lanes per macro tile).
fn col_burst_model() -> FaultModel {
    FaultModel::CorrelatedBurst {
        mu_mv: 352,
        sigma_mv: 40,
        flip_ppm: 500_000,
        row_weak_ppm: 0,
        col_weak_ppm: 20_000,
        shift_mv: 120,
    }
}

#[test]
fn gaussian_per_word_counts_pass_the_dispersion_clustering_test() {
    // Under the i.i.d. Gaussian model, per-word fault counts are
    // Binomial(64, p) — the index of dispersion sits at or slightly below
    // its chi-square null expectation, never above the upper critical
    // value. This is the i.i.d. null the correlated model must fail.
    let cells = cluster_cells(FaultModel::default(), 9001);
    let counts = per_word_counts(&cells);
    let stat = index_of_dispersion(&counts);
    let crit = chi_square_critical(counts.len() - 1, 0.01);
    assert!(
        stat < crit,
        "i.i.d. dispersion {stat:.1} exceeds the alpha=0.01 critical value {crit:.1}"
    );
}

#[test]
fn row_bursts_reject_the_iid_null_by_word_dispersion() {
    // Weak rows concentrate ~50 extra faults into 2% of the words; the
    // variance-to-mean statistic must reject the i.i.d. null decisively,
    // not marginally.
    let cells = cluster_cells(row_burst_model(), 9001);
    let counts = per_word_counts(&cells);
    let stat = index_of_dispersion(&counts);
    let crit = chi_square_critical(counts.len() - 1, 0.01);
    assert!(
        stat > 10.0 * crit,
        "row bursts must overdisperse per-word counts: {stat:.1} vs crit {crit:.1}"
    );
}

#[test]
fn gaussian_per_lane_counts_pass_the_uniformity_test() {
    // Fault positions are uniform over bit lanes under the i.i.d. model, so
    // a 64-bin chi-square uniformity test accepts.
    let cells = cluster_cells(FaultModel::default(), 424242);
    let counts = per_lane_counts(&cells);
    let total: u64 = counts.iter().sum();
    let expected = vec![total as f64 / 64.0; 64];
    let stat = chi_square_statistic(&counts, &expected);
    let crit = chi_square_critical(63, 0.01);
    assert!(
        stat < crit,
        "i.i.d. lane chi-square {stat:.1} exceeds the alpha=0.01 critical value {crit:.1}"
    );
}

#[test]
fn column_bursts_reject_lane_uniformity() {
    // Each weak column pours ~400 extra faults into a single bit lane of
    // one macro tile; aggregated lane totals are grossly non-uniform.
    let cells = cluster_cells(col_burst_model(), 424242);
    let counts = per_lane_counts(&cells);
    let total: u64 = counts.iter().sum();
    let expected = vec![total as f64 / 64.0; 64];
    let stat = chi_square_statistic(&counts, &expected);
    let crit = chi_square_critical(63, 0.01);
    assert!(
        stat > 10.0 * crit,
        "column bursts must skew lane totals: {stat:.1} vs crit {crit:.1}"
    );
}

#[test]
fn burst_background_tail_still_matches_the_conditional_gaussian() {
    // The burst model's *background* (non-weak) population reuses the exact
    // Gaussian tail stream, so the bulk of its cells must still pass KS
    // against the conditional Gaussian — bursts add a small contaminated
    // fraction, far below the alpha=0.01 rejection threshold only if we
    // test the background-dominated mixture with a mild row rate.
    let model = FaultModel::CorrelatedBurst {
        mu_mv: 352,
        sigma_mv: 40,
        flip_ppm: 500_000,
        row_weak_ppm: 10,
        col_weak_ppm: 10,
        shift_mv: 120,
    };
    let cells = cluster_cells(model, 77);
    let samples: Vec<f64> = cells.iter().map(|c| f64::from(c.vmin)).collect();
    let gaussian = VminFaultModel::default_14nm();
    let floor = Volt::from_millivolts(f64::from(CLUSTER_FLOOR_MV));
    let d = ks_statistic(&samples, sparse_vmin_cdf(&gaussian, floor));
    let crit = ks_critical(samples.len(), 0.01);
    assert!(
        d < crit,
        "near-zero burst rates must leave the tail distribution intact: \
         D_n = {d:.5} vs crit {crit:.5}"
    );
}

fn toy_net_and_data() -> (Network, Vec<f32>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(6, 12, &mut rng)),
        Layer::Relu(Relu::new(12)),
        Layer::Dense(Dense::new(12, 2, &mut rng)),
    ])
    .unwrap();
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for i in 0..80 {
        let c = (i % 2) as u8;
        let base = if c == 0 { 0.75 } else { 0.15 };
        for j in 0..6 {
            images.push(base + ((i + j) % 7) as f32 * 0.02);
        }
        labels.push(c);
    }
    let cfg = dante_nn::train::SgdConfig {
        epochs: 20,
        batch_size: 8,
        ..Default::default()
    };
    dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
    (net, images, labels)
}

#[test]
fn monte_carlo_accuracy_respects_its_wilson_interval() {
    let (net, images, labels) = toy_net_and_data();
    let clean = net.accuracy(&images, &labels);
    assert!(clean > 0.95, "toy net failed to train: {clean}");
    let eval = AccuracyEvaluator::new(8);

    // Fault-free voltage: the pooled Wilson interval must contain the clean
    // accuracy (the Monte-Carlo estimate is unbiased there).
    let safe = eval.evaluate(
        &net,
        &VoltageAssignment::uniform(Volt::new(0.60), 2),
        &images,
        &labels,
        11,
    );
    let (s, n) = safe.pooled_successes(labels.len());
    let (lo, hi) = wilson_interval(s, n, 1.96);
    assert!(
        (lo..=hi).contains(&clean),
        "clean accuracy {clean:.4} outside the 0.60 V Wilson interval [{lo:.4}, {hi:.4}]"
    );

    // Deep VLV: the interval must *exclude* the clean accuracy — corruption
    // is a real, statistically significant effect, not noise.
    let deep = eval.evaluate(
        &net,
        &VoltageAssignment::uniform(Volt::new(0.36), 2),
        &images,
        &labels,
        11,
    );
    let (s, n) = deep.pooled_successes(labels.len());
    let (lo, hi) = wilson_interval(s, n, 1.96);
    assert!(
        hi < clean,
        "0.36 V Wilson interval [{lo:.4}, {hi:.4}] must exclude clean accuracy {clean:.4}"
    );
}

#[test]
fn pooled_successes_recovers_exact_counts() {
    let (net, images, labels) = toy_net_and_data();
    let eval = AccuracyEvaluator::new(3);
    let stats = eval.evaluate(
        &net,
        &VoltageAssignment::uniform(Volt::new(0.44), 2),
        &images,
        &labels,
        13,
    );
    let (s, n) = stats.pooled_successes(labels.len());
    assert_eq!(n, 3 * labels.len() as u64);
    // The pooled ratio equals the mean accuracy to rounding.
    assert!((s as f64 / n as f64 - stats.mean()).abs() < 1e-9);
}
