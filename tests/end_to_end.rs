//! End-to-end integration: training, compilation, and execution on the
//! bit-accurate accelerator simulator agree with the host-side reference,
//! and the boosted-SRAM architecture does what the paper claims.

use dante_accel::chip::ChipConfig;
use dante_accel::executor::{BoostSchedule, Dante};
use dante_accel::program::Program;
use dante_circuit::units::Volt;
use dante_nn::data::generate_mnist_like;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_nn::train::{train, SgdConfig};
use dante_sram::fault::VminFaultModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A downsized MNIST-style network that trains in a second: inputs are the
/// 784-pixel digits averaged into 49 (7x7) superpixels.
fn small_digit_setup() -> (Network, Vec<f32>, Vec<u8>) {
    let ds = generate_mnist_like(600, 11);
    let test = generate_mnist_like(150, 12);
    let pool = |images: &[f32], n: usize| -> Vec<f32> {
        let mut out = Vec::with_capacity(n * 49);
        for s in 0..n {
            let img = &images[s * 784..(s + 1) * 784];
            for by in 0..7 {
                for bx in 0..7 {
                    let mut acc = 0.0f32;
                    for y in 0..4 {
                        for x in 0..4 {
                            acc += img[(by * 4 + y) * 28 + bx * 4 + x];
                        }
                    }
                    out.push(acc / 16.0);
                }
            }
        }
        out
    };
    let train_x = pool(ds.images(), ds.len());
    let test_x = pool(test.images(), test.len());

    let mut rng = StdRng::seed_from_u64(2);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(49, 48, &mut rng)),
        Layer::Relu(Relu::new(48)),
        Layer::Dense(Dense::new(48, 10, &mut rng)),
    ])
    .unwrap();
    let cfg = SgdConfig {
        epochs: 20,
        batch_size: 20,
        ..SgdConfig::default()
    };
    train(&mut net, &train_x, ds.labels(), &cfg, &mut rng);
    let acc = net.accuracy(&test_x, test.labels());
    assert!(acc > 0.9, "small digit net failed to train: {acc}");
    (net, test_x, test.labels().to_vec())
}

#[test]
fn accelerator_matches_float_reference_on_clean_silicon() {
    let (net, test_x, labels) = small_digit_setup();
    let program = Program::compile(&net, &test_x[..49 * 20]).unwrap();
    let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
    let schedule = BoostSchedule::uniform(0, 2, 0);

    let n = 40;
    let mut agree = 0;
    for i in 0..n {
        let sample = &test_x[i * 49..(i + 1) * 49];
        let accel = dante.run(&program, &schedule, sample);
        let float_pred = net.predict(sample, 1)[0];
        if accel.prediction == float_pred {
            agree += 1;
        }
    }
    assert!(
        agree >= n - 1,
        "quantized accelerator disagreed with float reference on {} of {n}",
        n - agree
    );
    let accel_acc = dante.accuracy(&program, &schedule, &test_x[..49 * n], &labels[..n]);
    assert!(accel_acc > 0.85, "accelerator accuracy {accel_acc}");
}

#[test]
fn boosting_recovers_accuracy_lost_at_very_low_voltage() {
    // The paper's Fig. 1 story, end to end on the simulator.
    let (net, test_x, labels) = small_digit_setup();
    let program = Program::compile(&net, &test_x[..49 * 20]).unwrap();
    let vdd = Volt::new(0.36);
    let n = 40;

    let mut rng = StdRng::seed_from_u64(77);
    let mut dante = Dante::new(
        ChipConfig::dante(),
        &VminFaultModel::default_14nm(),
        vdd,
        &mut rng,
    );

    let unboosted = dante.accuracy(
        &program,
        &BoostSchedule::uniform(0, 2, 0),
        &test_x[..49 * n],
        &labels[..n],
    );
    let boosted = dante.accuracy(
        &program,
        &BoostSchedule::uniform(4, 2, 4),
        &test_x[..49 * n],
        &labels[..n],
    );

    assert!(
        unboosted < 0.6,
        "0.36 V unboosted should be heavily corrupted, got {unboosted}"
    );
    assert!(
        boosted > 0.85,
        "full boost (rail ~0.54 V) should recover accuracy, got {boosted}"
    );
    assert!(boosted > unboosted + 0.25);
}

#[test]
fn spatial_programmability_boosts_data_classes_independently() {
    // The paper's Table 2 rule: inputs/activations only need their rail
    // above ~0.44 V (a *lower* level than weights demand), and with that in
    // place the weight-memory level controls accuracy. It also shows why
    // the rule exists: leaving the activation memory unboosted at 0.38 V
    // (24% BER) destroys the output no matter how hard weights are boosted.
    let (net, test_x, labels) = small_digit_setup();
    let program = Program::compile(&net, &test_x[..49 * 20]).unwrap();
    let vdd = Volt::new(0.38);
    let n = 40;

    let mut rng = StdRng::seed_from_u64(88);
    let mut dante = Dante::new(
        ChipConfig::dante(),
        &VminFaultModel::default_14nm(),
        vdd,
        &mut rng,
    );

    // Inputs at level 2 (rail ~0.475 V, per the 0.44 V rule) and level 3
    // (rail ~0.52 V, where activation faults vanish entirely).
    let weights_protected = dante.accuracy(
        &program,
        &BoostSchedule::uniform(4, 2, 2),
        &test_x[..49 * n],
        &labels[..n],
    );
    let fully_protected = dante.accuracy(
        &program,
        &BoostSchedule::uniform(4, 2, 3),
        &test_x[..49 * n],
        &labels[..n],
    );
    let weights_exposed = dante.accuracy(
        &program,
        &BoostSchedule::uniform(0, 2, 2),
        &test_x[..49 * n],
        &labels[..n],
    );
    // Weights fully boosted but activations left unboosted at 0.38 V.
    let inputs_exposed = dante.accuracy(
        &program,
        &BoostSchedule::uniform(4, 2, 0),
        &test_x[..49 * n],
        &labels[..n],
    );

    assert!(
        fully_protected > 0.8,
        "weights@4 + inputs@3 should be near-clean, got {fully_protected}"
    );
    assert!(
        weights_protected > weights_exposed + 0.2,
        "weight-level must control accuracy ({weights_protected} vs {weights_exposed})"
    );
    assert!(
        inputs_exposed < 0.6,
        "unboosted activations at 0.38 V must corrupt regardless of weights, got {inputs_exposed}"
    );
}

#[test]
fn monte_carlo_evaluator_and_simulator_tell_the_same_story() {
    // The fast statistical path (core::accuracy) and the bit-accurate
    // simulator must agree on the qualitative outcome at the same voltages.
    let (net, test_x, labels) = small_digit_setup();
    let n = 40;
    let eval = dante::accuracy::AccuracyEvaluator::new(3);
    let layers = net.weight_layer_indices().len();

    let low = eval
        .evaluate(
            &net,
            &dante::accuracy::VoltageAssignment::uniform(Volt::new(0.36), layers),
            &test_x[..49 * n],
            &labels[..n],
            5,
        )
        .mean();
    let high = eval
        .evaluate(
            &net,
            &dante::accuracy::VoltageAssignment::uniform(Volt::new(0.54), layers),
            &test_x[..49 * n],
            &labels[..n],
            5,
        )
        .mean();
    assert!(high > 0.85, "evaluator at 0.54 V: {high}");
    assert!(
        high > low + 0.2,
        "evaluator must show the same cliff: {low} -> {high}"
    );
}

#[test]
fn set_boost_config_instruction_counts_stay_small() {
    // Paper Sec. 3.2.1: "In order to limit the overhead, the
    // set_boost_config instruction must be issued at relatively large
    // intervals." One inference issues a handful of config writes per layer
    // — vanishingly few against the thousands of data accesses.
    let (net, test_x, _) = small_digit_setup();
    let program = Program::compile(&net, &test_x[..49 * 10]).unwrap();
    let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.4));
    let _ = dante.run(&program, &BoostSchedule::uniform(2, 2, 1), &test_x[..49]);
    let stats = dante.stats();
    let mem = dante.weight_stats().total() + dante.input_stats().total();
    assert!(stats.boost_config_writes > 0);
    // Even on this deliberately tiny network (where fixed per-layer config
    // costs are amortized worst), config writes stay a few percent of the
    // data accesses; on realistic layers the ratio is orders of magnitude
    // smaller.
    assert!(
        (stats.boost_config_writes as f64) < 0.05 * mem as f64,
        "{} config writes vs {} memory accesses",
        stats.boost_config_writes,
        mem
    );
}
