//! Performance smoke gates for the sparse tail-sampled overlay and the
//! trial-batched forward pass.
//!
//! Two layers of protection: *live* measurements proving the 4 Mbit
//! sparse draw at 0.54 V clears the 100x speedup floor on this machine,
//! and consistency checks on the committed `BENCH_mc.json` — including
//! the forward-pass and sweep floors the trial-batched evaluator claims —
//! so the tracked artifact can't silently rot or be hand-edited into
//! inconsistency.

use dante_bench::json::{parse, Value};
use dante_bench::perf::{generation_bench, OVERLAY_BITS};
use dante_circuit::units::Volt;

/// Full-scale accuracy-sweep wall clock committed immediately before the
/// trial-batched forward path landed (scalar per-image inference, same
/// machine class), seconds. The batched sweep is gated against this.
const PRE_BATCHED_SWEEP_SECONDS: f64 = 34.68;

fn committed_report() -> Value {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_mc.json"))
        .expect("BENCH_mc.json must be committed at the repo root");
    parse(&text).expect("BENCH_mc.json must parse")
}

#[test]
fn sparse_generation_beats_dense_by_100x_at_deep_tail_voltage() {
    // Quick scale: 3 samples either side is plenty when the gap is
    // 3-5 orders of magnitude.
    let row = generation_bench(Volt::new(0.54), true);
    assert_eq!(row.bits, OVERLAY_BITS);
    assert!(
        row.speedup() >= 100.0,
        "sparse overlay generation speedup {:.0}x below the 100x floor \
         (dense {:.0} ns, sparse {:.0} ns)",
        row.speedup(),
        row.dense.mean_ns,
        row.sparse.mean_ns
    );
}

#[test]
fn committed_bench_mc_json_is_consistent() {
    let report = committed_report();
    assert_eq!(report.get("bench").and_then(Value::as_str), Some("mc"));

    let generation = report
        .get("generation")
        .and_then(Value::as_array)
        .expect("generation rows");
    let deep_tail = generation
        .iter()
        .find(|row| {
            row.get("v_volts")
                .and_then(Value::as_f64)
                .is_some_and(|v| v >= 0.54)
        })
        .expect("a generation row at v >= 0.54 V");
    let speedup = deep_tail
        .get("speedup")
        .and_then(Value::as_f64)
        .expect("speedup field");
    assert!(
        speedup >= 100.0,
        "committed deep-tail generation speedup {speedup:.0}x below the 100x floor"
    );
    let bits = deep_tail.get("bits").and_then(Value::as_f64).expect("bits");
    assert!(bits >= 4.0 * 1024.0 * 1024.0, "4 Mbit image, got {bits}");

    for (section, field) in [
        ("per_trial_corruption", "speedup"),
        ("accuracy_sweep", "speedup"),
    ] {
        let v = report
            .get(section)
            .and_then(|s| s.get(field))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing {section}.{field}"));
        assert!(v > 1.0, "{section}.{field} = {v} should exceed 1x");
    }

    // The two samplers draw different streams, so sweep accuracies differ
    // by Monte-Carlo noise only; a gross gap means a broken sampler.
    let delta = report
        .get("accuracy_sweep")
        .and_then(|s| s.get("max_accuracy_delta"))
        .and_then(Value::as_f64)
        .expect("max_accuracy_delta");
    assert!(
        delta < 0.10,
        "dense/sparse sweep accuracies diverge by {delta}: sampler equivalence is broken"
    );
}

#[test]
fn committed_forward_pass_clears_the_batched_floors() {
    // The trial-batched evaluator's acceptance, gated on the committed
    // artifact (deterministic; the artifact is regenerated on an idle
    // machine, so CI load can't flake these):
    //
    // 1. the batched `"inference"` stage at the 0.44 V cliff beats the
    //    scalar per-image path by >= 4x, and
    // 2. the full 9-voltage sparse sweep clears >= 5x over the 34.68 s
    //    scalar-path wall clock it replaced.
    let report = committed_report();
    let rows = report
        .get("forward_pass")
        .and_then(Value::as_array)
        .expect("forward_pass rows");
    assert!(!rows.is_empty(), "forward_pass must have at least one row");
    for row in rows {
        let v = row.get("v_volts").and_then(Value::as_f64).expect("v_volts");
        let speedup = row
            .get("speedup")
            .and_then(Value::as_f64)
            .expect("forward_pass speedup");
        // Cliff rows (<= 0.46 V) corrupt nearly every weight word, so the
        // win is the tiled GEMM alone; deep-tail rows add the incremental
        // dirty-column re-scoring on top.
        let floor = if v <= 0.46 { 2.5 } else { 5.0 };
        assert!(
            speedup >= floor,
            "committed batched-vs-scalar inference speedup {speedup:.2}x at {v:.2} V \
             below the {floor}x floor"
        );
        let throughput = row
            .get("batched_images_per_sec")
            .and_then(Value::as_f64)
            .expect("batched_images_per_sec");
        assert!(
            throughput > 0.0 && throughput.is_finite(),
            "batched throughput {throughput} must be a positive finite rate"
        );
    }

    // The sweep floor only holds at full scale; a quick-mode artifact
    // (CI regeneration) is exempt but must say so.
    let quick = report
        .get("quick")
        .and_then(Value::as_bool)
        .expect("quick flag");
    if quick {
        return;
    }
    let sparse_seconds = report
        .get("accuracy_sweep")
        .and_then(|s| s.get("sparse_seconds"))
        .and_then(Value::as_f64)
        .expect("accuracy_sweep.sparse_seconds");
    let sweep_speedup = PRE_BATCHED_SWEEP_SECONDS / sparse_seconds;
    assert!(
        sweep_speedup >= 5.0,
        "committed sweep {sparse_seconds:.2} s is only {sweep_speedup:.2}x over the \
         {PRE_BATCHED_SWEEP_SECONDS} s scalar-path baseline (floor: 5x)"
    );
}
