//! Performance smoke gates for the sparse tail-sampled overlay.
//!
//! Two layers of protection: a *live* measurement proving the 4 Mbit
//! sparse draw at 0.54 V clears the 100x speedup floor on this machine,
//! and a sanity check that the committed `BENCH_mc.json` is well-formed
//! and records the same claim (so the tracked artifact can't silently rot
//! or be hand-edited into inconsistency).

use dante_bench::json::{parse, Value};
use dante_bench::perf::{generation_bench, OVERLAY_BITS};
use dante_circuit::units::Volt;

#[test]
fn sparse_generation_beats_dense_by_100x_at_deep_tail_voltage() {
    // Quick scale: 3 samples either side is plenty when the gap is
    // 3-5 orders of magnitude.
    let row = generation_bench(Volt::new(0.54), true);
    assert_eq!(row.bits, OVERLAY_BITS);
    assert!(
        row.speedup() >= 100.0,
        "sparse overlay generation speedup {:.0}x below the 100x floor \
         (dense {:.0} ns, sparse {:.0} ns)",
        row.speedup(),
        row.dense.mean_ns,
        row.sparse.mean_ns
    );
}

#[test]
fn committed_bench_mc_json_is_consistent() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_mc.json"))
        .expect("BENCH_mc.json must be committed at the repo root");
    let report = parse(&text).expect("BENCH_mc.json must parse");
    assert_eq!(report.get("bench").and_then(Value::as_str), Some("mc"));

    let generation = report
        .get("generation")
        .and_then(Value::as_array)
        .expect("generation rows");
    let deep_tail = generation
        .iter()
        .find(|row| {
            row.get("v_volts")
                .and_then(Value::as_f64)
                .is_some_and(|v| v >= 0.54)
        })
        .expect("a generation row at v >= 0.54 V");
    let speedup = deep_tail
        .get("speedup")
        .and_then(Value::as_f64)
        .expect("speedup field");
    assert!(
        speedup >= 100.0,
        "committed deep-tail generation speedup {speedup:.0}x below the 100x floor"
    );
    let bits = deep_tail.get("bits").and_then(Value::as_f64).expect("bits");
    assert!(bits >= 4.0 * 1024.0 * 1024.0, "4 Mbit image, got {bits}");

    for (section, field) in [
        ("per_trial_corruption", "speedup"),
        ("accuracy_sweep", "speedup"),
    ] {
        let v = report
            .get(section)
            .and_then(|s| s.get(field))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing {section}.{field}"));
        assert!(v > 1.0, "{section}.{field} = {v} should exceed 1x");
    }

    // The two samplers draw different streams, so sweep accuracies differ
    // by Monte-Carlo noise only; a gross gap means a broken sampler.
    let delta = report
        .get("accuracy_sweep")
        .and_then(|s| s.get("max_accuracy_delta"))
        .and_then(Value::as_f64)
        .expect("max_accuracy_delta");
    assert!(
        delta < 0.10,
        "dense/sparse sweep accuracies diverge by {delta}: sampler equivalence is broken"
    );
}
