//! Differential acceptance: the cycle-level executor and the independent
//! reference math must agree bit-exactly, stage by stage, on fault-free and
//! heavily corrupted programs — FC and conv topologies alike. On any
//! divergence the report carries the replayable `(seed, trial)` pair and
//! the failure is shrunk to a 1-minimal corruption before the panic, so the
//! log *is* the repro.

use dante_accel::{BoostSchedule, ChipConfig, Dante, Program};
use dante_circuit::units::Volt;
use dante_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Shape3};
use dante_nn::network::Network;
use dante_verify::differential::{
    corrupt_program, minimize_corruption, run_differential, DiffConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fc_program() -> Program {
    let mut rng = StdRng::seed_from_u64(17);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(24, 16, &mut rng)),
        Layer::Relu(Relu::new(16)),
        Layer::Dense(Dense::new(16, 10, &mut rng)),
        Layer::Relu(Relu::new(10)),
        Layer::Dense(Dense::new(10, 4, &mut rng)),
    ])
    .unwrap();
    let calib: Vec<f32> = (0..24 * 6).map(|i| ((i * 13) % 19) as f32 / 19.0).collect();
    Program::compile(&net, &calib).unwrap()
}

fn conv_program() -> Program {
    let mut rng = StdRng::seed_from_u64(29);
    let net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(Shape3::new(2, 10, 10), 6, 3, 1, &mut rng)),
        Layer::Relu(Relu::new(6 * 100)),
        Layer::MaxPool2d(MaxPool2d::new(Shape3::new(6, 10, 10))),
        Layer::Dense(Dense::new(150, 8, &mut rng)),
    ])
    .unwrap();
    let calib: Vec<f32> = (0..200 * 4)
        .map(|i| ((i * 11) % 23) as f32 / 23.0)
        .collect();
    Program::compile(&net, &calib).unwrap()
}

/// Runs the full differential suite on one program and panics with a
/// minimized repro on divergence.
fn assert_differentially_clean(program: &Program, config: &DiffConfig) {
    let report = run_differential(program, config);
    if report.is_clean() {
        return;
    }
    // Shrink the first divergence to a minimal corruption for the log,
    // replaying the exact trial sample run_differential used.
    let d = &report.divergences[0];
    let corrupted = corrupt_program(program, &config.model, config.weight_voltage, d.trial_seed);
    let sample: Vec<f32> = (0..program.in_len())
        .map(|i| ((i * 7 + d.trial * 13) % 23) as f32 / 23.0)
        .collect();
    let faulty_sample = dante_verify::corrupt_sample(
        program,
        &sample,
        &config.model,
        config.input_voltage,
        d.trial_seed,
    );
    let minimal = minimize_corruption(program, &corrupted, |p| {
        dante_verify::check_program(p, &faulty_sample, d.trial, d.trial_seed).is_some()
    });
    panic!(
        "executor/reference divergence:\n{}minimal corrupted rows: {minimal:?}",
        report.render()
    );
}

#[test]
fn fc_executor_agrees_with_reference_under_corruption() {
    assert_differentially_clean(&fc_program(), &DiffConfig::default());
}

#[test]
fn conv_executor_agrees_with_reference_under_corruption() {
    assert_differentially_clean(
        &conv_program(),
        &DiffConfig {
            trials: 6,
            ..DiffConfig::default()
        },
    );
}

#[test]
fn differential_agreement_holds_across_voltages() {
    // From fault-free (0.60 V) through the cliff (0.42 V) to deep VLV
    // (0.36 V, BER ~0.4): agreement is unconditional because both sides
    // read the same corrupted bit image.
    let program = fc_program();
    for mv in [600u32, 480, 420, 380, 360] {
        let config = DiffConfig {
            trials: 4,
            weight_voltage: Volt::from_millivolts(f64::from(mv)),
            input_voltage: Volt::from_millivolts(f64::from(mv)),
            seed: u64::from(mv),
            ..DiffConfig::default()
        };
        assert_differentially_clean(&program, &config);
    }
}

#[test]
fn differential_report_is_deterministic_across_thread_counts() {
    // The report (not just its emptiness) must be a pure function of the
    // config — the TrialEngine guarantee extended to the verifier.
    let program = fc_program();
    let config = DiffConfig::default();
    let a = run_differential(&program, &config);
    let b = run_differential(&program, &config);
    assert_eq!(a, b);
}

#[test]
fn corruption_actually_perturbs_the_execution() {
    // Guard against a vacuous differential: at the default voltages the
    // corrupted program must change observable outputs vs the clean one for
    // at least one trial sample — otherwise the suite tests nothing.
    let program = fc_program();
    let config = DiffConfig::default();
    let sample: Vec<f32> = (0..program.in_len())
        .map(|i| (i % 23) as f32 / 23.0)
        .collect();
    let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
    let schedule = BoostSchedule::uniform(0, program.weight_layer_count(), 0);
    let clean = dante.run(&program, &schedule, &sample);
    let corrupted = corrupt_program(
        &program,
        &config.model,
        config.weight_voltage,
        dante_sim::derive_seed(config.seed, dante_sim::site::DIFF_TRIAL, 0),
    );
    let faulty = dante.run(&corrupted, &schedule, &sample);
    assert_ne!(
        clean.codes, faulty.codes,
        "0.40 V corruption must visibly perturb the output codes"
    );
}
