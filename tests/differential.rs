//! Differential acceptance: the cycle-level executor and the independent
//! reference math must agree bit-exactly, stage by stage, on fault-free and
//! heavily corrupted programs — FC and conv topologies alike. On any
//! divergence the report carries the replayable `(seed, trial)` pair and
//! the failure is shrunk to a 1-minimal corruption before the panic, so the
//! log *is* the repro.

use dante_accel::{BoostSchedule, ChipConfig, Dante, Program};
use dante_circuit::units::Volt;
use dante_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Shape3};
use dante_nn::network::Network;
use dante_verify::differential::{
    corrupt_program, minimize_corruption, run_differential, DiffConfig,
};
use dante_verify::forward::ForwardDiffConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fc_program() -> Program {
    let mut rng = StdRng::seed_from_u64(17);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(24, 16, &mut rng)),
        Layer::Relu(Relu::new(16)),
        Layer::Dense(Dense::new(16, 10, &mut rng)),
        Layer::Relu(Relu::new(10)),
        Layer::Dense(Dense::new(10, 4, &mut rng)),
    ])
    .unwrap();
    let calib: Vec<f32> = (0..24 * 6).map(|i| ((i * 13) % 19) as f32 / 19.0).collect();
    Program::compile(&net, &calib).unwrap()
}

fn conv_program() -> Program {
    let mut rng = StdRng::seed_from_u64(29);
    let net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(Shape3::new(2, 10, 10), 6, 3, 1, &mut rng)),
        Layer::Relu(Relu::new(6 * 100)),
        Layer::MaxPool2d(MaxPool2d::new(Shape3::new(6, 10, 10))),
        Layer::Dense(Dense::new(150, 8, &mut rng)),
    ])
    .unwrap();
    let calib: Vec<f32> = (0..200 * 4)
        .map(|i| ((i * 11) % 23) as f32 / 23.0)
        .collect();
    Program::compile(&net, &calib).unwrap()
}

/// Runs the full differential suite on one program and panics with a
/// minimized repro on divergence.
fn assert_differentially_clean(program: &Program, config: &DiffConfig) {
    let report = run_differential(program, config);
    if report.is_clean() {
        return;
    }
    // Shrink the first divergence to a minimal corruption for the log,
    // replaying the exact trial sample run_differential used.
    let d = &report.divergences[0];
    let corrupted = corrupt_program(program, &config.model, config.weight_voltage, d.trial_seed);
    let sample: Vec<f32> = (0..program.in_len())
        .map(|i| ((i * 7 + d.trial * 13) % 23) as f32 / 23.0)
        .collect();
    let faulty_sample = dante_verify::corrupt_sample(
        program,
        &sample,
        &config.model,
        config.input_voltage,
        d.trial_seed,
    );
    let minimal = minimize_corruption(program, &corrupted, |p| {
        dante_verify::check_program(p, &faulty_sample, d.trial, d.trial_seed).is_some()
    });
    panic!(
        "executor/reference divergence:\n{}minimal corrupted rows: {minimal:?}",
        report.render()
    );
}

#[test]
fn fc_executor_agrees_with_reference_under_corruption() {
    assert_differentially_clean(&fc_program(), &DiffConfig::default());
}

#[test]
fn conv_executor_agrees_with_reference_under_corruption() {
    assert_differentially_clean(
        &conv_program(),
        &DiffConfig {
            trials: 6,
            ..DiffConfig::default()
        },
    );
}

#[test]
fn differential_agreement_holds_across_voltages() {
    // From fault-free (0.60 V) through the cliff (0.42 V) to deep VLV
    // (0.36 V, BER ~0.4): agreement is unconditional because both sides
    // read the same corrupted bit image.
    let program = fc_program();
    for mv in [600u32, 480, 420, 380, 360] {
        let config = DiffConfig {
            trials: 4,
            weight_voltage: Volt::from_millivolts(f64::from(mv)),
            input_voltage: Volt::from_millivolts(f64::from(mv)),
            seed: u64::from(mv),
            ..DiffConfig::default()
        };
        assert_differentially_clean(&program, &config);
    }
}

#[test]
fn differential_report_is_deterministic_across_thread_counts() {
    // The report (not just its emptiness) must be a pure function of the
    // config — the TrialEngine guarantee extended to the verifier.
    let program = fc_program();
    let config = DiffConfig::default();
    let a = run_differential(&program, &config);
    let b = run_differential(&program, &config);
    assert_eq!(a, b);
}

/// Runs the batched-vs-scalar forward differential and panics with a
/// ddmin-minimized repro (a 1-minimal weight-unit set) on divergence.
fn assert_forward_differentially_clean(
    net: &Network,
    inputs: &[f32],
    labels: &[u8],
    config: &ForwardDiffConfig,
) {
    let report = dante_verify::run_forward_differential(net, inputs, labels, config);
    if report.is_clean() {
        return;
    }
    // Shrink the first divergence: replay its die, then ddmin the corrupted
    // weight units under the same batched-vs-scalar check.
    let d = &report.divergences[0];
    let clean = dante_verify::forward::quantized_baseline(net);
    let clean_inputs = dante_verify::forward::quantized_input_baseline(inputs, net.in_len());
    let corrupted =
        dante_verify::corrupt_weights(net, &config.model, config.weight_voltage, d.trial_seed);
    let (trial_inputs, dirty) = dante_verify::corrupt_inputs(
        inputs,
        net.in_len(),
        &config.model,
        config.input_voltage,
        d.trial_seed,
    );
    let minimal = dante_verify::minimize_units(&clean, &corrupted, |hybrid| {
        !dante_verify::check_batched(
            &clean,
            hybrid,
            &clean_inputs,
            &trial_inputs,
            &dirty,
            labels,
            config.cache_budget,
        )
        .is_clean()
    });
    panic!(
        "batched/scalar divergence:\n{}minimal corrupted units: {minimal:?}",
        report.render()
    );
}

fn forward_dataset(seed: u64, n: usize, in_len: usize, classes: u8) -> (Vec<f32>, Vec<u8>) {
    use rand::Rng as _;
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = (0..n * in_len).map(|_| rng.gen::<f32>()).collect();
    let labels = (0..n).map(|_| rng.gen::<u8>() % classes).collect();
    (inputs, labels)
}

#[test]
fn batched_forward_agrees_with_scalar_on_fc_networks() {
    // Shapes vary the GEMM tile remainders; batch sizes straddle the
    // 256-image evaluation chunk.
    let mut rng = StdRng::seed_from_u64(71);
    for (in_len, hidden, classes, n) in [(24, 16, 4, 60), (19, 13, 5, 257)] {
        let net = Network::new(vec![
            Layer::Dense(Dense::new(in_len, hidden, &mut rng)),
            Layer::Relu(Relu::new(hidden)),
            Layer::Dense(Dense::new(hidden, classes, &mut rng)),
        ])
        .unwrap();
        let (inputs, labels) = forward_dataset(100 + n as u64, n, in_len, classes as u8);
        assert_forward_differentially_clean(
            &net,
            &inputs,
            &labels,
            &ForwardDiffConfig {
                trials: 6,
                ..ForwardDiffConfig::default()
            },
        );
    }
}

#[test]
fn batched_forward_agrees_with_scalar_on_conv_networks() {
    let mut rng = StdRng::seed_from_u64(73);
    let net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(Shape3::new(2, 10, 10), 6, 3, 1, &mut rng)),
        Layer::Relu(Relu::new(6 * 100)),
        Layer::MaxPool2d(MaxPool2d::new(Shape3::new(6, 10, 10))),
        Layer::Dense(Dense::new(150, 8, &mut rng)),
    ])
    .unwrap();
    let (inputs, labels) = forward_dataset(74, 40, net.in_len(), 8);
    assert_forward_differentially_clean(
        &net,
        &inputs,
        &labels,
        &ForwardDiffConfig {
            trials: 6,
            ..ForwardDiffConfig::default()
        },
    );
}

#[test]
fn batched_forward_agrees_with_scalar_across_voltages() {
    // From fault-free (0.60 V) through the cliff to deep VLV: the dirty
    // sets range from empty to nearly everything.
    let mut rng = StdRng::seed_from_u64(75);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(24, 16, &mut rng)),
        Layer::Relu(Relu::new(16)),
        Layer::Dense(Dense::new(16, 4, &mut rng)),
    ])
    .unwrap();
    let (inputs, labels) = forward_dataset(76, 80, 24, 4);
    for mv in [600u32, 480, 420, 380, 360] {
        let v = Volt::from_millivolts(f64::from(mv));
        assert_forward_differentially_clean(
            &net,
            &inputs,
            &labels,
            &ForwardDiffConfig {
                trials: 4,
                weight_voltage: v,
                input_voltage: v,
                seed: u64::from(mv),
                ..ForwardDiffConfig::default()
            },
        );
    }
}

#[test]
fn evaluator_forward_paths_agree_bitwise_across_voltages_and_samplers() {
    // The end-to-end guarantee the sweep/iso/fleet stack rides on: the
    // Monte-Carlo evaluator's per-trial accuracies are bit-identical under
    // ForwardPath::Scalar and ForwardPath::Batched for every voltage,
    // sampling strategy, and ECC mode.
    use dante::{AccuracyEvaluator, EccMode, ForwardPath, OverlaySampling, VoltageAssignment};

    let mut rng = StdRng::seed_from_u64(77);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(20, 14, &mut rng)),
        Layer::Relu(Relu::new(14)),
        Layer::Dense(Dense::new(14, 5, &mut rng)),
    ])
    .unwrap();
    let (images, labels) = forward_dataset(78, 70, 20, 5);

    for mv in [360u32, 420, 460, 540] {
        let a = VoltageAssignment::uniform(Volt::from_millivolts(f64::from(mv)), 2);
        for (ecc, sampling) in [
            (EccMode::None, OverlaySampling::SparseTail),
            (EccMode::None, OverlaySampling::Dense),
            (EccMode::SecDed, OverlaySampling::SparseTail),
        ] {
            let run = |fwd| {
                AccuracyEvaluator::new(3)
                    .with_ecc(ecc)
                    .with_sampling(sampling)
                    .with_forward_path(fwd)
                    .evaluate(&net, &a, &images, &labels, u64::from(mv))
            };
            let scalar = run(ForwardPath::Scalar);
            let batched = run(ForwardPath::Batched);
            let sb: Vec<u64> = scalar.per_trial.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u64> = batched.per_trial.iter().map(|x| x.to_bits()).collect();
            assert_eq!(sb, bb, "{mv} mV ecc={ecc:?} sampling={sampling:?}");
        }
    }
}

#[test]
fn corruption_actually_perturbs_the_execution() {
    // Guard against a vacuous differential: at the default voltages the
    // corrupted program must change observable outputs vs the clean one for
    // at least one trial sample — otherwise the suite tests nothing.
    let program = fc_program();
    let config = DiffConfig::default();
    let sample: Vec<f32> = (0..program.in_len())
        .map(|i| (i % 23) as f32 / 23.0)
        .collect();
    let mut dante = Dante::fault_free(ChipConfig::dante(), Volt::new(0.5));
    let schedule = BoostSchedule::uniform(0, program.weight_layer_count(), 0);
    let clean = dante.run(&program, &schedule, &sample);
    let corrupted = corrupt_program(
        &program,
        &config.model,
        config.weight_voltage,
        dante_sim::derive_seed(config.seed, dante_sim::site::DIFF_TRIAL, 0),
    );
    let faulty = dante.run(&corrupted, &schedule, &sample);
    assert_ne!(
        clean.codes, faulty.codes,
        "0.40 V corruption must visibly perturb the output codes"
    );
}
