//! Property-based tests spanning crate boundaries: the invariants that hold
//! the reproduction together.

use dante::accuracy::{EccMode, OverlaySampling};
use dante::fleet::{DieOutcome, FleetSpec};
use dante::schedule::BoostPlan;
use dante::sweep::{GeometrySpec, NetworkSpec, SupplySpec, SweepSpec};
use dante_circuit::booster::BoosterBank;
use dante_circuit::macro_model::MacroGeometry;
use dante_circuit::units::Volt;
use dante_dataflow::activity::{LayerActivity, WorkloadActivity};
use dante_energy::params::EnergyParams;
use dante_energy::supply::{BoostedGroup, EnergyModel};
use dante_nn::quant::ScaledQuantizer;
use dante_sram::fault::VminFaultModel;
use dante_sram::model::FaultModel;
use dante_sram::storage::FaultOverlay;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault masks are inclusive: every cell faulty at a higher voltage is
    /// also faulty at any lower voltage, for arbitrary die seeds.
    #[test]
    fn fault_masks_inclusive(seed in 0u64..1000, lo_mv in 300u32..450, delta_mv in 1u32..150) {
        let model = VminFaultModel::default_14nm();
        let mut rng = StdRng::seed_from_u64(seed);
        let field = dante_sram::fault_map::VminField::generate(4096, &model, &mut rng);
        let lo = Volt::from_millivolts(f64::from(lo_mv));
        let hi = Volt::from_millivolts(f64::from(lo_mv + delta_mv));
        prop_assert!(field.fault_mask(lo).is_superset_of(&field.fault_mask(hi)));
    }

    /// Boost voltage is monotonic in both level and supply voltage.
    #[test]
    fn boost_monotonic(mv in 320u32..780, level in 0usize..4) {
        let bank = BoosterBank::standard();
        let v = Volt::from_millivolts(f64::from(mv));
        let dv = Volt::from_millivolts(f64::from(mv + 20));
        prop_assert!(bank.boosted_voltage(v, level + 1) > bank.boosted_voltage(v, level));
        prop_assert!(bank.boosted_voltage(dv, level) > bank.boosted_voltage(v, level));
    }

    /// Quantization round-trips within half a step for arbitrary tensors.
    #[test]
    fn scaled_quant_round_trip(values in prop::collection::vec(-3.0f32..3.0, 1..200)) {
        let q = ScaledQuantizer::weight_default();
        let t = q.quantize(&values);
        let back = t.to_f32();
        for (v, b) in values.iter().zip(&back) {
            prop_assert!((v - b).abs() <= t.scale() * 0.5 + 1e-6);
        }
        // Packing round-trips exactly.
        let mut t2 = t.clone();
        t2.load_packed_words(&t.to_packed_words());
        prop_assert_eq!(t, t2);
    }

    /// A fault overlay applied twice cancels (XOR), and its flip count at a
    /// safe voltage is zero.
    #[test]
    fn overlay_is_involutive(seed in 0u64..1000, mv in 320u32..560) {
        let model = VminFaultModel::default_14nm();
        let mut rng = StdRng::seed_from_u64(seed);
        let overlay = FaultOverlay::generate(2048, &model, &mut rng);
        let v = Volt::from_millivolts(f64::from(mv));
        let mut image: Vec<u64> =
            (0..32).map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let original = image.clone();
        overlay.apply(&mut image, v);
        overlay.apply(&mut image, v);
        prop_assert_eq!(image, original);
        prop_assert_eq!(overlay.flip_count(Volt::new(0.65)), 0);
    }

    /// Dynamic energies are monotone in voltage and counts, and boosted
    /// level-0 equals single supply.
    #[test]
    fn energy_monotonicity(
        mv in 340u32..500,
        accesses in 1u64..1_000_000,
        macs in 1u64..10_000_000,
    ) {
        let m = EnergyModel::dante_chip();
        let v = Volt::from_millivolts(f64::from(mv));
        let hv = Volt::from_millivolts(f64::from(mv + 40));
        prop_assert!(m.dynamic_single(hv, accesses, macs) > m.dynamic_single(v, accesses, macs));
        prop_assert!(
            m.dynamic_single(v, accesses + 1, macs) > m.dynamic_single(v, accesses, macs)
        );
        let single = m.dynamic_single(v, accesses, macs);
        let boosted0 = m.dynamic_boosted(v, &[BoostedGroup { accesses, level: 0 }], macs);
        prop_assert!((single.joules() - boosted0.joules()).abs() / single.joules() < 1e-9);
        // Dual supply with equal rails costs at least as much as single (LDO
        // current-efficiency loss).
        let dual = m.dynamic_dual(v, v, accesses, macs);
        prop_assert!(dual >= single);
    }

    /// BoostPlan group splitting partitions the workload's accesses exactly,
    /// for arbitrary level assignments.
    #[test]
    fn plan_groups_partition_accesses(
        levels in prop::collection::vec(0usize..=4, 1..6),
        input_level in 0usize..=4,
    ) {
        let layers: Vec<LayerActivity> = levels
            .iter()
            .enumerate()
            .map(|(i, _)| LayerActivity {
                layer: i,
                macs: 1000 + i as u64,
                weight_accesses: 500 + 7 * i as u64,
                input_accesses: 100 + 3 * i as u64,
                output_accesses: 10 + i as u64,
            })
            .collect();
        let activity = WorkloadActivity::new("prop", layers);
        let plan = BoostPlan::new(levels, input_level);
        let groups = plan.boosted_groups(&activity);
        let total: u64 = groups.iter().map(|g| g.accesses).sum();
        prop_assert_eq!(total, activity.total_sram_accesses());
        // No duplicate levels in the group list.
        for (i, a) in groups.iter().enumerate() {
            for b in &groups[i + 1..] {
                prop_assert_ne!(a.level, b.level);
            }
        }
    }

    /// ISA instructions round-trip through their 64-bit encoding.
    #[test]
    fn isa_round_trip(
        bank in 0u8..32,
        config in 0u8..16,
        dst in 0u32..100_000,
        words in 0u32..10_000,
    ) {
        use dante_accel::isa::{Instruction, MemoryId};
        for instr in [
            Instruction::SetBoostConfig { mem: MemoryId::Weight, bank, config },
            Instruction::SetBoostConfig { mem: MemoryId::Input, bank, config },
            Instruction::LoadWeights { dst_word: dst, words },
            Instruction::LoadInputs { dst_word: dst, words },
            Instruction::Halt,
        ] {
            prop_assert_eq!(Instruction::decode(instr.encode()), Ok(instr));
        }
    }

    /// `SweepSpec::canonical_string` is injective: two specs are equal
    /// exactly when their canonical strings are byte-equal, across random
    /// seeds, grids, samplers, ECC modes, networks, supply configs, and
    /// fault models. This is what makes the string safe as a cache/digest
    /// key.
    #[test]
    fn sweep_canonical_string_is_injective(
        a in (0u64..20, 1usize..4, 0u8..2, 0u8..2, 0u8..3, 0usize..6, 0u8..3, 0u32..100),
        b in (0u64..20, 1usize..4, 0u8..2, 0u8..2, 0u8..3, 0usize..6, 0u8..3, 0u32..100),
        fm_a in (0u8..4, 0u32..40),
        fm_b in (0u8..4, 0u32..40),
        mvs_a in prop::collection::vec(320u32..560, 1..4),
        mvs_b in prop::collection::vec(320u32..560, 1..4),
    ) {
        let sa = sweep_spec_from(a, fm_a, &mvs_a);
        let sb = sweep_spec_from(b, fm_b, &mvs_b);
        prop_assert_eq!(sa == sb, sa.canonical_string() == sb.canonical_string());
        // The version tag is keyed on the fault model, then the supply, and
        // the families cannot collide: only v3 ever contains a fault token,
        // and within v1/v2 only v2 ever contains a supply token.
        for s in [&sa, &sb] {
            let c = s.canonical_string();
            if !s.fault_model.is_default() {
                prop_assert!(c.starts_with("dante.sweep.v3;"));
                prop_assert!(c.contains("fault="));
            } else if s.supply == SupplySpec::Single {
                prop_assert!(c.starts_with("dante.sweep.v1;"));
                prop_assert!(!c.contains("supply="));
                prop_assert!(!c.contains("fault="));
            } else {
                prop_assert!(c.starts_with("dante.sweep.v2;"));
                prop_assert!(c.contains("supply="));
                prop_assert!(!c.contains("fault="));
            }
        }
    }

    /// The fault-model canonical token is injective on its own: distinct
    /// specs — including same-variant, different-parameter pairs — never
    /// share a token.
    #[test]
    fn fault_model_token_is_injective(
        fm_a in (0u8..4, 0u32..40),
        fm_b in (0u8..4, 0u32..40),
    ) {
        let a = fault_model_from(fm_a);
        let b = fault_model_from(fm_b);
        prop_assert_eq!(a == b, a.canonical_token() == b.canonical_token());
        // Tokens are versioned so a future re-parameterization can coexist.
        prop_assert!(a.canonical_token().contains(".v1("));
    }

    /// Cache-key stability: every spec whose fault model is the default —
    /// i.e. every spec that *could have existed* before the field was added
    /// — encodes byte-identically to the historical pre-fault-model writer,
    /// reimplemented here verbatim as the reference.
    #[test]
    fn default_fault_model_specs_keep_their_prior_cache_keys(
        a in (0u64..20, 1usize..4, 0u8..2, 0u8..2, 0u8..3, 0usize..6, 0u8..3, 0u32..100),
        mvs in prop::collection::vec(320u32..560, 1..4),
    ) {
        let spec = sweep_spec_from(a, (0, 0), &mvs);
        prop_assert!(spec.fault_model.is_default());
        prop_assert_eq!(spec.canonical_string(), legacy_canonical_string(&spec));
    }

    /// `RetrainSpec::canonical_string` is injective: two retrain specs are
    /// equal exactly when their `dante.retrain.v1` strings are byte-equal,
    /// across every retrain-specific field and everything riding in the
    /// embedded `base=` sweep encoding. This is what makes the string safe
    /// as the `/v1/retrain` cache key.
    #[test]
    fn retrain_canonical_string_is_injective(
        a in (0u64..20, 1usize..4, 0u8..2, 0u8..2, 0u8..3, 0usize..6),
        b in (0u64..20, 1usize..4, 0u8..2, 0u8..2, 0u8..3, 0usize..6),
        ra in (320u32..700, 1usize..33, 0u8..2, 0usize..5, 0u32..50),
        rb in (320u32..700, 1usize..33, 0u8..2, 0usize..5, 0u32..50),
        fm_a in (0u8..4, 0u32..40),
        fm_b in (0u8..4, 0u32..40),
        mvs_a in prop::collection::vec(320u32..560, 1..4),
        mvs_b in prop::collection::vec(320u32..560, 1..4),
    ) {
        let sa = retrain_spec_from(a, ra, fm_a, &mvs_a);
        let sb = retrain_spec_from(b, rb, fm_b, &mvs_b);
        prop_assert_eq!(sa == sb, sa.canonical_string() == sb.canonical_string());
        // The retrain family never collides with the sweep, iso, or fleet
        // families: each has its own dotted prefix and the prefixes are
        // mutually prefix-free.
        for s in [&sa, &sb] {
            let c = s.canonical_string();
            prop_assert!(c.starts_with("dante.retrain.v1;"));
            prop_assert!(!c.starts_with("dante.sweep."));
            prop_assert!(!c.starts_with("dante.iso."));
            prop_assert!(!c.starts_with("dante.fleet."));
        }
        // And the existing families are untouched by the new field set: the
        // embedded base sweep still encodes exactly as a sweep would.
        let base_key = sweep_spec_from(
            (a.0, a.1, a.2, a.3, a.4, a.5, 0, 0),
            fm_a,
            &mvs_a,
        )
        .canonical_string();
        prop_assert!(sa.canonical_string().ends_with(&format!("base={base_key}")));
    }

    /// The LDO efficiency formula stays in (0, 1] and degrades with dropout.
    #[test]
    fn ldo_efficiency_bounds(lo_mv in 300u32..700, drop_mv in 0u32..300) {
        let ldo = dante_circuit::ldo::Ldo::new();
        let v_l = Volt::from_millivolts(f64::from(lo_mv));
        let v_h = Volt::from_millivolts(f64::from(lo_mv + drop_mv));
        let eta = ldo.efficiency(v_l, v_h);
        prop_assert!(eta > 0.0 && eta <= 0.99 + 1e-12);
        if drop_mv > 0 {
            prop_assert!(eta < ldo.efficiency(v_h, v_h));
        }
    }
}

/// Builds a [`SweepSpec`] from the primitive draws the compat proptest
/// stub can generate. `net_p` perturbs the network's own parameters so
/// the injectivity test also covers same-variant, different-field pairs.
fn sweep_spec_from(
    (seed, trials, sampling, ecc, net, net_p, supply, supply_p): (
        u64,
        usize,
        u8,
        u8,
        u8,
        usize,
        u8,
        u32,
    ),
    fault: (u8, u32),
    mvs: &[u32],
) -> SweepSpec {
    SweepSpec {
        seed,
        voltages_mv: mvs.to_vec(),
        trials,
        sampling: if sampling == 0 {
            OverlaySampling::Dense
        } else {
            OverlaySampling::SparseTail
        },
        ecc: if ecc == 0 {
            EccMode::None
        } else {
            EccMode::SecDed
        },
        network: match net {
            0 => NetworkSpec::Toy,
            1 => NetworkSpec::MnistFc {
                train_n: 800 + 100 * net_p,
                test_n: 40 + 10 * net_p,
                epochs: 1 + net_p % 4,
            },
            _ => NetworkSpec::AlexNetConv {
                layers: 1 + net_p % 5,
                train_n: 120 + 10 * net_p,
                test_n: 20,
                epochs: 1 + net_p % 3,
            },
        },
        supply: match supply {
            0 => SupplySpec::Single,
            1 => SupplySpec::Boosted {
                level: 1 + supply_p as usize % 4,
            },
            _ => SupplySpec::Dual {
                v_h_mv: 560 + supply_p % 140,
            },
        },
        fault_model: fault_model_from(fault),
        geometry: GeometrySpec::Calibrated,
    }
}

/// Builds a [`RetrainSpec`] from primitive draws: the sweep-shaped tuple
/// `a` feeds the shared fields (seed, trials, sampler, ECC, network) and
/// the retrain tuple `r` feeds the stage-specific ones.
fn retrain_spec_from(
    a: (u64, usize, u8, u8, u8, usize),
    (target_mv, epochs, resample, level, floor_p): (u32, usize, u8, usize, u32),
    fault: (u8, u32),
    mvs: &[u32],
) -> dante::retrain::RetrainSpec {
    let sweep = sweep_spec_from((a.0, a.1, a.2, a.3, a.4, a.5, 0, 0), fault, mvs);
    dante::retrain::RetrainSpec {
        seed: sweep.seed,
        network: sweep.network,
        target_mv,
        fault_model: sweep.fault_model,
        epochs,
        resample: if resample == 0 {
            dante::retrain::ResamplePolicy::EveryEpoch
        } else {
            dante::retrain::ResamplePolicy::Hold
        },
        voltages_mv: sweep.voltages_mv,
        trials: sweep.trials,
        floor: 0.90 + f64::from(floor_p) * 1e-3,
        level,
        sampling: sweep.sampling,
        ecc: sweep.ecc,
    }
}

/// Builds a [`FaultModel`] from primitive draws: the default Gaussian, a
/// perturbed Gaussian, a burst spec, or a chip-variation spec, each with
/// `p` wiggling its own parameters.
fn fault_model_from((kind, p): (u8, u32)) -> FaultModel {
    match kind {
        0 => FaultModel::default(),
        1 => FaultModel::Gaussian {
            mu_mv: 330 + p,
            sigma_mv: 30 + p % 20,
            flip_ppm: 400_000 + 1_000 * p,
        },
        2 => FaultModel::CorrelatedBurst {
            mu_mv: 352,
            sigma_mv: 40,
            flip_ppm: 500_000,
            row_weak_ppm: 1_000 + 100 * p,
            col_weak_ppm: 500 + 50 * p,
            shift_mv: 100 + p,
        },
        _ => FaultModel::ChipVariation {
            mu_mv: 352,
            sigma_mv: 40,
            flip_ppm: 500_000,
            mu_spread_mv: 5 + p,
            sigma_spread_pct: p % 30,
        },
    }
}

/// The pre-fault-model canonical writer (PR 5's exact v1/v2 logic), kept
/// here as the byte-level reference the compat property checks against.
fn legacy_canonical_string(spec: &SweepSpec) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "dante.sweep.{};seed={};trials={};sampling={};ecc={};",
        if spec.supply == SupplySpec::Single {
            "v1"
        } else {
            "v2"
        },
        spec.seed,
        spec.trials,
        match spec.sampling {
            OverlaySampling::Dense => "dense",
            OverlaySampling::SparseTail => "sparse_tail",
        },
        match spec.ecc {
            EccMode::None => "none",
            EccMode::SecDed => "secded",
        },
    );
    if spec.supply != SupplySpec::Single {
        let _ = write!(out, "supply={};", spec.supply.canonical_token());
    }
    let _ = write!(out, "net={};mv=", spec.network.canonical_token());
    for (i, mv) in spec.voltages_mv.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{mv}");
    }
    out
}

/// Cache-compat regression: a single-supply spec keeps the exact `v1`
/// encoding that minted every pre-supply cache key, even when it names
/// the new AlexNet workload — the version tag tracks the supply field,
/// not the network.
#[test]
fn single_supply_alexnet_spec_still_encodes_as_v1() {
    let spec = SweepSpec {
        seed: 11,
        voltages_mv: vec![400, 440],
        trials: 2,
        sampling: OverlaySampling::SparseTail,
        ecc: EccMode::None,
        network: NetworkSpec::AlexNetConv {
            layers: 2,
            train_n: 120,
            test_n: 20,
            epochs: 1,
        },
        supply: SupplySpec::Single,
        fault_model: FaultModel::default(),
        geometry: GeometrySpec::Calibrated,
    };
    assert_eq!(
        spec.canonical_string(),
        "dante.sweep.v1;seed=11;trials=2;sampling=sparse_tail;ecc=none;\
         net=alexnet_conv(2,120,20,1);mv=400,440"
    );
}

/// Promoted proptest regression (shrunk to `seed = 0, mv = 320`): the
/// involution property once failed right at the old retention boundary,
/// where the fault mask and the applied corruption disagreed about which
/// cells were live. Pinned here as a deterministic unit test so the exact
/// historical die/voltage pair is exercised on every run.
#[test]
fn overlay_involution_regression_at_320mv() {
    let model = VminFaultModel::default_14nm();
    let mut rng = StdRng::seed_from_u64(0);
    let overlay = FaultOverlay::generate(2048, &model, &mut rng);
    let v = Volt::from_millivolts(320.0);
    let mut image: Vec<u64> = (0..32)
        .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let original = image.clone();
    overlay.apply(&mut image, v);
    overlay.apply(&mut image, v);
    assert_eq!(image, original, "double overlay application must cancel");
    assert_eq!(overlay.flip_count(Volt::new(0.65)), 0);
}

/// Statistical property (not proptest-random): the empirical flip rate of
/// the full overlay pipeline matches the analytic `BER * p_flip` model.
#[test]
fn overlay_flip_rate_matches_analytic_model() {
    let model = VminFaultModel::default_14nm();
    let mut rng = StdRng::seed_from_u64(42);
    let bits = 400_000;
    let overlay = FaultOverlay::generate(bits, &model, &mut rng);
    for mv in [380u32, 420, 440] {
        let v = Volt::from_millivolts(f64::from(mv));
        let expected = model.bit_flip_rate(v) * bits as f64;
        let got = overlay.flip_count(v) as f64;
        let tol = 5.0 * expected.sqrt() + 10.0;
        assert!(
            (got - expected).abs() < tol,
            "at {v}: {got} flips vs expected {expected}"
        );
    }
}

// ---------------------------------------------------------------------------
// Shard partition / merge determinism (the scale-out serving contract).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `shard_ranges` is an exact ordered partition of `[0, total)`:
    /// contiguous, gap-free, balanced to within one item, and never wider
    /// than the item count.
    #[test]
    fn shard_ranges_partition_exactly(total in 1usize..2000, shards in 1usize..64) {
        let ranges = dante::sweep::shard_ranges(total, shards);
        prop_assert_eq!(ranges.len(), shards.min(total));
        let mut next = 0usize;
        for &(offset, count) in &ranges {
            prop_assert_eq!(offset, next, "windows must be contiguous and ordered");
            prop_assert!(count > 0, "no empty windows");
            next += count;
        }
        prop_assert_eq!(next, total, "windows must cover every item");
        let widths: Vec<usize> = ranges.iter().map(|&(_, c)| c).collect();
        let (min, max) = (
            *widths.iter().min().expect("non-empty"),
            *widths.iter().max().expect("non-empty"),
        );
        prop_assert!(max - min <= 1, "windows must be balanced: {widths:?}");
    }
}

proptest! {
    // Each case trains and runs a toy sweep; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Partitioning a sweep's trial axis into windows, running each window
    /// independently, concatenating in window order, and assembling through
    /// [`dante::sweep::SweepEnergyContext`] reproduces the unsharded run
    /// bit-for-bit — for arbitrary seeds, trial counts, and shard counts.
    #[test]
    fn sharded_sweep_merge_is_bit_identical(
        seed in 0u64..1_000_000,
        trials in 1usize..6,
        shards in 1usize..5,
    ) {
        let spec = SweepSpec {
            seed,
            trials,
            voltages_mv: vec![400, 480],
            ..SweepSpec::toy_default()
        };
        let prep = spec.prepare();
        let reference = prep.run();
        let ctx = spec.energy_context();
        let windows = dante::sweep::shard_ranges(trials, shards);
        for (index, expected) in reference.iter().enumerate() {
            let merged: Vec<f64> = windows
                .iter()
                .flat_map(|&(offset, count)| {
                    prep.run_point_trial_range_observed(
                        index,
                        offset,
                        count,
                        &dante_sim::NoopObserver,
                    )
                })
                .collect();
            let merged_bits: Vec<u64> = merged.iter().map(|a| a.to_bits()).collect();
            let expected_bits: Vec<u64> =
                expected.stats.per_trial.iter().map(|a| a.to_bits()).collect();
            prop_assert_eq!(merged_bits, expected_bits, "per-trial accuracies at point {index}");
            prop_assert_eq!(
                &ctx.assemble_point(index, merged),
                expected,
                "assembled point {index} (stats + energy)"
            );
        }
    }

    /// Partitioning a fleet's die population, sampling each window
    /// independently, and assembling through [`FleetSpec::assemble`]
    /// reproduces the unsharded solve bit-for-bit.
    #[test]
    fn sharded_fleet_merge_is_bit_identical(
        seed in 0u64..1_000_000,
        dies in 1usize..48,
        shards in 1usize..6,
    ) {
        let spec = FleetSpec {
            seed,
            dies,
            array_bits: 4096,
            ..FleetSpec::toy_default()
        };
        let reference = spec.solve();
        let merged: Vec<DieOutcome> = dante::sweep::shard_ranges(dies, shards)
            .iter()
            .flat_map(|&(offset, count)| {
                spec.solve_die_range_observed(offset, count, &dante_sim::NoopObserver)
            })
            .collect();
        prop_assert_eq!(spec.assemble(&merged), reference);
    }

    /// The geometry token is injective over the valid geometry space, and
    /// so are the sweep cache keys it feeds: distinct geometries never
    /// collide, equal geometries always do.
    #[test]
    fn geometry_tokens_are_injective(
        ra in 4u32..=10, ca in 4u32..=8, ma in 0u32..=4, ba in 0u32..=3,
        rb in 4u32..=10, cb in 4u32..=8, mb in 0u32..=4, bb in 0u32..=3,
    ) {
        let make = |r: u32, c: u32, m: u32, b: u32| MacroGeometry {
            rows: 1usize << r,
            cols: 1usize << c,
            mux: 1usize << m,
            banks: 1usize << b,
        };
        let ga = make(ra, ca, ma, ba);
        let gb = make(rb, cb, mb, bb);
        prop_assert!(ga.validate().is_ok(), "{:?}", ga.validate());
        let ta = GeometrySpec::Structural(ga).canonical_token().unwrap();
        let tb = GeometrySpec::Structural(gb).canonical_token().unwrap();
        prop_assert_eq!(ta == tb, ga == gb);
        let key = |g| SweepSpec {
            geometry: GeometrySpec::Structural(g),
            ..SweepSpec::toy_default()
        }
        .canonical_string();
        prop_assert_eq!(key(ga) == key(gb), ga == gb);
    }

    /// The default (calibrated) geometry never perturbs a cache key: v1/v2/v3
    /// sweep strings and v1 fleet strings carry no `geom=` token, and a
    /// structural geometry changes a key *only* by the version bump plus the
    /// inserted token.
    #[test]
    fn default_geometry_preserves_legacy_cache_keys(
        seed in 0u64..1_000_000,
        supply_sel in 0usize..4,
        burst in any::<bool>(),
    ) {
        let supply = match supply_sel {
            0 => SupplySpec::Single,
            1 => SupplySpec::Boosted { level: 2 },
            2 => SupplySpec::Dual { v_h_mv: 600 },
            _ => SupplySpec::BoostedScheduled { level: 2, critical_layers: 1 },
        };
        let fault_model = if burst {
            FaultModel::burst_default()
        } else {
            FaultModel::default()
        };
        let spec = SweepSpec {
            seed,
            supply,
            fault_model,
            ..SweepSpec::toy_default()
        };
        let legacy = spec.canonical_string();
        prop_assert!(!legacy.contains("geom="));
        prop_assert!(!legacy.starts_with("dante.sweep.v4"));
        let v4 = SweepSpec {
            geometry: GeometrySpec::Structural(MacroGeometry::bank_64kbit()),
            ..spec
        }
        .canonical_string();
        prop_assert!(v4.starts_with("dante.sweep.v4;"));
        // Strip the version header and the geometry token: the remainder is
        // byte-identical to the legacy key's body.
        let body = |s: &str| s.split_once(';').unwrap().1.to_owned();
        prop_assert_eq!(
            body(&v4).replace("geom=struct(r=256,c=128,m=4,b=2);", ""),
            body(&legacy)
        );
        let fleet = FleetSpec { seed, ..FleetSpec::toy_default() };
        prop_assert!(!fleet.canonical_string().contains("geom="));
        prop_assert!(fleet.canonical_string().starts_with("dante.fleet.v1;"));
    }

    /// The structural macro model at the paper's bank geometry reproduces
    /// the scalar energy calibration at every supply voltage: per-access
    /// SRAM energy within 1% and the derived `Energy_ratio` on 3.
    #[test]
    fn structural_bank_energy_tracks_the_scalar_calibration(mv in 340u32..=800) {
        let scalar = EnergyParams::dante_chip();
        let structural = EnergyParams::dante_chip()
            .with_geometry(GeometrySpec::Structural(MacroGeometry::bank_64kbit()));
        let v = Volt::from_millivolts(f64::from(mv));
        let ratio = structural.e_sram(v).joules() / scalar.e_sram(v).joules();
        prop_assert!((ratio - 1.0).abs() < 0.01, "e_sram ratio {ratio} at {mv} mV");
        prop_assert!((structural.energy_ratio() - 3.0).abs() < 0.05);
        // PE-side energy is untouched by the SRAM geometry.
        prop_assert_eq!(
            structural.e_pe(v).joules().to_bits(),
            scalar.e_pe(v).joules().to_bits()
        );
    }
}
