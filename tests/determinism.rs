//! Determinism regression tests for the unified trial engine: the same root
//! seed must produce byte-identical Monte-Carlo results regardless of
//! worker-thread count, and regardless of whether an evaluation runs
//! directly or as a point inside a sweep.

use dante::accuracy::{AccuracyEvaluator, EccMode, VoltageAssignment};
use dante_circuit::units::Volt;
use dante_nn::layers::{Dense, Layer, Relu};
use dante_nn::network::Network;
use dante_sim::{derive_seed, site};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_net_and_data() -> (Network, Vec<f32>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(40);
    let mut net = Network::new(vec![
        Layer::Dense(Dense::new(8, 12, &mut rng)),
        Layer::Relu(Relu::new(12)),
        Layer::Dense(Dense::new(12, 3, &mut rng)),
    ])
    .expect("static shapes");
    let mut images = Vec::new();
    let mut labels = Vec::new();
    for i in 0..90 {
        let c = (i % 3) as u8;
        for j in 0..8 {
            let on = (j % 3) == usize::from(c);
            images.push(if on { 0.85 } else { 0.1 } + ((i + j) % 5) as f32 * 0.02);
        }
        labels.push(c);
    }
    let cfg = dante_nn::train::SgdConfig {
        epochs: 15,
        batch_size: 10,
        ..Default::default()
    };
    dante_nn::train::train(&mut net, &images, &labels, &cfg, &mut rng);
    (net, images, labels)
}

/// Exact per-trial equality across 1, 2, and N worker threads — the heart
/// of the engine's contract: parallelism is purely a wall-clock knob.
#[test]
fn per_trial_results_identical_across_thread_counts() {
    let (net, images, labels) = toy_net_and_data();
    let assignment = VoltageAssignment::uniform(Volt::new(0.40), 2);
    let seed = 0xD0_0D;
    let reference = AccuracyEvaluator::new(9).with_threads(1).evaluate(
        &net,
        &assignment,
        &images,
        &labels,
        seed,
    );
    let many = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    for threads in [2, 3, many.max(2)] {
        let parallel = AccuracyEvaluator::new(9).with_threads(threads).evaluate(
            &net,
            &assignment,
            &images,
            &labels,
            seed,
        );
        assert_eq!(
            reference.per_trial, parallel.per_trial,
            "per-trial results diverged at {threads} threads"
        );
    }
}

/// The thread-count invariance must also hold under the SEC-DED ablation,
/// which draws a second (check-bit) overlay per layer.
#[test]
fn secded_results_identical_across_thread_counts() {
    let (net, images, labels) = toy_net_and_data();
    let assignment = VoltageAssignment::uniform(Volt::new(0.40), 2);
    let serial = AccuracyEvaluator::new(6)
        .with_ecc(EccMode::SecDed)
        .with_threads(1)
        .evaluate(&net, &assignment, &images, &labels, 77);
    let parallel = AccuracyEvaluator::new(6)
        .with_ecc(EccMode::SecDed)
        .with_threads(4)
        .evaluate(&net, &assignment, &images, &labels, 77);
    assert_eq!(serial.per_trial, parallel.per_trial);
}

/// A sweep point is exactly a direct evaluation under the point's derived
/// seed — sweeps add no hidden generator state.
#[test]
fn sweep_points_match_direct_evaluations() {
    let (net, images, labels) = toy_net_and_data();
    let eval = AccuracyEvaluator::new(4);
    let voltages = [Volt::new(0.38), Volt::new(0.44), Volt::new(0.50)];
    let root = 0xCAFE;
    let sweep = eval.voltage_sweep(
        &net,
        &voltages,
        |v| VoltageAssignment::uniform(v, 2),
        &images,
        &labels,
        root,
    );
    for (i, (v, stats)) in sweep.iter().enumerate() {
        let direct = eval.evaluate(
            &net,
            &VoltageAssignment::uniform(*v, 2),
            &images,
            &labels,
            derive_seed(root, site::SWEEP_POINT, i as u64),
        );
        assert_eq!(
            stats.per_trial, direct.per_trial,
            "sweep point {i} at {v} diverged from its direct evaluation"
        );
    }
}

/// The fault-aware retraining stage is a differential fixture: the same
/// spec must reproduce byte-identical hardened weights (and the identical
/// comparison artifact) run-to-run and under `DANTE_THREADS=1` versus the
/// default thread count, while a changed seed must diverge.
///
/// `DANTE_THREADS` is process-global; the other tests in this binary pin
/// their thread counts explicitly or are themselves thread-invariant, so a
/// moment under `DANTE_THREADS=1` is harmless — and if it were not, this
/// suite failing is exactly the signal we want.
#[test]
fn retrain_weights_are_byte_identical_across_runs_and_thread_counts() {
    use dante::retrain::RetrainSpec;

    let spec = RetrainSpec {
        trials: 2,
        voltages_mv: vec![360, 420, 480, 540],
        ..RetrainSpec::toy_default()
    };

    std::env::set_var(dante_sim::engine::THREADS_ENV, "1");
    let serial = spec.run();
    std::env::remove_var(dante_sim::engine::THREADS_ENV);
    let default_threads = spec.run();
    let again = spec.run();

    assert_eq!(
        serial.network.to_bytes(),
        default_threads.network.to_bytes(),
        "hardened weights diverged between DANTE_THREADS=1 and the default"
    );
    assert_eq!(serial.weight_digest(), default_threads.weight_digest());
    assert_eq!(serial.baseline, default_threads.baseline);
    assert_eq!(serial.hardened, default_threads.hardened);
    assert_eq!(
        default_threads.network.to_bytes(),
        again.network.to_bytes(),
        "hardened weights diverged between identical back-to-back runs"
    );
    assert_eq!(default_threads.epochs, again.epochs);

    // The seed is load-bearing: flipping one bit must change the weights.
    let reseeded = RetrainSpec {
        seed: spec.seed ^ 1,
        ..spec
    }
    .run();
    assert_ne!(
        serial.network.to_bytes(),
        reseeded.network.to_bytes(),
        "a different seed must produce different hardened weights"
    );
}

/// Trial seeds are independent of the trial count: the first trials of a
/// short run and a long run coincide, so scaling `DANTE_TRIALS` up only
/// appends dies — it never reshuffles the ones already evaluated.
#[test]
fn trial_prefix_is_stable_under_trial_count() {
    let (net, images, labels) = toy_net_and_data();
    let assignment = VoltageAssignment::uniform(Volt::new(0.42), 2);
    let short = AccuracyEvaluator::new(3).evaluate(&net, &assignment, &images, &labels, 5);
    let long = AccuracyEvaluator::new(8).evaluate(&net, &assignment, &images, &labels, 5);
    assert_eq!(short.per_trial[..], long.per_trial[..3]);
}
