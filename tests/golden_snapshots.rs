//! Golden snapshot acceptance: every deterministic paper artifact is
//! regenerated and compared against its blessed copy in `results/golden/`
//! within the per-metric tolerance bands of `dante-verify`, and the
//! paper-anchored point claims are checked against the regenerated data.
//!
//! Intended change? Re-bless with
//! `UPDATE_GOLDEN=1 cargo test --test golden_snapshots` (see
//! EXPERIMENTS.md, "Golden snapshot workflow").

use dante_bench::figures::golden_records;
use dante_bench::record::FigureRecord;
use dante_verify::golden::{paper_anchors, GoldenStore, Tolerance};

/// One regeneration shared by the tests in this binary (the registry is
/// deterministic; see `dante-bench`'s `golden_registry_is_deterministic`).
fn records() -> Vec<FigureRecord> {
    golden_records()
}

#[test]
fn every_golden_record_matches_its_blessed_copy() {
    let store = GoldenStore::default_location();
    let mut failures = Vec::new();
    for rec in records() {
        if let Err(diff) = store.check(&rec) {
            failures.push(diff.render());
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden record(s) diverged:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn golden_store_has_no_orphaned_snapshots() {
    // Skip while blessing: a rename legitimately leaves the old file until
    // the workflow's cleanup step removes it.
    if GoldenStore::bless_requested() {
        return;
    }
    let store = GoldenStore::default_location();
    let recs = records();
    let ids: Vec<&str> = recs.iter().map(|r| r.id.as_str()).collect();
    let orphans = store.orphans(&ids);
    assert!(
        orphans.is_empty(),
        "blessed snapshots with no generator (delete them from {}): {orphans:?}",
        store.dir().display()
    );
}

#[test]
fn paper_anchor_claims_hold_on_regenerated_records() {
    let recs = records();
    let failures: Vec<String> = paper_anchors()
        .iter()
        .filter_map(|a| a.check(&recs).err())
        .collect();
    assert!(
        failures.is_empty(),
        "{} paper anchor(s) violated:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn golden_records_are_byte_identical_to_their_blessed_files() {
    // Stronger than the tolerance-banded check above: the trial-batched
    // forward path (the default) must reproduce every blessed snapshot —
    // all 15 records, including the Monte-Carlo-backed iso_accuracy, fleet
    // and retrain — byte for byte. A re-bless to absorb the batched evaluator
    // would be a correctness bug, not a tolerance question.
    if GoldenStore::bless_requested() {
        return; // blessed files are being rewritten in this run
    }
    let dir = GoldenStore::default_location().dir().to_path_buf();
    let mut failures = Vec::new();
    for rec in records() {
        let path = dir.join(format!("{}.json", rec.id));
        let blessed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        if blessed.trim_end() != rec.to_json_pretty().trim_end() {
            failures.push(rec.id.clone());
        }
    }
    assert!(
        failures.is_empty(),
        "records no longer byte-identical to their blessed snapshots: {failures:?}"
    );
}

#[test]
fn monte_carlo_records_are_byte_identical_across_forward_paths() {
    // The two registry records that ride the Monte-Carlo evaluator are
    // regenerated under ForwardPath::Scalar and under the default batched
    // path; their serialized bytes must agree exactly.
    //
    // DANTE_FORWARD is process-global, so a concurrent test regenerating
    // records sees the scalar path for a moment — harmless precisely when
    // this invariance holds (identical bytes), and a failure here is the
    // real signal when it does not.
    let generate = || {
        vec![
            dante_bench::figures::energy::iso_accuracy(),
            dante_bench::figures::fleet::fleet(),
        ]
    };
    std::env::set_var("DANTE_FORWARD", "scalar");
    let scalar: Vec<String> = generate().iter().map(|r| r.to_json_pretty()).collect();
    std::env::remove_var("DANTE_FORWARD");
    let batched: Vec<String> = generate().iter().map(|r| r.to_json_pretty()).collect();
    assert_eq!(
        scalar, batched,
        "scalar and batched forward paths serialized different record bytes"
    );
}

#[test]
fn perturbed_record_fails_with_a_readable_diff() {
    // The detector test the issue demands: deliberately perturbing a model
    // output must fail its golden comparison, and the diff must name the
    // series and show both values. Uses a throwaway diff dir so the real
    // artifact directory stays clean.
    let store = GoldenStore::new(
        GoldenStore::default_location().dir(),
        std::env::temp_dir().join(format!("dante-golden-perturb-{}", std::process::id())),
    );
    let mut rec = records()
        .into_iter()
        .find(|r| r.id == "fig08")
        .expect("fig08 is in the golden registry");
    // A 5% booster-model error on one curve — far beyond the 1e-6 band.
    for p in &mut rec.series[3].points {
        p.1 *= 1.05;
    }
    let diff = store
        .check_with_mode(&rec, false)
        .expect_err("a 5% perturbation must fail the golden check");
    let text = diff.render();
    assert!(text.contains("fig08"), "diff names the record: {text}");
    assert!(text.contains("Vddv4"), "diff names the series: {text}");
    assert!(text.contains("- y =") && text.contains("+ y ="), "{text}");
    assert!(
        text.contains("UPDATE_GOLDEN=1"),
        "diff carries the hint: {text}"
    );
}

#[test]
fn fault_tail_perturbation_is_caught_by_the_fig07_band() {
    // Perturbing the fault model's Gaussian tail (sigma +1%) shifts the
    // deep-tail BER by far more than fig07's relative band — the snapshot
    // suite pins the tail, not just the bulk.
    use dante_sram::fault::VminFaultModel;
    let nominal = VminFaultModel::default_14nm();
    let perturbed = VminFaultModel::new(
        nominal.mu(),
        nominal.sigma() * 1.01,
        nominal.read_flip_probability(),
    );
    let tol = dante_verify::golden::tolerance_for("fig07");
    let v = dante_circuit::units::Volt::new(0.44);
    assert!(
        !tol.accepts(nominal.bit_error_rate(v), perturbed.bit_error_rate(v)),
        "a 1% sigma error must exceed the fig07 tolerance band"
    );
    // While the band still accepts genuine regeneration noise (none — the
    // pipeline is deterministic — but float reassociation at ~1e-16 is in
    // spec).
    let b = nominal.bit_error_rate(v);
    assert!(tol.accepts(b, b * (1.0 + 1e-12)));
}

#[test]
fn tolerance_bands_are_paper_scaled() {
    // Exact-compared records really are exact; banded records have sane
    // non-zero bands.
    for id in ["table1", "table2", "fig04"] {
        assert_eq!(dante_verify::golden::tolerance_for(id), Tolerance::exact());
    }
    for id in ["fig06", "fig07", "fig08", "headlines"] {
        let t = dante_verify::golden::tolerance_for(id);
        assert!(t.rel > 0.0 && t.rel <= 1e-2, "{id}: rel {}", t.rel);
    }
}
