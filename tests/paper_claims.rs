//! The paper's quantitative claims, checked against the models
//! (see EXPERIMENTS.md for the full paper-vs-measured accounting).

use dante_circuit::booster::{reference, BoosterBank};
use dante_circuit::units::Volt;
use dante_dataflow::activity::Dataflow;
use dante_dataflow::fc_dana::DanaFcDataflow;
use dante_dataflow::row_stationary::RowStationaryDataflow;
use dante_dataflow::workloads::{alexnet_conv, mnist_fc};
use dante_sram::fault::VminFaultModel;

#[test]
fn abstract_headlines_land_in_band() {
    let h = dante::headlines::compute();
    // "boosting results in up to 26% ... energy savings compared to having
    // dual supplies" (AlexNet, full boost).
    assert!((0.20..=0.40).contains(&h.alexnet_peak_savings_vs_dual));
    // "...and on average 17% energy savings..."
    assert!((0.10..=0.30).contains(&h.alexnet_avg_savings_vs_dual));
    // "Boosting results in 30% energy savings compared to having a single
    // supply ... that achieves the same accuracy."
    assert!((0.18..=0.45).contains(&h.alexnet_savings_vs_single_048));
    // "...and a 32% savings in leakage energy per cycle on average."
    assert!((0.22..=0.45).contains(&h.leakage_savings_vs_dual));
    // "the booster circuit results in only 6% overhead."
    assert!((0.04..=0.08).contains(&h.booster_leakage_overhead));
}

#[test]
fn table3_access_ratios() {
    let fc = DanaFcDataflow::new().activity(&mnist_fc());
    let rs = RowStationaryDataflow::new().activity(&alexnet_conv());
    assert!(
        (fc.access_mac_ratio() - 0.75).abs() < 0.01,
        "MNIST: {}",
        fc.access_mac_ratio()
    );
    assert!(
        (rs.access_mac_ratio() - 0.0167).abs() < 0.004,
        "AlexNet: {}",
        rs.access_mac_ratio()
    );
}

#[test]
fn section2_bit_error_anchor() {
    // "the same bit error rate, say at 0.014 at 0.44V".
    let model = VminFaultModel::default_14nm();
    let ber = model.bit_error_rate(Volt::new(0.44));
    assert!((ber - 0.014).abs() < 0.002, "BER(0.44 V) = {ber}");
    // Zero fails at 0.6 V on the 4 Mbit test array.
    assert!(model.expected_failures(Volt::new(0.60), 4 << 20) < 0.5);
}

#[test]
fn section3_boost_capability() {
    // "capable of achieving up to 50% peak boost in supply voltage".
    let bank = BoosterBank::standard();
    let vdd = Volt::new(0.40);
    let peak = bank.boost_amount(vdd, 4).volts() / vdd.volts();
    assert!((0.45..=0.55).contains(&peak), "peak boost fraction {peak}");
    // Fig. 4: "increments of the order of 50 mV" per level at 0.4 V.
    let ladder = bank.voltage_ladder(vdd);
    for w in ladder.windows(2) {
        let step = (w[1] - w[0]).millivolts();
        assert!((35.0..=65.0).contains(&step), "step {step} mV");
    }
}

#[test]
fn section6_iso_accuracy_levels() {
    // Sec. 6.2: "it is necessary to expend the energy cost of Boost_Vddv3 at
    // 0.38V, whereas Boost_Vddv1 is sufficient when operating at 0.46V."
    let bank = BoosterBank::standard();
    let target = Volt::new(0.48);
    assert_eq!(bank.min_level_reaching(Volt::new(0.38), target), Some(3));
    assert_eq!(bank.min_level_reaching(Volt::new(0.46), target), Some(1));
    assert_eq!(bank.min_level_reaching(Volt::new(0.48), target), Some(0));
}

#[test]
fn fig6_mim_comparison_claims() {
    let vdd = Volt::new(0.40);
    // "MIMBoost-A generates 14x the boosted voltage for the same area".
    let boost_ratio = reference::mim_boost_a().boost_amount(vdd, 1)
        / reference::no_mim_boost_a().boost_amount(vdd, 1);
    assert!(
        (8.0..=25.0).contains(&boost_ratio),
        "boost ratio {boost_ratio}"
    );
    let area_ratio = reference::mim_boost_a().area() / reference::no_mim_boost_a().area();
    assert!(
        (0.8..=1.25).contains(&area_ratio),
        "A-pair area ratio {area_ratio}"
    );
    // "noMIMBoost-B ... is 8x the area of MIMBoost-B" and "expending 10x the
    // energy ... generating roughly the same boosted voltage".
    assert!(reference::no_mim_boost_b().area() / reference::mim_boost_b().area() >= 8.0);
    let vb_ratio = reference::no_mim_boost_b().boost_amount(vdd, 1)
        / reference::mim_boost_b().boost_amount(vdd, 1);
    assert!(
        (0.6..=1.5).contains(&vb_ratio),
        "B-pair boost ratio {vb_ratio}"
    );
    let e_ratio = reference::no_mim_boost_b().boost_event_energy(vdd, 1)
        / reference::mim_boost_b().boost_event_energy(vdd, 1);
    assert!(e_ratio > 5.0, "B-pair energy ratio {e_ratio}");
}

#[test]
fn fig12_design_space_shape() {
    use dante_energy::design_space::{sweep, DesignSpaceScenario};
    // Boosting wins at accelerator-realistic ratios, loses in the
    // memory-dominated corner — the crossover the paper's Fig. 12 shows.
    let win = sweep(DesignSpaceScenario::default(), &[0.0167], &[3.0]);
    assert!(win[0].boosted_over_dual < 0.85);
    let lose = sweep(DesignSpaceScenario::default(), &[4.0], &[1.0]);
    assert!(lose[0].boosted_over_dual > 1.0);
}

#[test]
fn table1_chip_parameters() {
    let c = dante_accel::chip::ChipConfig::dante();
    assert!((c.die_area_mm2() - 2.32).abs() < 0.01);
    assert_eq!(c.total_sram_bytes(), 144 * 1024);
    assert_eq!(c.total_macros(), 36);
    assert_eq!(c.boost_levels, 4);
    assert!((c.booster_area_per_macro.square_microns() - 3900.0).abs() < 1.0);
    assert!((c.mim_capacitance_pf - 40.0).abs() < 1e-9);
}

#[test]
fn fig9_latency_reduction_claim() {
    // "boosting peripheral logic and the array leads to a maximum of 35%
    // reduction in overall macro access latency at 0.5V".
    use dante_circuit::booster::BoostScope;
    use dante_circuit::latency::SramTiming;
    let timing = SramTiming::macro_32kbit();
    let bank = BoosterBank::standard();
    let frac = timing.boosted_access_fraction(Volt::new(0.5), &bank, 4, BoostScope::Macro);
    assert!(
        (0.25..=0.45).contains(&(1.0 - frac)),
        "reduction {}",
        1.0 - frac
    );
}
